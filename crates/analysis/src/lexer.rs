//! A hand-rolled Rust token scanner — deliberately **not** a parser.
//!
//! The workspace's offline policy rules out `syn`/`proc-macro2`, and the
//! lint rules (lib.rs) only need a faithful token stream: identifiers
//! and punctuation with line numbers, with string/char/number literal
//! *content* discarded so a `"panic!"` inside a log message never trips
//! a rule. The scanner handles the lexical corners that would otherwise
//! produce false tokens: nested block comments, raw strings with any
//! hash depth, byte strings, raw identifiers, and the lifetime-vs-char
//! ambiguity after `'`.
//!
//! Two side channels ride along with the tokens:
//!
//! * `// lint: allow(rule): reason` comments become [`Allow`] records
//!   (the suppression mechanism — lib.rs matches them to findings);
//! * `#[cfg(test)]` / `#[test]` items can be stripped by
//!   [`strip_test_code`], which returns them separately so the
//!   protocol-exhaustiveness rule can still search test code for
//!   variant mentions.

/// One lexical token. Literal payloads are discarded on purpose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (raw identifiers lose their `r#`).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any string/char/byte/number literal, content dropped.
    Literal,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

/// A `// lint: allow(rule): reason` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Line the comment sits on; it suppresses findings on this line
    /// and the next (so it can trail the offending expression or sit on
    /// its own line directly above it).
    pub line: usize,
    /// Whether a non-empty `: reason` followed — mandatory per policy.
    pub has_reason: bool,
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct Scan {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Parses the inside of a line comment for an allow directive.
fn parse_allow(comment: &str, line: usize) -> Option<Allow> {
    let rest = comment.trim_start().strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let has_reason = tail
        .strip_prefix(':')
        .map(|r| !r.trim().is_empty())
        .unwrap_or(false);
    Some(Allow {
        rule,
        line,
        has_reason,
    })
}

/// Scans Rust source into tokens and allow directives.
pub fn scan(source: &str) -> Scan {
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut out = Scan::default();

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (and the allow side channel).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            if let Some(allow) = parse_allow(&text, line) {
                out.allows.push(allow);
            }
            continue;
        }
        // Block comment, nesting included.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 1;
                    bump!();
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 1;
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!();
                }
            }
            continue;
        }
        // Raw strings and raw identifiers: r"..." / r#"..."# / r#ident,
        // plus byte-string variants br"..." / b"...".
        if (c == 'r' || c == 'b')
            && !matches!(out.tokens.last(), Some(t) if t.tok == Tok::Punct('\'') )
        {
            let mut j = i;
            let mut saw_r = false;
            if chars[j] == 'b' {
                j += 1;
            }
            if chars.get(j) == Some(&'r') {
                saw_r = true;
                j += 1;
            }
            let mut hashes = 0;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') && (saw_r || hashes == 0) && (c != 'b' || j > i) {
                if !saw_r && hashes == 0 && c == 'r' {
                    // plain r" can't happen (saw_r true when c=='r'); guard anyway
                }
                if saw_r {
                    // Raw string: runs to `"` followed by `hashes` hashes.
                    let start_line = line;
                    while i < j {
                        bump!();
                    }
                    bump!(); // opening quote
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut k = 0;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                for _ in 0..=hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        bump!();
                    }
                    out.tokens.push(Token {
                        tok: Tok::Literal,
                        line: start_line,
                    });
                    continue;
                } else if c == 'b' && hashes == 0 {
                    // b"..." byte string: fall through to the normal
                    // string scanner after consuming the `b`.
                    bump!();
                    // chars[i] is now the quote; handled below.
                }
            } else if saw_r
                && hashes > 0
                && chars.get(j).map(|&ch| is_ident_start(ch)) == Some(true)
            {
                // Raw identifier r#ident.
                while i < j {
                    bump!();
                }
                let start = i;
                let start_line = line;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: start_line,
                });
                continue;
            }
        }
        let c = chars[i];
        // String literal.
        if c == '"' {
            let start_line = line;
            bump!();
            while i < chars.len() {
                if chars[i] == '\\' {
                    bump!();
                    if i < chars.len() {
                        bump!();
                    }
                    continue;
                }
                if chars[i] == '"' {
                    bump!();
                    break;
                }
                bump!();
            }
            out.tokens.push(Token {
                tok: Tok::Literal,
                line: start_line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime =
                matches!(next, Some(n) if is_ident_start(n)) && !(matches!(after, Some('\'')));
            if is_lifetime {
                bump!();
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    tok: Tok::Lifetime,
                    line,
                });
            } else {
                // Char literal, escapes included.
                let start_line = line;
                bump!();
                while i < chars.len() {
                    if chars[i] == '\\' {
                        bump!();
                        if i < chars.len() {
                            bump!();
                        }
                        continue;
                    }
                    if chars[i] == '\'' {
                        bump!();
                        break;
                    }
                    bump!();
                }
                out.tokens.push(Token {
                    tok: Tok::Literal,
                    line: start_line,
                });
            }
            continue;
        }
        // Number literal (consume trailing ident chars and dots: 1_000u64, 1.5e-3).
        if c.is_ascii_digit() {
            let start_line = line;
            while i < chars.len()
                && (is_ident_continue(chars[i])
                    || chars[i] == '.'
                        && chars.get(i + 1).map(|c| c.is_ascii_digit()) == Some(true))
            {
                i += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Literal,
                line: start_line,
            });
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            let start_line = line;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                tok: Tok::Ident(chars[start..i].iter().collect()),
                line: start_line,
            });
            continue;
        }
        // Everything else: single punctuation character.
        out.tokens.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        bump!();
    }
    out
}

/// Splits a token stream into (non-test, test) halves by stripping every
/// item annotated `#[cfg(test)]` or `#[test]` (the following item, up to
/// its matching closing brace or terminating semicolon).
pub fn strip_test_code(tokens: &[Token]) -> (Vec<Token>, Vec<Token>) {
    let mut kept = Vec::with_capacity(tokens.len());
    let mut test = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(end) = test_attr_end(tokens, i) {
            // Copy the attribute itself nowhere; skip the following item
            // into the test half.
            let item_end = item_end(tokens, end);
            test.extend_from_slice(&tokens[end..item_end]);
            i = item_end;
            continue;
        }
        kept.push(tokens[i].clone());
        i += 1;
    }
    (kept, test)
}

/// If `tokens[i]` starts a `#[cfg(test)]`-like or `#[test]` attribute,
/// returns the index one past its closing `]`.
fn test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.tok != Tok::Punct('#') || tokens.get(i + 1)?.tok != Tok::Punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut j = i + 1;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    // `#[cfg(not(test))]` guards *production* code.
                    let is_test_attr = saw_test && !saw_not && (saw_cfg || j == i + 3);
                    return is_test_attr.then_some(j + 1);
                }
            }
            Tok::Ident(s) if s == "cfg" => saw_cfg = true,
            Tok::Ident(s) if s == "test" => saw_test = true,
            Tok::Ident(s) if s == "not" => saw_not = true,
            _ => {}
        }
        j += 1;
    }
    None
}

/// One past the end of the item starting at `i`: consumes any further
/// attributes, then runs to the matching `}` of the first brace at depth
/// zero, or the first `;` before any brace opens (e.g. `use` items).
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item.
    while let Some(end) = attr_end(tokens, i) {
        i = end;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            Tok::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// One past any attribute starting at `i` (test or not).
fn attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.tok != Tok::Punct('#') || tokens.get(i + 1)?.tok != Tok::Punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn literals_hide_their_content() {
        let src = r###"let s = "panic! unwrap()"; let r = r#"x.lock()"#; let c = 'u'; // plain
            let b = b"expect("; let n = 1_000u64;"###;
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids
            .iter()
            .any(|s| s == "panic" || s == "unwrap" || s == "lock" || s == "expect"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = scan("fn f<'a>(x: &'a str) { let c = 'x'; }").tokens;
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::Literal).count(), 1);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let s = scan("a /* x /* y */ z */ b\nc");
        let ids = s
            .tokens
            .iter()
            .map(|t| (t.tok.clone(), t.line))
            .collect::<Vec<_>>();
        assert_eq!(
            ids,
            vec![
                (Tok::Ident("a".into()), 1),
                (Tok::Ident("b".into()), 1),
                (Tok::Ident("c".into()), 2)
            ]
        );
    }

    #[test]
    fn allow_directives_are_parsed_with_and_without_reason() {
        let s = scan(
            "x(); // lint: allow(no-panic-in-request-path): startup only\ny(); // lint: allow(determinism)\n",
        );
        assert_eq!(s.allows.len(), 2);
        assert_eq!(s.allows[0].rule, "no-panic-in-request-path");
        assert!(s.allows[0].has_reason);
        assert_eq!(s.allows[0].line, 1);
        assert!(!s.allows[1].has_reason);
    }

    #[test]
    fn cfg_test_items_are_stripped_but_retained() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }\n#[test]\nfn unit() { c.unwrap(); }\nfn also_live() {}";
        let (kept, test) = strip_test_code(&scan(src).tokens);
        let kept_ids: Vec<_> = kept
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(kept_ids.contains(&"live") && kept_ids.contains(&"also_live"));
        assert!(!kept_ids.contains(&"tests") && !kept_ids.contains(&"unit"));
        let test_ids: Vec<_> = test
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(test_ids.contains(&"tests") && test_ids.contains(&"unit"));
    }
}
