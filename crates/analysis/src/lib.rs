//! `xag-analysis` — workspace-invariant static analysis.
//!
//! The workspace's concurrency and portability guarantees (DESIGN.md
//! §12) are invariants of the *project*, not of the language, so no
//! off-the-shelf linter can check them. This crate is a std-only lint
//! engine over the hand-rolled token scanner in [`lexer`] (no
//! `syn`/proc-macro — offline policy) enforcing five named rules:
//!
//! * [`RULE_PANIC`] **no-panic-in-request-path** — `unwrap()`,
//!   `expect()`, `panic!`-family macros, and `[]`-indexing are forbidden
//!   in the serve/cluster request-path files; a connection or worker
//!   thread that panics takes its client (or the whole pool) with it.
//! * [`RULE_DETERMINISM`] **determinism** — `Instant::now` /
//!   `SystemTime::now` are banned from the rewrite-engine crates (the
//!   engine's bit-identical-results contract cannot depend on wall
//!   clock), and `std::env` reads are banned outside binaries and the
//!   bench harness.
//! * [`RULE_LOCK_ORDER`] **lock-order** — every `Mutex`/`RwLock` struct
//!   field is extracted, an acquisition graph is built from the lock
//!   call sequences inside each function, and cycles (or inversions of
//!   the blessed order) are flagged.
//! * [`RULE_OFFLINE`] **offline-policy** — Cargo.toml dependencies must
//!   be workspace-internal, and `std::process::Command` / raw
//!   `TcpStream::connect` may not appear outside the modules that own
//!   network I/O.
//! * [`RULE_PROTOCOL`] **protocol-exhaustiveness** — every
//!   `Request`/`Response` variant in `protocol.rs` must have an encode
//!   site, a decode site, and a test that mentions it.
//!
//! Findings are suppressible with `// lint: allow(rule): reason`
//! comments — the reason is mandatory ([`RULE_ALLOW`] fires on a bare
//! allow), and allows that suppress nothing are reported as warnings so
//! stale exemptions rot visibly. The `mc-lint` binary walks the
//! workspace and prints `file:line: rule: message` diagnostics (or
//! `--json`).

pub mod lexer;

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use lexer::{scan, strip_test_code, Allow, Tok, Token};

pub const RULE_PANIC: &str = "no-panic-in-request-path";
pub const RULE_DETERMINISM: &str = "determinism";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_OFFLINE: &str = "offline-policy";
pub const RULE_PROTOCOL: &str = "protocol-exhaustiveness";
/// Meta-rule: allow directives must carry a reason.
pub const RULE_ALLOW: &str = "lint-allow";

/// All enforceable rules, for `--list-rules`.
pub const RULES: [&str; 6] = [
    RULE_PANIC,
    RULE_DETERMINISM,
    RULE_LOCK_ORDER,
    RULE_OFFLINE,
    RULE_PROTOCOL,
    RULE_ALLOW,
];

/// One diagnostic, anchored to a workspace-relative file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The lint result: hard findings plus non-fatal warnings (stale
/// allows). `--deny-all` promotes warnings to failures.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub warnings: Vec<Finding>,
}

/// Scope configuration: which files each rule bites on. The workspace
/// default encodes this repository's layout; fixture tests build their
/// own.
#[derive(Debug, Clone)]
pub struct Config {
    /// Files (path suffixes) in the request path: rule 1 scope.
    pub panic_path_files: Vec<String>,
    /// Path prefixes where wall-clock reads are forbidden: rule 2.
    pub time_forbidden: Vec<String>,
    /// Path prefixes (beyond `/bin/` files) where `std::env` reads are
    /// approved: rule 2.
    pub env_allowed: Vec<String>,
    /// Path suffixes allowed to call `TcpStream::connect`: rule 4.
    pub connect_allowed: Vec<String>,
    /// Blessed acquisition order (first before second, by lock-field
    /// name): rule 3 flags inversions even without a full cycle.
    pub blessed_lock_order: Vec<(String, String)>,
    /// The protocol definition file (path suffix): rule 5 scope.
    pub protocol_file: Option<String>,
}

impl Config {
    /// The scope this repository's rules bite on.
    pub fn workspace_default() -> Self {
        Self {
            panic_path_files: [
                "crates/serve/src/server.rs",
                "crates/serve/src/protocol.rs",
                "crates/serve/src/cache.rs",
                "crates/serve/src/queue.rs",
                "crates/serve/src/coalesce.rs",
                "crates/cluster/src/router.rs",
                "crates/cluster/src/registry.rs",
            ]
            .map(String::from)
            .to_vec(),
            time_forbidden: [
                "crates/core/src/",
                "crates/cuts/src/",
                "crates/tt/src/",
                "crates/xag/src/",
                "crates/affine/src/",
                "crates/synth/src/",
                "crates/circuits/src/",
                "crates/rng/src/",
            ]
            .map(String::from)
            .to_vec(),
            // The bench harness takes env knobs (sample counts); the
            // engine crates do not. Test dirs are exempt structurally.
            env_allowed: ["crates/bench/src/"].map(String::from).to_vec(),
            connect_allowed: ["crates/serve/src/client.rs", "crates/cluster/src/health.rs"]
                .map(String::from)
                .to_vec(),
            // The coalescing pending map lives *inside* the cache lock
            // and the ring *inside* the registry lock; should either
            // ever be split out, the one-lock order stays law.
            blessed_lock_order: vec![
                ("cache".to_string(), "pending".to_string()),
                ("registry".to_string(), "ring".to_string()),
            ],
            protocol_file: Some("crates/serve/src/protocol.rs".to_string()),
        }
    }
}

/// One scanned source file, split into production and test tokens.
pub struct FileScan {
    pub path: String,
    pub live: Vec<Token>,
    pub test: Vec<Token>,
    pub allows: Vec<Allow>,
}

/// Scans in-memory sources (used by the fixture tests; the binary goes
/// through [`lint_workspace`]).
pub fn scan_sources(files: &[(String, String)]) -> Vec<FileScan> {
    files
        .iter()
        .map(|(path, source)| {
            let s = scan(source);
            let (live, test) = strip_test_code(&s.tokens);
            FileScan {
                path: path.clone(),
                live,
                test,
                allows: s.allows,
            }
        })
        .collect()
}

/// Runs every rule over scanned files and manifests, applies the allow
/// directives, and reports what survives.
pub fn lint(files: &[FileScan], manifests: &[(String, String)], cfg: &Config) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    for f in files {
        raw.extend(rule_panic_path(f, cfg));
        raw.extend(rule_determinism(f, cfg));
        raw.extend(rule_offline_api(f, cfg));
    }
    raw.extend(rule_lock_order(files, cfg));
    raw.extend(rule_protocol(files, cfg));
    for (path, text) in manifests {
        raw.extend(rule_offline_manifest(path, text));
    }

    // Allow handling: a directive suppresses same-rule findings on its
    // own line or the next one; bare directives are findings themselves;
    // directives that suppress nothing are warnings.
    let mut findings = Vec::new();
    let mut used: BTreeSet<(String, usize)> = BTreeSet::new();
    for finding in raw {
        let allows = files
            .iter()
            .find(|f| f.path == finding.file)
            .map(|f| f.allows.as_slice())
            .unwrap_or(&[]);
        let hit = allows.iter().find(|a| {
            a.rule == finding.rule && (a.line == finding.line || a.line + 1 == finding.line)
        });
        match hit {
            Some(a) => {
                used.insert((finding.file.clone(), a.line));
            }
            None => findings.push(finding),
        }
    }
    let mut warnings = Vec::new();
    for f in files {
        for a in &f.allows {
            if !a.has_reason {
                findings.push(Finding {
                    rule: RULE_ALLOW,
                    file: f.path.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) has no reason; write `// lint: allow({}): <why>`",
                        a.rule, a.rule
                    ),
                });
            }
            if !RULES.contains(&a.rule.as_str()) {
                findings.push(Finding {
                    rule: RULE_ALLOW,
                    file: f.path.clone(),
                    line: a.line,
                    message: format!("allow names unknown rule `{}`", a.rule),
                });
            } else if !used.contains(&(f.path.clone(), a.line)) {
                warnings.push(Finding {
                    rule: RULE_ALLOW,
                    file: f.path.clone(),
                    line: a.line,
                    message: format!("allow({}) suppresses nothing; remove it", a.rule),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    warnings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Report { findings, warnings }
}

/// Walks the workspace at `root` and lints everything.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let cfg = Config::workspace_default();
    let mut sources: Vec<(String, String)> = Vec::new();
    let mut manifests: Vec<(String, String)> = Vec::new();

    let mut dirs: Vec<PathBuf> = vec![root.join("src"), root.join("tests")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crate_roots: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_roots.sort();
        for c in &crate_roots {
            dirs.push(c.join("src"));
            dirs.push(c.join("tests"));
            let manifest = c.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                manifests.push((rel(root, &manifest), text));
            }
        }
    }
    if let Ok(text) = std::fs::read_to_string(root.join("Cargo.toml")) {
        manifests.push(("Cargo.toml".to_string(), text));
    }

    let mut rs_files: Vec<PathBuf> = Vec::new();
    for dir in dirs {
        collect_rs(&dir, &mut rs_files)?;
    }
    rs_files.sort();
    for path in rs_files {
        let text = std::fs::read_to_string(&path)?;
        sources.push((rel(root, &path), text));
    }
    let files = scan_sources(&sources);
    Ok(lint(&files, &manifests, &cfg))
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(()); // absent dirs (crates without tests/) are fine
    };
    for entry in entries {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().to_string());
        // Lint fixtures contain deliberate violations; build output is
        // not ours.
        if matches!(name.as_deref(), Some("fixtures") | Some("target")) {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match &toks.get(i)?.tok {
        Tok::Ident(s) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(&toks.get(i), Some(t) if t.tok == Tok::Punct(c))
}

// ---------------------------------------------------------------------
// Rule 1: no-panic-in-request-path
// ---------------------------------------------------------------------

fn rule_panic_path(f: &FileScan, cfg: &Config) -> Vec<Finding> {
    if !cfg.panic_path_files.iter().any(|p| f.path.ends_with(p)) {
        return Vec::new();
    }
    let toks = &f.live;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        // `.unwrap()` / `.expect(`
        if punct_at(toks, i, '.') {
            if let Some(m) = ident_at(toks, i + 1) {
                if (m == "unwrap" || m == "expect") && punct_at(toks, i + 2, '(') {
                    out.push(Finding {
                        rule: RULE_PANIC,
                        file: f.path.clone(),
                        line: toks[i + 1].line,
                        message: format!(
                            ".{m}() can panic a request-path thread; return a protocol error or recover"
                        ),
                    });
                }
            }
        }
        // panic!-family macros.
        if let Some(m) = ident_at(toks, i) {
            if matches!(m, "panic" | "unreachable" | "todo" | "unimplemented")
                && punct_at(toks, i + 1, '!')
            {
                out.push(Finding {
                    rule: RULE_PANIC,
                    file: f.path.clone(),
                    line: toks[i].line,
                    message: format!("{m}! aborts a request-path thread; return a protocol error"),
                });
            }
        }
        // `expr[...]` indexing (panics out of bounds). `#[attr]`,
        // `macro![...]`, types, and full-range `[..]` slices don't match.
        if punct_at(toks, i, '[') && i > 0 {
            let indexable = matches!(
                &toks[i - 1].tok,
                Tok::Ident(_) | Tok::Punct(')') | Tok::Punct(']')
            );
            let full_range = punct_at(toks, i + 1, '.')
                && punct_at(toks, i + 2, '.')
                && punct_at(toks, i + 3, ']');
            if indexable && !full_range {
                out.push(Finding {
                    rule: RULE_PANIC,
                    file: f.path.clone(),
                    line: toks[i].line,
                    message: "indexing panics out of bounds in the request path; use .get()"
                        .to_string(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 2: determinism
// ---------------------------------------------------------------------

fn rule_determinism(f: &FileScan, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &f.live;
    let in_bin = f.path.contains("/bin/");
    // Test harnesses may take env knobs (seeds, sample counts); library
    // behavior may not.
    let in_tests = f.path.starts_with("tests/") || f.path.contains("/tests/");
    let time_scoped = cfg
        .time_forbidden
        .iter()
        .any(|p| f.path.starts_with(p.as_str()));
    let env_exempt = in_bin
        || in_tests
        || cfg
            .env_allowed
            .iter()
            .any(|p| f.path.starts_with(p.as_str()));
    for i in 0..toks.len() {
        if let Some(ty) = ident_at(toks, i) {
            let path_sep = punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':');
            if !path_sep {
                continue;
            }
            let member = ident_at(toks, i + 3).unwrap_or("");
            if time_scoped && (ty == "Instant" || ty == "SystemTime") && member == "now" {
                out.push(Finding {
                    rule: RULE_DETERMINISM,
                    file: f.path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "{ty}::now in a rewrite-path crate; results must not depend on wall clock"
                    ),
                });
            }
            if !env_exempt
                && ty == "env"
                && matches!(
                    member,
                    "var" | "var_os" | "vars" | "vars_os" | "args" | "args_os"
                )
            {
                out.push(Finding {
                    rule: RULE_DETERMINISM,
                    file: f.path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "env::{member} outside a binary; library behavior must not depend on the environment"
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 3: lock-order
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct LockEdge {
    from: String,
    to: String,
    file: String,
    line: usize,
}

/// Lock fields per struct: `Struct.field` nodes.
fn collect_lock_fields(files: &[FileScan]) -> BTreeMap<String, Vec<String>> {
    // field name → owning struct names (for qualification).
    let mut owners: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for f in files {
        let toks = &f.live;
        let mut i = 0;
        while i < toks.len() {
            if ident_at(toks, i) == Some("struct") {
                if let Some(name) = ident_at(toks, i + 1) {
                    // Find the struct body `{`; a `;` first means a unit
                    // or tuple struct — no named lock fields.
                    let mut j = i + 2;
                    while j < toks.len()
                        && !punct_at(toks, j, '{')
                        && !punct_at(toks, j, ';')
                        && !punct_at(toks, j, '(')
                    {
                        j += 1;
                    }
                    if punct_at(toks, j, '{') {
                        let mut depth = 1;
                        let mut angle: isize = 0;
                        let mut k = j + 1;
                        let mut field: Option<String> = None;
                        let mut ty_has_lock = false;
                        while k < toks.len() && depth > 0 {
                            match &toks[k].tok {
                                Tok::Punct('{') => depth += 1,
                                Tok::Punct('}') => depth -= 1,
                                Tok::Punct('<') => angle += 1,
                                Tok::Punct('>') => angle -= 1,
                                Tok::Punct(',') if depth == 1 && angle == 0 => {
                                    if let (true, Some(field)) = (ty_has_lock, field.take()) {
                                        owners.entry(field).or_default().push(name.to_string());
                                    }
                                    field = None;
                                    ty_has_lock = false;
                                }
                                // `field :` — the preceding ident is
                                // the field name (skip `::` paths).
                                Tok::Punct(':')
                                    if depth == 1
                                        && field.is_none()
                                        && !punct_at(toks, k + 1, ':')
                                        && !punct_at(toks, k - 1, ':') =>
                                {
                                    field = ident_at(toks, k - 1).map(String::from);
                                }
                                Tok::Ident(s)
                                    if field.is_some() && (s == "Mutex" || s == "RwLock") =>
                                {
                                    ty_has_lock = true
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        if ty_has_lock {
                            if let Some(field) = field.take() {
                                owners.entry(field).or_default().push(name.to_string());
                            }
                        }
                        i = k;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    owners
}

fn rule_lock_order(files: &[FileScan], cfg: &Config) -> Vec<Finding> {
    let owners = collect_lock_fields(files);
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut out = Vec::new();

    for f in files {
        let toks = &f.live;
        // Track the current `impl TypeName` block to qualify `state`-like
        // field names that several structs share.
        let mut i = 0;
        while i < toks.len() {
            if ident_at(toks, i) == Some("fn") {
                let impl_ty = enclosing_impl(toks, i);
                let (body_start, body_end) = match fn_body(toks, i) {
                    Some(span) => span,
                    None => {
                        i += 1;
                        continue;
                    }
                };
                scan_fn_locks(
                    f,
                    toks,
                    body_start,
                    body_end,
                    impl_ty.as_deref(),
                    &owners,
                    &mut edges,
                    &mut out,
                );
                i = body_end;
                continue;
            }
            i += 1;
        }
    }

    // Cycle detection over the directed graph: a node is cyclic iff one
    // of its successors reaches back to it. Each strongly connected
    // cycle is reported once, from its lexicographically smallest node.
    let mut graph: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        graph.entry(&e.from).or_default().insert(&e.to);
    }
    let cyclic: Vec<&str> = graph
        .keys()
        .copied()
        .filter(|&n| {
            graph
                .get(n)
                .into_iter()
                .flatten()
                .any(|&m| reaches(&graph, m, n))
        })
        .collect();
    for &n in &cyclic {
        let minimal = cyclic
            .iter()
            .all(|&o| o >= n || !(reaches(&graph, n, o) && reaches(&graph, o, n)));
        if !minimal {
            continue;
        }
        if let Some(witness) = edges.iter().find(|e| e.from == n) {
            out.push(Finding {
                rule: RULE_LOCK_ORDER,
                file: witness.file.clone(),
                line: witness.line,
                message: format!(
                    "lock acquisition cycle through `{n}`: concurrent threads can each hold one lock and wait on the other (deadlock)"
                ),
            });
        }
    }

    // Blessed-order inversions (flagged even without a full cycle).
    for (first, second) in &cfg.blessed_lock_order {
        for e in &edges {
            let from_field = e.from.rsplit('.').next().unwrap_or(&e.from);
            let to_field = e.to.rsplit('.').next().unwrap_or(&e.to);
            if from_field == second && to_field == first {
                out.push(Finding {
                    rule: RULE_LOCK_ORDER,
                    file: e.file.clone(),
                    line: e.line,
                    message: format!(
                        "acquires `{second}` before `{first}`, inverting the blessed {first}→{second} order"
                    ),
                });
            }
        }
    }
    out
}

fn reaches(graph: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        for &m in graph.get(n).into_iter().flatten() {
            if seen.insert(m) {
                stack.push(m);
            }
        }
    }
    false
}

/// The `impl TypeName` whose body encloses token `i`, if any.
fn enclosing_impl(toks: &[Token], i: usize) -> Option<String> {
    // Walk back, tracking brace balance; an `impl` at negative depth
    // (i.e. whose block we are inside) wins.
    let mut depth: isize = 0;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &toks[j].tok {
            Tok::Punct('}') => depth += 1,
            Tok::Punct('{') => depth -= 1,
            Tok::Ident(s) if s == "impl" && depth < 0 => {
                // `impl<G> Type<G> {` / `impl Trait for Type {` — the
                // type is the last angle-depth-0 ident before the body
                // brace (or a `where` clause), skipping `for`.
                let mut k = j + 1;
                let mut last = None;
                let mut angle: isize = 0;
                while k < i && !punct_at(toks, k, '{') {
                    match &toks[k].tok {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Ident(s) if s == "where" => break,
                        Tok::Ident(s) if s != "for" && angle == 0 => last = Some(s.clone()),
                        _ => {}
                    }
                    k += 1;
                }
                return last;
            }
            _ => {}
        }
    }
    None
}

/// The `{`..`}` token span of the fn whose `fn` keyword is at `i`.
fn fn_body(toks: &[Token], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    let mut angle: isize = 0;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct(';') if angle <= 0 => return None, // trait method decl
            Tok::Punct('{') if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let start = j;
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, j + 1));
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

struct Guard {
    node: String,
    depth: usize,
    binding: Option<String>,
}

#[allow(clippy::too_many_arguments)]
fn scan_fn_locks(
    f: &FileScan,
    toks: &[Token],
    start: usize,
    end: usize,
    impl_ty: Option<&str>,
    owners: &BTreeMap<String, Vec<String>>,
    edges: &mut Vec<LockEdge>,
    out: &mut Vec<Finding>,
) {
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut i = start;
    while i < end {
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Punct(';') => {
                // Temporaries die at end of statement.
                guards.retain(|g| g.binding.is_some() || g.depth != depth);
            }
            Tok::Ident(s) if s == "drop" && punct_at(toks, i + 1, '(') => {
                if let Some(name) = ident_at(toks, i + 2) {
                    if punct_at(toks, i + 3, ')') {
                        guards.retain(|g| g.binding.as_deref() != Some(name));
                    }
                }
            }
            _ => {}
        }
        if let Some((field, line, call_end)) = lock_acquisition(toks, i) {
            let node = qualify(&field, impl_ty, owners);
            for g in &guards {
                if g.node == node {
                    out.push(Finding {
                        rule: RULE_LOCK_ORDER,
                        file: f.path.clone(),
                        line,
                        message: format!(
                            "`{node}` is re-locked while already held — std mutexes are not reentrant"
                        ),
                    });
                } else {
                    edges.push(LockEdge {
                        from: g.node.clone(),
                        to: node.clone(),
                        file: f.path.clone(),
                        line,
                    });
                }
            }
            // A `let` names the guard only when the statement's value IS
            // the guard (modulo poison-handling adapters); a chained
            // `.fork()` etc. makes the guard a temporary that dies at
            // the statement's `;`.
            let binding = if yields_guard(toks, call_end) {
                let_binding(toks, i, depth, start)
            } else {
                None
            };
            guards.push(Guard {
                node,
                depth,
                binding,
            });
        }
        i += 1;
    }
}

/// Recognizes a lock acquisition at token `i`:
/// `.<field>.lock()` / `.read()` / `.write()`, or the poison-recovering
/// helpers `lock_unpoisoned(&…<field>)`. Returns the field, the line,
/// and the index one past the call's closing parenthesis.
fn lock_acquisition(toks: &[Token], i: usize) -> Option<(String, usize, usize)> {
    if punct_at(toks, i, '.') {
        let field = ident_at(toks, i + 1)?;
        if punct_at(toks, i + 2, '.') {
            let method = ident_at(toks, i + 3)?;
            if matches!(method, "lock" | "read" | "write") && punct_at(toks, i + 4, '(') {
                return Some((
                    field.to_string(),
                    toks[i + 3].line,
                    matching_paren(toks, i + 4)?,
                ));
            }
        }
    }
    if ident_at(toks, i) == Some("lock_unpoisoned") && punct_at(toks, i + 1, '(') {
        // Last ident before the closing paren is the field.
        let end = matching_paren(toks, i + 1)?;
        let mut last = None;
        for j in i + 2..end - 1 {
            if let Some(s) = ident_at(toks, j) {
                last = Some(s.to_string());
            }
        }
        if let Some(field) = last {
            return Some((field, toks[i].line, end));
        }
    }
    None
}

/// One past the `)` matching the `(` at `open`.
fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the expression continuing at `i` still evaluates to the lock
/// guard: nothing follows, or only poison-handling adapters chain on.
fn yields_guard(toks: &[Token], mut i: usize) -> bool {
    while punct_at(toks, i, '.') {
        if !matches!(
            ident_at(toks, i + 1),
            Some("unwrap" | "expect" | "unwrap_or_else")
        ) {
            return false;
        }
        match matching_paren(toks, i + 2) {
            Some(end) => i = end,
            None => return false,
        }
    }
    true
}

/// `Struct.field` when the owner is unambiguous (unique owner, or the
/// enclosing impl's type owns it); bare field name otherwise.
fn qualify(field: &str, impl_ty: Option<&str>, owners: &BTreeMap<String, Vec<String>>) -> String {
    match owners.get(field) {
        Some(list) if list.len() == 1 => format!("{}.{field}", list[0]),
        Some(list) => match impl_ty {
            Some(ty) if list.iter().any(|o| o == ty) => format!("{ty}.{field}"),
            _ => field.to_string(),
        },
        None => field.to_string(),
    }
}

/// Whether the acquisition at `i` is bound by `let [mut] name = …` in
/// the current statement (searching back to the statement start).
fn let_binding(toks: &[Token], i: usize, _depth: usize, fn_start: usize) -> Option<String> {
    let mut j = i;
    while j > fn_start {
        j -= 1;
        match &toks[j].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return None,
            Tok::Ident(s) if s == "let" => {
                let name_idx = if ident_at(toks, j + 1) == Some("mut") {
                    j + 2
                } else {
                    j + 1
                };
                // `let x = *m.lock().unwrap();` copies *out of* the
                // guard; the guard itself is a temporary that dies at
                // the statement's `;`.
                let mut k = name_idx + 1;
                while k < i && !punct_at(toks, k, '=') {
                    k += 1;
                }
                if punct_at(toks, k + 1, '*') {
                    return None;
                }
                return ident_at(toks, name_idx).map(String::from);
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------
// Rule 4: offline-policy
// ---------------------------------------------------------------------

fn rule_offline_api(f: &FileScan, cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &f.live;
    let connect_ok =
        f.path.contains("/bin/") || cfg.connect_allowed.iter().any(|p| f.path.ends_with(p));
    for i in 0..toks.len() {
        let Some(ty) = ident_at(toks, i) else {
            continue;
        };
        let path_sep = punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':');
        if !path_sep {
            continue;
        }
        let member = ident_at(toks, i + 3).unwrap_or("");
        if ty == "process" && member == "Command" {
            out.push(Finding {
                rule: RULE_OFFLINE,
                file: f.path.clone(),
                line: toks[i].line,
                message: "std::process::Command is forbidden (offline, no-subprocess policy)"
                    .to_string(),
            });
        }
        if !connect_ok && ty == "TcpStream" && member == "connect" {
            out.push(Finding {
                rule: RULE_OFFLINE,
                file: f.path.clone(),
                line: toks[i].line,
                message:
                    "raw TcpStream::connect outside the client/health modules; route through Client"
                        .to_string(),
            });
        }
    }
    out
}

fn rule_offline_manifest(path: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line.ends_with("dependencies]");
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, spec)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let spec = spec.trim();
        if !spec.contains("workspace = true") && !spec.contains("path =") {
            out.push(Finding {
                rule: RULE_OFFLINE,
                file: path.to_string(),
                line: lineno + 1,
                message: format!(
                    "dependency `{name}` is not workspace-internal; external crates violate the offline policy"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Rule 5: protocol-exhaustiveness
// ---------------------------------------------------------------------

fn rule_protocol(files: &[FileScan], cfg: &Config) -> Vec<Finding> {
    let Some(proto_suffix) = &cfg.protocol_file else {
        return Vec::new();
    };
    let Some(proto) = files
        .iter()
        .find(|f| f.path.ends_with(proto_suffix.as_str()))
    else {
        return Vec::new();
    };
    let toks = &proto.live;

    let mut variants: Vec<(String, usize)> = Vec::new();
    for enum_name in ["Request", "Response"] {
        variants.extend(enum_variants(toks, enum_name));
    }

    let encode = fn_body_idents(toks, &["to_json"]);
    let decode = fn_body_idents(toks, &["from_payload", "from_payload_inner"]);

    // Test corpus: the protocol file's own #[cfg(test)] code plus every
    // file under a tests/ directory.
    let mut test_idents: BTreeSet<String> = idents_of(&proto.test);
    for f in files {
        if f.path.contains("tests/") {
            test_idents.extend(idents_of(&f.live));
            test_idents.extend(idents_of(&f.test));
        }
    }

    let mut out = Vec::new();
    for (variant, line) in variants {
        for (corpus, what) in [
            (&encode, "no encode site (to_json never names it)"),
            (&decode, "no decode site (from_payload never names it)"),
            (&test_idents, "no test mentions it"),
        ] {
            if !corpus.contains(&variant) {
                out.push(Finding {
                    rule: RULE_PROTOCOL,
                    file: proto.path.clone(),
                    line,
                    message: format!("frame variant `{variant}`: {what}"),
                });
            }
        }
    }
    out
}

fn idents_of(toks: &[Token]) -> BTreeSet<String> {
    toks.iter()
        .filter_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

/// Variant names (and lines) of `enum <name> { … }`.
fn enum_variants(toks: &[Token], name: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("enum") && ident_at(toks, i + 1) == Some(name) {
            let mut j = i + 2;
            while j < toks.len() && !punct_at(toks, j, '{') {
                j += 1;
            }
            let mut depth = 1usize;
            let mut expect_variant = true;
            j += 1;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('{') | Tok::Punct('(') => {
                        depth += 1;
                        expect_variant = false;
                    }
                    Tok::Punct('}') | Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            return out;
                        }
                    }
                    Tok::Punct(',') if depth == 1 => expect_variant = true,
                    Tok::Punct('#') => expect_variant = false, // attribute on variant
                    Tok::Punct(']') if depth == 1 => expect_variant = true, // attribute closed
                    Tok::Ident(s) if depth == 1 && expect_variant => {
                        out.push((s.clone(), toks[j].line));
                        expect_variant = false;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// Union of the identifier sets of every `fn <name>` body.
fn fn_body_idents(toks: &[Token], names: &[&str]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("fn")
            && ident_at(toks, i + 1).map(|n| names.contains(&n)) == Some(true)
        {
            if let Some((start, end)) = fn_body(toks, i) {
                out.extend(idents_of(&toks[start..end]));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------

/// Renders findings as a JSON array (hand-rolled; offline policy).
pub fn to_json(findings: &[Finding]) -> String {
    let mut s = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.message)
        ));
    }
    s.push(']');
    s
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
