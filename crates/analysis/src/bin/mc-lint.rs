//! `mc-lint` — run the workspace-invariant lint rules.
//!
//! ```text
//! mc-lint [--root DIR] [--json] [--deny-all] [--list-rules]
//! ```
//!
//! Walks the workspace (the nearest ancestor of `--root`/cwd containing
//! a `crates/` directory) and prints one `file:line: rule: message`
//! diagnostic per finding. Exit status is nonzero when findings remain
//! after `// lint: allow(rule): reason` suppressions; `--deny-all`
//! additionally fails on warnings (allows that suppress nothing), which
//! is what CI runs. `--json` prints the findings as a JSON array for
//! tooling.

use std::path::PathBuf;

use xag_analysis::{lint_workspace, to_json, RULES};

fn find_root(start: PathBuf) -> PathBuf {
    let mut dir = start.clone();
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        match dir.parent() {
            Some(parent) => dir = parent.to_path_buf(),
            None => return start,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list-rules") {
        for rule in RULES {
            println!("{rule}");
        }
        return;
    }
    let root = args
        .iter()
        .position(|a| a == "--root")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            find_root(std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")))
        });
    let json = args.iter().any(|a| a == "--json");
    let deny_all = args.iter().any(|a| a == "--deny-all");

    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("mc-lint: cannot read workspace at {}: {e}", root.display());
            std::process::exit(2);
        }
    };

    if json {
        println!("{}", to_json(&report.findings));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        for w in &report.warnings {
            println!("{w} (warning)");
        }
        if report.findings.is_empty() && (report.warnings.is_empty() || !deny_all) {
            println!(
                "mc-lint: workspace clean ({} warnings)",
                report.warnings.len()
            );
        }
    }

    let failed = !report.findings.is_empty() || (deny_all && !report.warnings.is_empty());
    if failed {
        eprintln!(
            "mc-lint: {} finding(s), {} warning(s)",
            report.findings.len(),
            report.warnings.len()
        );
        std::process::exit(1);
    }
}
