//! Fixture-driven tests for the lint engine: every rule gets a hit, a
//! miss, and an allow path, plus a self-check that the live workspace
//! is clean under the same engine CI runs.

use xag_analysis::{
    lint, lint_workspace, scan_sources, Config, Report, RULE_ALLOW, RULE_DETERMINISM,
    RULE_LOCK_ORDER, RULE_OFFLINE, RULE_PANIC, RULE_PROTOCOL,
};

/// A config whose scopes bite on the fixture file names.
fn fixture_cfg() -> Config {
    Config {
        panic_path_files: vec![
            "panic_hit.rs".to_string(),
            "panic_miss.rs".to_string(),
            "panic_allow.rs".to_string(),
        ],
        time_forbidden: vec!["det_".to_string()],
        env_allowed: Vec::new(),
        connect_allowed: vec!["offline_miss.rs".to_string()],
        blessed_lock_order: vec![("cache".to_string(), "pending".to_string())],
        protocol_file: None,
    }
}

fn run(cfg: &Config, files: &[(&str, &str)], manifests: &[(&str, &str)]) -> Report {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, t)| (p.to_string(), t.to_string()))
        .collect();
    let manifests: Vec<(String, String)> = manifests
        .iter()
        .map(|(p, t)| (p.to_string(), t.to_string()))
        .collect();
    let scans = scan_sources(&sources);
    lint(&scans, &manifests, cfg)
}

fn rendered(report: &Report) -> String {
    report
        .findings
        .iter()
        .chain(report.warnings.iter())
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn panic_rule_hit_miss_allow() {
    let cfg = fixture_cfg();
    let hit = run(
        &cfg,
        &[("panic_hit.rs", include_str!("fixtures/panic_hit.rs"))],
        &[],
    );
    let hit_rules: Vec<_> = hit.findings.iter().map(|f| f.rule).collect();
    assert!(
        hit.findings.len() >= 4,
        "expected indexing + unwrap + expect + panic!, got:\n{}",
        rendered(&hit)
    );
    assert!(hit_rules.iter().all(|&r| r == RULE_PANIC));

    let miss = run(
        &cfg,
        &[("panic_miss.rs", include_str!("fixtures/panic_miss.rs"))],
        &[],
    );
    assert!(miss.findings.is_empty(), "{}", rendered(&miss));

    let allow = run(
        &cfg,
        &[("panic_allow.rs", include_str!("fixtures/panic_allow.rs"))],
        &[],
    );
    assert!(allow.findings.is_empty(), "{}", rendered(&allow));
    assert!(
        allow.warnings.is_empty(),
        "allow should be used: {}",
        rendered(&allow)
    );
}

#[test]
fn determinism_rule_hit_miss_allow() {
    let cfg = fixture_cfg();
    let hit = run(
        &cfg,
        &[("det_hit.rs", include_str!("fixtures/det_hit.rs"))],
        &[],
    );
    assert_eq!(hit.findings.len(), 2, "{}", rendered(&hit));
    assert!(hit.findings.iter().all(|f| f.rule == RULE_DETERMINISM));
    assert!(hit
        .findings
        .iter()
        .any(|f| f.message.contains("Instant::now")));
    assert!(hit.findings.iter().any(|f| f.message.contains("env")));

    let miss = run(
        &cfg,
        &[("det_miss.rs", include_str!("fixtures/det_miss.rs"))],
        &[],
    );
    assert!(miss.findings.is_empty(), "{}", rendered(&miss));

    // Out of scope, the same clock read is fine.
    let unscoped = run(
        &cfg,
        &[("other.rs", include_str!("fixtures/det_allow.rs"))],
        &[],
    );
    assert!(
        unscoped.findings.iter().all(|f| f.rule != RULE_DETERMINISM),
        "{}",
        rendered(&unscoped)
    );

    let allow = run(
        &cfg,
        &[("det_allow.rs", include_str!("fixtures/det_allow.rs"))],
        &[],
    );
    assert!(allow.findings.is_empty(), "{}", rendered(&allow));
    assert!(allow.warnings.is_empty(), "{}", rendered(&allow));
}

#[test]
fn lock_order_rule_hit_miss_allow() {
    let cfg = fixture_cfg();
    let hit = run(
        &cfg,
        &[("lock_hit.rs", include_str!("fixtures/lock_hit.rs"))],
        &[],
    );
    assert_eq!(hit.findings.len(), 1, "{}", rendered(&hit));
    assert_eq!(hit.findings[0].rule, RULE_LOCK_ORDER);
    assert!(
        hit.findings[0].message.contains("cycle"),
        "{}",
        rendered(&hit)
    );

    let miss = run(
        &cfg,
        &[("lock_miss.rs", include_str!("fixtures/lock_miss.rs"))],
        &[],
    );
    assert!(miss.findings.is_empty(), "{}", rendered(&miss));

    let allow = run(
        &cfg,
        &[("lock_allow.rs", include_str!("fixtures/lock_allow.rs"))],
        &[],
    );
    assert!(allow.findings.is_empty(), "{}", rendered(&allow));
    assert!(allow.warnings.is_empty(), "{}", rendered(&allow));
}

#[test]
fn lock_order_blessed_inversion_fires() {
    let cfg = fixture_cfg();
    let hit = run(
        &cfg,
        &[(
            "lock_blessed_hit.rs",
            include_str!("fixtures/lock_blessed_hit.rs"),
        )],
        &[],
    );
    assert_eq!(hit.findings.len(), 1, "{}", rendered(&hit));
    assert!(
        hit.findings[0].message.contains("inverting the blessed"),
        "{}",
        rendered(&hit)
    );
}

#[test]
fn offline_rule_hit_miss_allow() {
    let cfg = fixture_cfg();
    let hit = run(
        &cfg,
        &[("offline_hit.rs", include_str!("fixtures/offline_hit.rs"))],
        &[],
    );
    assert_eq!(hit.findings.len(), 2, "{}", rendered(&hit));
    assert!(hit.findings.iter().all(|f| f.rule == RULE_OFFLINE));

    // Same dial, allow-listed path: clean.
    let miss = run(
        &cfg,
        &[("offline_miss.rs", include_str!("fixtures/offline_miss.rs"))],
        &[],
    );
    assert!(miss.findings.is_empty(), "{}", rendered(&miss));

    let allow = run(
        &cfg,
        &[(
            "offline_allow.rs",
            include_str!("fixtures/offline_allow.rs"),
        )],
        &[],
    );
    assert!(allow.findings.is_empty(), "{}", rendered(&allow));
    assert!(allow.warnings.is_empty(), "{}", rendered(&allow));
}

#[test]
fn offline_manifest_hit_and_miss() {
    let cfg = fixture_cfg();
    let hit = run(
        &cfg,
        &[],
        &[(
            "hit/Cargo.toml",
            include_str!("fixtures/offline_manifest_hit.toml"),
        )],
    );
    assert_eq!(hit.findings.len(), 1, "{}", rendered(&hit));
    assert_eq!(hit.findings[0].rule, RULE_OFFLINE);
    assert!(
        hit.findings[0].message.contains("serde"),
        "{}",
        rendered(&hit)
    );

    let miss = run(
        &cfg,
        &[],
        &[(
            "miss/Cargo.toml",
            include_str!("fixtures/offline_manifest_miss.toml"),
        )],
    );
    assert!(miss.findings.is_empty(), "{}", rendered(&miss));
}

#[test]
fn protocol_rule_hit_and_miss() {
    let mut cfg = fixture_cfg();
    cfg.protocol_file = Some("proto_hit.rs".to_string());
    let hit = run(
        &cfg,
        &[("proto_hit.rs", include_str!("fixtures/proto_hit.rs"))],
        &[],
    );
    assert_eq!(hit.findings.len(), 2, "{}", rendered(&hit));
    assert!(hit.findings.iter().all(|f| f.rule == RULE_PROTOCOL));
    assert!(hit.findings.iter().all(|f| f.message.contains("Orphan")));
    assert!(hit.findings.iter().any(|f| f.message.contains("decode")));
    assert!(hit.findings.iter().any(|f| f.message.contains("test")));

    cfg.protocol_file = Some("proto_miss.rs".to_string());
    let miss = run(
        &cfg,
        &[("proto_miss.rs", include_str!("fixtures/proto_miss.rs"))],
        &[],
    );
    assert!(miss.findings.is_empty(), "{}", rendered(&miss));
}

#[test]
fn malformed_allows_are_findings_and_unused_allows_warn() {
    let cfg = fixture_cfg();
    let report = run(
        &cfg,
        &[("allow_bad.rs", include_str!("fixtures/allow_bad.rs"))],
        &[],
    );
    assert_eq!(report.findings.len(), 2, "{}", rendered(&report));
    assert!(report.findings.iter().all(|f| f.rule == RULE_ALLOW));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("no reason")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("unknown rule")));
    assert_eq!(report.warnings.len(), 2, "{}", rendered(&report));
    assert!(report
        .warnings
        .iter()
        .all(|w| w.message.contains("suppresses nothing")));
}

/// The same self-check CI runs: the engine, pointed at the live
/// workspace, must come back clean (no findings, no unused allows).
#[test]
fn live_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace readable");
    assert!(
        report.findings.is_empty() && report.warnings.is_empty(),
        "mc-lint is not clean on the live workspace:\n{}",
        rendered(&report)
    );
}
