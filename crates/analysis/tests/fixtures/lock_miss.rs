// Fixture: both functions acquire a before b — consistent order, no
// cycle. Dropping a guard or letting a temporary die also releases it.
use std::sync::Mutex;

pub struct Ordered {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Ordered {
    pub fn both(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn sequential(&self) -> u32 {
        let x = *self.b.lock().unwrap(); // temporary guard dies here
        let ga = self.a.lock().unwrap();
        *ga + x
    }

    pub fn dropped(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let x = *gb;
        drop(gb);
        let ga = self.a.lock().unwrap();
        *ga + x
    }
}
