// Fixture: this path is on the connect allow-list (it plays the role
// of the client module), so the dial is fine.
pub fn dial() {
    let _ = std::net::TcpStream::connect("127.0.0.1:1");
}
