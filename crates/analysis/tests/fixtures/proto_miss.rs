// Fixture: every variant has an encode site, a decode site, and a test
// mention — nothing fires.
pub enum Request {
    Optimize,
    Stats,
}

impl Request {
    pub fn to_json(&self) -> String {
        match self {
            Request::Optimize => "optimize".to_string(),
            Request::Stats => "stats".to_string(),
        }
    }

    pub fn from_payload(text: &str) -> Option<Request> {
        match text {
            "optimize" => Some(Request::Optimize),
            "stats" => Some(Request::Stats),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_both() {
        let _ = super::Request::Optimize;
        let _ = super::Request::Stats;
    }
}
