// Fixture: acquires `pending` before `cache`, inverting the blessed
// cache→pending order. No cycle — the inversion alone is the finding.
use std::sync::Mutex;

pub struct Store {
    cache: Mutex<u32>,
    pending: Mutex<u32>,
}

impl Store {
    pub fn inverted(&self) -> u32 {
        let p = self.pending.lock().unwrap();
        let c = self.cache.lock().unwrap();
        *p + *c
    }
}
