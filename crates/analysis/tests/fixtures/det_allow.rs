// Fixture: a reasoned allow lets a scoped clock read through.
pub fn stamp() -> u128 {
    // lint: allow(determinism): feeds a metrics counter only; never branches
    std::time::Instant::now().elapsed().as_nanos()
}
