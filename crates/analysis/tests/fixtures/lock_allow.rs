// Fixture: the same AB/BA cycle as lock_hit.rs, but the witness edge
// carries a reasoned allow (say, the two paths are proven mutually
// exclusive by a higher-level token).
use std::sync::Mutex;

pub struct Allowed {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Allowed {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        // lint: allow(lock-order): forward/backward are serialized by a startup token
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }
}
