// Fixture: two functions acquire the same pair of locks in opposite
// orders — the classic AB/BA deadlock.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u32 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        *ga + *gb
    }
}
