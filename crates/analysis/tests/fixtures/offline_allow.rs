// Fixture: a reasoned allow on the offline rule.
pub fn dial() {
    // lint: allow(offline-policy): documents the allow path for the fixture suite
    let _ = std::net::TcpStream::connect("127.0.0.1:1");
}
