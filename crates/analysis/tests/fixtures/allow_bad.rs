// Fixture: malformed allow directives. A bare allow (no reason) is a
// finding, an unknown rule name is a finding, and a reasoned allow
// that suppresses nothing is a warning.
pub fn quiet() -> u32 {
    // lint: allow(no-panic-in-request-path)
    // lint: allow(made-up-rule): not a rule the engine knows
    // lint: allow(determinism): nothing here reads the clock
    7
}
