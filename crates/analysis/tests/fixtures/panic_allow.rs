// Fixture: a reasoned allow suppresses the finding on the next line.
pub fn handle(buf: &[u8]) -> u8 {
    // lint: allow(no-panic-in-request-path): index bounded by caller contract
    buf[0]
}
