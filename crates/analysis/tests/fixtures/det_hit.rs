// Fixture: wall-clock and environment reads in a rewrite-path crate.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn knob() -> Option<String> {
    std::env::var("KNOB").ok()
}
