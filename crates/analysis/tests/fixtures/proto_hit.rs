// Fixture: `Orphan` is encoded but never decoded and never tested —
// two protocol-exhaustiveness findings.
pub enum Request {
    Optimize,
    Orphan,
}

impl Request {
    pub fn to_json(&self) -> String {
        match self {
            Request::Optimize => "optimize".to_string(),
            Request::Orphan => "orphan".to_string(),
        }
    }

    pub fn from_payload(text: &str) -> Option<Request> {
        match text {
            "optimize" => Some(Request::Optimize),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_optimize() {
        let _ = super::Request::Optimize;
    }
}
