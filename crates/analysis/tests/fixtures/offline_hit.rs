// Fixture: subprocess spawning and a raw socket dial outside the
// allow-listed client/health modules.
pub fn shell() {
    let _ = std::process::Command::new("ls");
}

pub fn dial() {
    let _ = std::net::TcpStream::connect("127.0.0.1:1");
}
