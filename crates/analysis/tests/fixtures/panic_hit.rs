// Fixture: every no-panic-in-request-path pattern fires.
pub fn handle(buf: &[u8]) -> u8 {
    let first = buf[0];
    let parsed: u8 = std::str::from_utf8(buf).unwrap().parse().expect("digit");
    if parsed == 0 {
        panic!("zero");
    }
    first + parsed
}
