// Fixture: deterministic code in a rewrite-path crate; nothing fires.
pub fn stamp(counter: u64) -> u64 {
    counter.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
}
