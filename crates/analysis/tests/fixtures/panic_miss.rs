// Fixture: fallible patterns that the panic rule must NOT flag.
pub fn handle(buf: &[u8]) -> Result<u8, String> {
    let first = *buf.get(0).ok_or("empty")?;
    let tail = &buf[..]; // full-range slice is not indexing
    Ok(first.wrapping_add(tail.len() as u8))
}
