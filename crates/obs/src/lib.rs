//! mc-obs — std-only observability core for the mc workspace.
//!
//! Five pieces, each usable alone:
//!
//! - [`metrics`]: a lock-light registry of atomic counters, gauges, and
//!   log2-bucket histograms with mergeable quantiles, rendered as
//!   Prometheus-style text.
//! - [`trace`]: span-based structured tracing — job-scoped trace IDs in
//!   a thread-local, bounded per-thread event rings, and a cross-thread
//!   dump for the `TraceDump` endpoint.
//! - [`progress`]: a board of running jobs updated at pipeline pass
//!   boundaries and snapshotted by `Status`.
//! - [`history`]: a fixed-capacity ring of timestamped metric snapshots
//!   with 10s/1m/5m sliding-window rates, merged cluster-wide by the
//!   `MetricsHistory` endpoint.
//! - [`prof`]: the continuous phase profiler — per-phase self/total time
//!   in folded-stack form for the `ProfDump` endpoint.
//!
//! The crate has no dependencies and no feature flags: instrumentation
//! call sites in core/serve/cluster pay a few relaxed atomics or one
//! short ring push per *pass, round, shard, node, or request* — never per
//! cut — so it stays on unconditionally.

pub mod history;
pub mod metrics;
pub mod prof;
pub mod progress;
pub mod trace;

pub use history::{history, History, HistorySource, HistoryWindow, Sample, WINDOWS_SECS};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use prof::{phase, PhaseStat};
pub use progress::{job_scope, snapshot as progress_snapshot, update_current, JobProgress};
pub use trace::{
    current_trace_id, dump as trace_dump, epoch_us, instant, next_trace_id, record, span,
    trace_scope, TraceEvent,
};

use std::sync::OnceLock;

/// The process-wide metric registry. Every tier records here; the
/// `Metrics` endpoint renders it.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        registry().counter("obs_test_total").inc();
        assert!(registry().counter("obs_test_total").get() >= 1);
        assert!(registry().render().contains("obs_test_total"));
    }
}
