//! The continuous phase profiler: always-on, self/total time per phase,
//! folded-stack output.
//!
//! A *phase* is a named scope entered with [`phase`]; nesting builds a
//! stack whose joined names form a path (`pipeline;mc_rewrite;cut_enum`),
//! exactly the folded-stack format flamegraph tools consume. Each exit
//! accumulates the phase's *total* time and its *self* time (total minus
//! the time spent in child phases) into a thread-local table; the table
//! flushes into the process-global profile only when the thread's stack
//! empties — once per pass, not once per phase — so the global lock never
//! shows up in a profile of the profiler.
//!
//! The overhead budget is the design constraint everything here serves:
//! phases are entered at pass, round, shard, or node granularity — never
//! per cut — and one enter/exit is two `Instant` reads plus a stack
//! push/pop. `hotpath_bench` gates this empirically with its
//! profiler-on/off ratio row (see `xag-bench`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Maximum phase nesting depth; deeper phases are silently skipped (the
/// pipeline uses four levels).
pub const MAX_DEPTH: usize = 8;

/// Accumulated timings of one phase path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// The semicolon-joined phase stack, e.g. `pipeline;mc_rewrite;cut_enum`.
    pub path: String,
    /// Number of enter/exit pairs.
    pub count: u64,
    /// Total wall time inside the phase, µs (includes child phases).
    pub total_us: u64,
    /// Wall time inside the phase excluding child phases, µs.
    pub self_us: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    count: u64,
    total_us: u64,
    self_us: u64,
}

type PathKey = [&'static str; MAX_DEPTH];

struct Frame {
    name: &'static str,
    start: Instant,
    child_us: u64,
}

#[derive(Default)]
struct ProfLocal {
    stack: Vec<Frame>,
    acc: HashMap<PathKey, Totals>,
}

impl ProfLocal {
    fn flush(&mut self) {
        if self.acc.is_empty() {
            return;
        }
        let mut global = global().lock().expect("prof lock poisoned");
        for (key, t) in self.acc.drain() {
            let path = key
                .iter()
                .take_while(|n| !n.is_empty())
                .copied()
                .collect::<Vec<_>>()
                .join(";");
            let entry = global.entry(path).or_default();
            entry.count += t.count;
            entry.total_us += t.total_us;
            entry.self_us += t.self_us;
        }
    }
}

impl Drop for ProfLocal {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<ProfLocal> = RefCell::new(ProfLocal::default());
}

fn global() -> &'static Mutex<HashMap<String, Totals>> {
    static GLOBAL: OnceLock<Mutex<HashMap<String, Totals>>> = OnceLock::new();
    GLOBAL.get_or_init(Mutex::default)
}

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns the profiler on or off process-wide. On by default; the off
/// switch exists for the overhead microbenchmark and as an operator
/// escape hatch, not because the overhead needs one.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether [`phase`] currently records.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enters a phase; the returned guard exits it on drop. Guards must nest
/// (drop in reverse entry order), which scoping gives for free. When the
/// profiler is disabled or the stack is at [`MAX_DEPTH`], the guard is
/// inert.
pub fn phase(name: &'static str) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard { name: None };
    }
    let entered = LOCAL
        .try_with(|local| {
            let mut local = local.borrow_mut();
            if local.stack.len() >= MAX_DEPTH {
                return false;
            }
            local.stack.push(Frame {
                name,
                start: Instant::now(),
                child_us: 0,
            });
            true
        })
        .unwrap_or(false);
    PhaseGuard {
        name: entered.then_some(name),
    }
}

/// RAII guard for one phase entry. See [`phase`].
#[must_use = "a phase is timed until the guard drops"]
pub struct PhaseGuard {
    name: Option<&'static str>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let Some(name) = self.name else { return };
        let _ = LOCAL.try_with(|local| {
            let mut local = local.borrow_mut();
            let Some(frame) = local.stack.pop() else {
                return;
            };
            debug_assert_eq!(frame.name, name, "phase guards dropped out of order");
            let total_us = frame.start.elapsed().as_micros() as u64;
            let self_us = total_us.saturating_sub(frame.child_us);
            if let Some(parent) = local.stack.last_mut() {
                parent.child_us += total_us;
            }
            let mut key: PathKey = [""; MAX_DEPTH];
            for (slot, f) in key.iter_mut().zip(local.stack.iter()) {
                *slot = f.name;
            }
            key[local.stack.len()] = frame.name;
            let t = local.acc.entry(key).or_default();
            t.count += 1;
            t.total_us += total_us;
            t.self_us += self_us;
            if local.stack.is_empty() {
                local.flush();
            }
        });
    }
}

/// The accumulated profile, sorted by path. Live phases (still on some
/// thread's stack) and un-flushed thread-local tables are not included —
/// the snapshot is exact at pass boundaries, which is the granularity
/// the profile is read at.
pub fn snapshot() -> Vec<PhaseStat> {
    let global = global().lock().expect("prof lock poisoned");
    let mut stats: Vec<PhaseStat> = global
        .iter()
        .map(|(path, t)| PhaseStat {
            path: path.clone(),
            count: t.count,
            total_us: t.total_us,
            self_us: t.self_us,
        })
        .collect();
    stats.sort_by(|a, b| a.path.cmp(&b.path));
    stats
}

/// The profile in folded-stack form — one `path self_us` line per phase
/// path, ready for flamegraph tooling.
pub fn folded() -> String {
    let mut out = String::new();
    for s in snapshot() {
        out.push_str(&format!("{} {}\n", s.path, s.self_us));
    }
    out
}

/// Clears the accumulated profile (benchmarks and tests).
pub fn reset() {
    global().lock().expect("prof lock poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The profile is process-global; tests serialize on this to keep
    /// `reset`/`set_enabled` from racing each other.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn stat(path: &str) -> Option<PhaseStat> {
        snapshot().into_iter().find(|s| s.path == path)
    }

    #[test]
    fn nested_phases_split_self_and_total() {
        let _guard = test_lock();
        reset();
        {
            let _outer = phase("t_outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = phase("t_inner");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        let outer = stat("t_outer").expect("outer recorded");
        let inner = stat("t_outer;t_inner").expect("inner recorded under outer");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(inner.total_us >= 5_000, "{inner:?}");
        assert!(outer.total_us >= inner.total_us, "{outer:?} vs {inner:?}");
        assert_eq!(inner.total_us, inner.self_us, "leaf: self == total");
        assert_eq!(outer.self_us, outer.total_us - inner.total_us);
    }

    #[test]
    fn repeated_phases_accumulate_counts() {
        let _guard = test_lock();
        reset();
        for _ in 0..3 {
            let _p = phase("t_repeat");
        }
        assert_eq!(stat("t_repeat").expect("recorded").count, 3);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _guard = test_lock();
        reset();
        set_enabled(false);
        {
            let _p = phase("t_disabled");
        }
        set_enabled(true);
        assert!(stat("t_disabled").is_none());
    }

    #[test]
    fn folded_lines_are_flamegraph_shaped() {
        let _guard = test_lock();
        reset();
        {
            let _a = phase("t_fold_a");
            let _b = phase("t_fold_b");
        }
        let folded = folded();
        assert!(
            folded.lines().any(|l| l.starts_with("t_fold_a;t_fold_b ")
                && l.split(' ')
                    .nth(1)
                    .is_some_and(|n| n.parse::<u64>().is_ok())),
            "{folded}"
        );
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _guard = test_lock();
        reset();
        std::thread::spawn(|| {
            let _p = phase("t_worker");
        })
        .join()
        .expect("worker");
        assert_eq!(stat("t_worker").expect("flushed").count, 1);
    }

    #[test]
    fn depth_overflow_is_skipped_not_corrupted() {
        let _guard = test_lock();
        reset();
        let mut guards = Vec::new();
        for _ in 0..MAX_DEPTH + 3 {
            guards.push(phase("t_deep"));
        }
        drop(guards);
        let total: u64 = snapshot()
            .iter()
            .filter(|s| s.path.contains("t_deep"))
            .map(|s| s.count)
            .sum();
        assert_eq!(total as usize, MAX_DEPTH);
    }
}
