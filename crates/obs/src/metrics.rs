//! The metric registry: atomic counters and gauges plus fixed
//! log2-bucket latency histograms.
//!
//! Everything here is built for the hot path of a long-running service:
//! a metric handle is an `Arc` over plain atomics, so recording a value
//! is a handful of relaxed atomic adds — no lock, no allocation. The
//! registry itself takes a lock only on *registration* (the first time a
//! name is seen) and on *rendering* (the `metrics` endpoint); both are
//! off the optimization hot path.
//!
//! Histograms use fixed power-of-two buckets: bucket `b` counts values
//! `v` with `2^(b-1) <= v < 2^b` (bucket 0 counts zero). That makes
//! [`Histogram::merge`] a plain per-bucket add — associative and
//! commutative, which is what lets a cluster router sum per-backend
//! histograms without loss — and quantile readout a single cumulative
//! walk. The price is resolution (a quantile is only exact up to its
//! bucket's upper bound), which is the right trade for latencies: the
//! interesting differences are multiplicative.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets. Values at or above `2^(BUCKETS-2)` all land
/// in the last (overflow) bucket; with microsecond values that bound is
/// ~2^38 µs ≈ 3 days — far beyond any latency worth resolving.
pub const BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge (e.g. a round-trip time, a queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed log2-bucket histogram with count, sum, and quantile readout.
/// See the [module documentation](self) for the bucket layout.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: core::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index of a value: 0 for 0, otherwise `floor(log2(v)) + 1`,
/// clamped into the overflow bucket.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound of a bucket: the largest value it counts.
pub fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds every observation of `other` into `self`. Bucket-wise
    /// addition, so merging is associative and commutative — the property
    /// that makes cluster-wide aggregation exact (up to bucket
    /// resolution, which per-node recording already paid).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A snapshot of the per-bucket counts. The history ring stores these
    /// so a sliding window can subtract two cumulative snapshots and read
    /// quantiles off the delta.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        core::array::from_fn(|b| self.buckets[b].load(Ordering::Relaxed))
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// `(p50, p90, p99)` in one call — the readout the service endpoints
    /// report.
    pub fn quantiles(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of metrics with Prometheus-style text rendering.
///
/// Names may carry `{label="value"}` suffixes; the registry treats the
/// whole string as the key and renders it verbatim, so label cardinality
/// is the caller's responsibility (keep it bounded: backend ids, pass
/// names — never client-controlled strings).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use. Cache the handle
    /// when recording from a loop.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics lock poisoned");
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics lock poisoned");
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics lock poisoned");
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// Renders every metric as Prometheus-style text, sorted by name.
    /// Counters and gauges are one `name value` line; a histogram `h`
    /// renders `h_count`, `h_sum`, `h_p50`/`h_p90`/`h_p99`, and cumulative
    /// `h_bucket{le="..."}` lines (occupied buckets only, plus `+Inf`, so
    /// the 40-bucket layout does not bloat the endpoint).
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics lock poisoned");
        let mut out = String::new();
        for (name, c) in &inner.counters {
            out.push_str(&format!("{name} {}\n", c.get()));
        }
        for (name, g) in &inner.gauges {
            out.push_str(&format!("{name} {}\n", g.get()));
        }
        for (name, h) in &inner.histograms {
            let (p50, p90, p99) = h.quantiles();
            out.push_str(&format!("{name}_count {}\n", h.count()));
            out.push_str(&format!("{name}_sum {}\n", h.sum()));
            out.push_str(&format!("{name}_p50 {p50}\n"));
            out.push_str(&format!("{name}_p90 {p90}\n"));
            out.push_str(&format!("{name}_p99 {p99}\n"));
            let mut cumulative = 0u64;
            for (b, n) in h.bucket_counts().iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                cumulative += n;
                out.push_str(&bucket_line(name, &bucket_upper(b).to_string(), cumulative));
            }
            out.push_str(&bucket_line(name, "+Inf", h.count()));
        }
        out
    }
}

/// One cumulative-bucket line. A name that already carries
/// `{label="value"}` suffixes gets `le` spliced in as the first label so
/// the output stays parseable.
fn bucket_line(name: &str, le: &str, cumulative: u64) -> String {
    match name.find('{') {
        Some(i) => format!(
            "{}_bucket{{le=\"{le}\",{} {cumulative}\n",
            &name[..i],
            &name[i + 1..]
        ),
        None => format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("jobs_total");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("jobs_total").get(), 5, "same handle by name");
        let g = r.gauge("rtt_us");
        g.set(120);
        g.set(80);
        assert_eq!(g.get(), 80, "gauge is last-write-wins");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantiles(), (0, 0, 0));
    }

    #[test]
    fn single_bucket_histogram_reports_its_bound() {
        let h = Histogram::new();
        // 5 and 6 share bucket [4, 8) with upper bound 7.
        h.record(5);
        h.record(6);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 11);
        assert_eq!(h.quantile(0.0), 7);
        assert_eq!(h.quantile(0.5), 7);
        assert_eq!(h.quantile(1.0), 7);
        // Zero lands in its own bucket.
        let z = Histogram::new();
        z.record(0);
        assert_eq!(z.quantile(0.99), 0);
    }

    #[test]
    fn overflow_bucket_catches_huge_values() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 62);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.5), u64::MAX);
        // The sum saturates only by wrapping; both values recorded.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 62), BUCKETS - 1);
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10); // bucket [8,16), upper 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512,1024), upper 1023
        }
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(0.90), 15);
        assert_eq!(h.quantile(0.99), 1023);
        assert_eq!(h.quantile(1.0), 1023);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let observations: [&[u64]; 3] = [&[1, 2, 3, 400], &[7, 7, 7], &[0, 1 << 50]];
        let fill = |obs: &[u64]| {
            let h = Histogram::new();
            for &v in obs {
                h.record(v);
            }
            h
        };
        let snapshot = |h: &Histogram| {
            let mut s = vec![h.count(), h.sum()];
            for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
                s.push(h.quantile(q));
            }
            s
        };
        // (a + b) + c == a + (b + c)
        let left = fill(observations[0]);
        left.merge(&fill(observations[1]));
        left.merge(&fill(observations[2]));
        let bc = fill(observations[1]);
        bc.merge(&fill(observations[2]));
        let right = fill(observations[0]);
        right.merge(&bc);
        assert_eq!(snapshot(&left), snapshot(&right));
        // a + b == b + a
        let ab = fill(observations[0]);
        ab.merge(&fill(observations[1]));
        let ba = fill(observations[1]);
        ba.merge(&fill(observations[0]));
        assert_eq!(snapshot(&ab), snapshot(&ba));
    }

    #[test]
    fn render_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b_total").add(2);
        r.counter("a_total").inc();
        r.gauge("g{backend=\"1\"}").set(9);
        r.histogram("lat_us").record(100);
        let text = r.render();
        let a = text.find("a_total 1").expect("a_total rendered");
        let b = text.find("b_total 2").expect("b_total rendered");
        assert!(a < b, "sorted by name");
        assert!(text.contains("g{backend=\"1\"} 9"));
        assert!(text.contains("lat_us_count 1"));
        assert!(text.contains("lat_us_sum 100"));
        assert!(text.contains("lat_us_p50 127"));
    }

    #[test]
    fn render_emits_cumulative_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat_us");
        h.record(5); // bucket upper 7
        h.record(6); // same bucket
        h.record(100); // bucket upper 127
        let text = r.render();
        assert!(text.contains("lat_us_bucket{le=\"7\"} 2"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"127\"} 3"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3"), "{text}");
        // Empty buckets are skipped.
        assert!(!text.contains("le=\"0\""), "{text}");
    }

    #[test]
    fn bucket_lines_splice_le_into_existing_labels() {
        let line = bucket_line("rt_us{backend=\"2\"}", "15", 4);
        assert_eq!(line, "rt_us_bucket{le=\"15\",backend=\"2\"} 4\n");
    }

    #[test]
    fn bucket_counts_snapshot_matches_recording() {
        let h = Histogram::new();
        h.record(0);
        h.record(5);
        h.record(5);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[bucket_of(5)], 2);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
    }
}
