//! Span-based structured tracing with job-scoped trace IDs.
//!
//! The model is deliberately small: a *trace ID* is a nonzero `u64`
//! carried in a thread-local; a *span* is a named interval recorded when
//! its guard drops; an *instant* is a zero-duration event. Events land in
//! a bounded per-thread ring buffer, so recording contends only with the
//! dump path (a `TraceDump` request), never with other worker threads.
//! When a ring fills, the oldest events are dropped — tracing must never
//! stall or grow the process. A thread that exits bequeaths its
//! remaining events to a shared orphan ring (same bound), so the spans
//! of short-lived threads — connection handlers, scoped workers —
//! survive until a dump reads them.
//!
//! Timestamps are microseconds since `UNIX_EPOCH`, not a process-local
//! `Instant`, so events recorded on a router and on a backend line up on
//! one timeline when the router merges trace dumps.
//!
//! Propagation across threads and processes is explicit: capture
//! [`current_trace_id`] before spawning (or serialize it into a request
//! frame), then re-establish it on the other side with [`trace_scope`].

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Events kept per thread; the oldest are dropped when full.
pub const RING_CAPACITY: usize = 4096;

/// Most recent events returned by a single [`dump`] call.
pub const DUMP_LIMIT: usize = 16384;

/// One recorded event: a completed span or an instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Trace this event belongs to (0 = recorded outside any trace).
    pub trace_id: u64,
    /// Span or event name, e.g. `pass:mc` or `frame:malformed`.
    pub span: String,
    /// Microseconds since `UNIX_EPOCH` at span start.
    pub start_us: u64,
    /// Span duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Free-form detail, e.g. `rewrites=12 cuts=4096`.
    pub detail: String,
}

/// Microseconds since `UNIX_EPOCH` now.
pub fn epoch_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

struct Ring {
    events: Mutex<VecDeque<TraceEvent>>,
}

impl Ring {
    fn push(&self, ev: TraceEvent) {
        let mut events = self.events.lock().expect("trace ring poisoned");
        if events.len() == RING_CAPACITY {
            events.pop_front();
        }
        events.push_back(ev);
    }

    fn extend(&self, incoming: impl IntoIterator<Item = TraceEvent>) {
        let mut events = self.events.lock().expect("trace ring poisoned");
        for ev in incoming {
            if events.len() == RING_CAPACITY {
                events.pop_front();
            }
            events.push_back(ev);
        }
    }
}

fn rings() -> &'static Mutex<Vec<Weak<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Weak<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(Mutex::default)
}

/// Events inherited from exited threads. Connection handlers and scoped
/// workers are short-lived by design; without this, their spans would
/// die with their thread-local ring before any `TraceDump` could read
/// them. Bounded like every ring — drop-oldest.
fn orphan_ring() -> &'static Ring {
    static ORPHANS: OnceLock<Ring> = OnceLock::new();
    ORPHANS.get_or_init(|| Ring {
        events: Mutex::new(VecDeque::new()),
    })
}

/// The thread-local ring plus its exit hook: when the owning thread
/// dies, whatever it recorded moves to the shared orphan ring.
struct LocalRing {
    ring: Arc<Ring>,
}

impl LocalRing {
    fn push(&self, ev: TraceEvent) {
        self.ring.push(ev);
    }
}

impl Drop for LocalRing {
    fn drop(&mut self) {
        let drained: Vec<TraceEvent> = {
            let mut events = self.ring.events.lock().expect("trace ring poisoned");
            events.drain(..).collect()
        };
        if !drained.is_empty() {
            orphan_ring().extend(drained);
        }
    }
}

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
    static LOCAL_RING: LocalRing = {
        let ring = Arc::new(Ring { events: Mutex::new(VecDeque::new()) });
        let mut all = rings().lock().expect("trace registry poisoned");
        // Reap rings of exited threads while we hold the lock anyway.
        all.retain(|w| w.strong_count() > 0);
        all.push(Arc::downgrade(&ring));
        LocalRing { ring }
    };
}

/// The trace ID active on this thread, or 0 if none.
pub fn current_trace_id() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// A fresh nonzero trace ID. Seeded from the wall clock and process id,
/// then sequential — unique enough to keep concurrent jobs apart, with
/// no coordination.
pub fn next_trace_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    let next = NEXT.get_or_init(|| {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1)
            ^ ((std::process::id() as u64) << 32);
        AtomicU64::new(seed | 1)
    });
    let mut id = next.fetch_add(1, Ordering::Relaxed);
    if id == 0 {
        id = next.fetch_add(1, Ordering::Relaxed);
    }
    id
}

/// Sets the thread's current trace ID for the guard's lifetime,
/// restoring the previous one on drop. Scopes nest.
pub struct TraceScope {
    prev: u64,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// Establishes `trace_id` as this thread's current trace. Use at every
/// propagation boundary: worker threads, scoped shard threads, and the
/// server side of a frame carrying a trace ID.
pub fn trace_scope(trace_id: u64) -> TraceScope {
    let prev = CURRENT_TRACE.with(|c| c.replace(trace_id));
    TraceScope { prev }
}

/// Times a named interval; the event is recorded when the guard drops.
/// Call [`SpanGuard::detail`] to attach detail discovered mid-span.
pub struct SpanGuard {
    span: &'static str,
    trace_id: u64,
    start_us: u64,
    started: Instant,
    detail: String,
}

impl SpanGuard {
    /// Replaces the span's detail string.
    pub fn detail(&mut self, detail: String) {
        self.detail = detail;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ev = TraceEvent {
            trace_id: self.trace_id,
            span: self.span.to_string(),
            start_us: self.start_us,
            dur_us: self.started.elapsed().as_micros() as u64,
            detail: std::mem::take(&mut self.detail),
        };
        LOCAL_RING.with(|r| r.push(ev));
    }
}

/// Starts a span under the thread's current trace ID.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        span: name,
        trace_id: current_trace_id(),
        start_us: epoch_us(),
        started: Instant::now(),
        detail: String::new(),
    }
}

/// Records an already-timed span under the thread's current trace ID.
/// For call sites that measured the interval themselves (e.g. a pass
/// whose `elapsed` is part of its statistics) and only want the event.
pub fn record(name: &str, start_us: u64, dur_us: u64, detail: String) {
    let ev = TraceEvent {
        trace_id: current_trace_id(),
        span: name.to_string(),
        start_us,
        dur_us,
        detail,
    };
    LOCAL_RING.with(|r| r.push(ev));
}

/// Records a zero-duration event under the thread's current trace ID.
pub fn instant(name: &str, detail: String) {
    let ev = TraceEvent {
        trace_id: current_trace_id(),
        span: name.to_string(),
        start_us: epoch_us(),
        dur_us: 0,
        detail,
    };
    LOCAL_RING.with(|r| r.push(ev));
}

/// Snapshots events from every live thread's ring, optionally filtered
/// to one trace ID, sorted by start time. Capped at [`DUMP_LIMIT`] most
/// recent events.
pub fn dump(trace_id: Option<u64>) -> Vec<TraceEvent> {
    // Touch the local ring so the dumping thread's own events appear.
    LOCAL_RING.with(|_| {});
    let all: Vec<Arc<Ring>> = {
        let mut rings = rings().lock().expect("trace registry poisoned");
        rings.retain(|w| w.strong_count() > 0);
        rings.iter().filter_map(Weak::upgrade).collect()
    };
    let mut out = Vec::new();
    let orphans = orphan_ring();
    for events in all
        .iter()
        .map(|r| r.events.lock().expect("trace ring poisoned"))
        .chain(std::iter::once(
            // lint: allow(lock-order): distinct ring objects; the orphan ring is never registered
            orphans.events.lock().expect("trace ring poisoned"),
        ))
    {
        match trace_id {
            Some(id) => out.extend(events.iter().filter(|e| e.trace_id == id).cloned()),
            None => out.extend(events.iter().cloned()),
        }
    }
    out.sort_by_key(|e| (e.start_us, e.dur_us));
    if out.len() > DUMP_LIMIT {
        out.drain(..out.len() - DUMP_LIMIT);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current_trace_id(), 0);
        {
            let _outer = trace_scope(7);
            assert_eq!(current_trace_id(), 7);
            {
                let _inner = trace_scope(9);
                assert_eq!(current_trace_id(), 9);
            }
            assert_eq!(current_trace_id(), 7);
        }
        assert_eq!(current_trace_id(), 0);
    }

    #[test]
    fn spans_and_instants_are_dumped_per_trace() {
        let id = next_trace_id();
        {
            let _scope = trace_scope(id);
            {
                let mut s = span("test:work");
                s.detail("items=3".to_string());
            }
            instant("test:tick", "n=1".to_string());
        }
        let events = dump(Some(id));
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .any(|e| e.span == "test:work" && e.detail == "items=3"));
        assert!(events
            .iter()
            .any(|e| e.span == "test:tick" && e.dur_us == 0));
        for e in &events {
            assert_eq!(e.trace_id, id);
        }
    }

    #[test]
    fn dump_sees_other_threads() {
        let id = next_trace_id();
        std::thread::spawn(move || {
            let _scope = trace_scope(id);
            instant("test:remote", String::new());
            // Keep the thread alive until the main thread dumps, so the
            // ring's weak pointer stays upgradable.
            std::thread::sleep(std::time::Duration::from_millis(200));
        });
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        loop {
            let events = dump(Some(id));
            if events.iter().any(|e| e.span == "test:remote") {
                break;
            }
            assert!(Instant::now() < deadline, "remote event never appeared");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    #[test]
    fn events_survive_their_thread() {
        let id = next_trace_id();
        std::thread::spawn(move || {
            let _scope = trace_scope(id);
            instant("test:dying-thread", String::new());
        })
        .join()
        .unwrap();
        // The recording thread is gone; its ring was drained into the
        // orphan ring, so the event must still be dumpable.
        let events = dump(Some(id));
        assert!(
            events.iter().any(|e| e.span == "test:dying-thread"),
            "event lost with its thread: {events:?}"
        );
    }

    #[test]
    fn ring_drops_oldest_when_full() {
        let id = next_trace_id();
        let _scope = trace_scope(id);
        for i in 0..(RING_CAPACITY + 10) {
            instant("test:flood", format!("i={i}"));
        }
        let events = dump(Some(id));
        assert!(events.len() <= RING_CAPACITY);
        assert!(
            !events.iter().any(|e| e.detail == "i=0"),
            "oldest event should have been evicted"
        );
        assert!(events
            .iter()
            .any(|e| e.detail == format!("i={}", RING_CAPACITY + 9)));
    }

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }
}
