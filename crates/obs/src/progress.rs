//! The job progress board: where every running job currently is.
//!
//! The serve worker opens a [`job_scope`] before running a job; the
//! pipeline calls [`update_current`] at each pass boundary. A `Status`
//! request snapshots the board, so a client can see "job 12, pass mc,
//! round 3" mid-run instead of a bare busy count. The board holds only
//! *running* jobs — the guard removes the entry on drop, so a crashed or
//! finished job never lingers.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// A running job's latest known position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobProgress {
    /// Server-assigned job id.
    pub job_id: u64,
    /// Trace ID the job runs under (0 = untraced).
    pub trace_id: u64,
    /// Normalized flow text, e.g. `mc(cut=4);xor`.
    pub flow: String,
    /// Pass currently executing (empty until the first boundary).
    pub pass: String,
    /// Pass boundaries crossed so far.
    pub round: usize,
    /// Milliseconds since the job started.
    pub elapsed_ms: u64,
}

struct BoardEntry {
    progress: JobProgress,
    started: Instant,
}

fn board() -> &'static Mutex<HashMap<u64, BoardEntry>> {
    static BOARD: OnceLock<Mutex<HashMap<u64, BoardEntry>>> = OnceLock::new();
    BOARD.get_or_init(Mutex::default)
}

thread_local! {
    static CURRENT_JOB: Cell<u64> = const { Cell::new(0) };
}

/// Removes the job from the board and clears the thread-local job id
/// when dropped.
pub struct JobScope {
    job_id: u64,
    prev: u64,
}

impl Drop for JobScope {
    fn drop(&mut self) {
        CURRENT_JOB.with(|c| c.set(self.prev));
        board()
            .lock()
            .expect("progress board poisoned")
            .remove(&self.job_id);
    }
}

/// Registers a job as running on this thread. Pass boundaries reached
/// while the guard lives update this job's entry.
pub fn job_scope(job_id: u64, trace_id: u64, flow: String) -> JobScope {
    let prev = CURRENT_JOB.with(|c| c.replace(job_id));
    board().lock().expect("progress board poisoned").insert(
        job_id,
        BoardEntry {
            progress: JobProgress {
                job_id,
                trace_id,
                flow,
                pass: String::new(),
                round: 0,
                elapsed_ms: 0,
            },
            started: Instant::now(),
        },
    );
    JobScope { job_id, prev }
}

/// Advances the current thread's job to `pass`, bumping its boundary
/// count. A no-op outside any [`job_scope`] — the pipeline can call this
/// unconditionally.
pub fn update_current(pass: &str) {
    let job_id = CURRENT_JOB.with(|c| c.get());
    if job_id == 0 {
        return;
    }
    let mut board = board().lock().expect("progress board poisoned");
    if let Some(entry) = board.get_mut(&job_id) {
        entry.progress.pass = pass.to_string();
        entry.progress.round += 1;
        entry.progress.elapsed_ms = entry.started.elapsed().as_millis() as u64;
    }
}

/// Every running job, sorted by job id.
pub fn snapshot() -> Vec<JobProgress> {
    let board = board().lock().expect("progress board poisoned");
    let mut jobs: Vec<JobProgress> = board.values().map(|e| e.progress.clone()).collect();
    jobs.sort_by_key(|j| j.job_id);
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_registers_updates_and_clears() {
        let job_id = 0xfeed_0001;
        {
            let _scope = job_scope(job_id, 42, "mc;xor".to_string());
            update_current("mc");
            update_current("xor");
            let jobs = snapshot();
            let me = jobs
                .iter()
                .find(|j| j.job_id == job_id)
                .expect("job on board");
            assert_eq!(me.trace_id, 42);
            assert_eq!(me.flow, "mc;xor");
            assert_eq!(me.pass, "xor");
            assert_eq!(me.round, 2);
        }
        assert!(
            !snapshot().iter().any(|j| j.job_id == job_id),
            "scope drop removes the entry"
        );
    }

    #[test]
    fn update_without_scope_is_a_no_op() {
        let before = snapshot().len();
        update_current("mc");
        assert_eq!(snapshot().len(), before);
    }
}
