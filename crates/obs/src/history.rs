//! Metrics history: a fixed-capacity ring of timestamped snapshots with
//! sliding-window derivations.
//!
//! The live registry ([`crate::metrics`]) only answers "how much since
//! process start". Operators ask a different question — "what is the
//! cluster doing *right now*" — which needs rates: jobs/s, cache
//! hit-rate, retry rate, latency quantiles over the last 10 seconds, not
//! the last week. A sampler thread in the daemon and the router pushes a
//! cumulative [`Sample`] every interval; a window is then the *delta*
//! between the newest sample and the oldest sample inside the window, so
//! rates never need per-event bookkeeping on the hot path.
//!
//! Everything is built for exact cluster-wide aggregation: a
//! [`HistoryWindow`] is raw deltas (counts and per-bucket latency
//! counts), not derived rates, so the router can merge per-backend
//! windows by plain addition — associative and commutative, same
//! argument as [`crate::metrics::Histogram::merge`] — and derive rates
//! once at the edge. Timestamps come in from the caller, which keeps the
//! window math testable against a synthetic clock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{bucket_upper, Counter, Gauge, Histogram, BUCKETS};

/// The standard window lengths, in seconds: 10s / 1m / 5m.
pub const WINDOWS_SECS: [u64; 3] = [10, 60, 300];

/// Default ring capacity: 12 minutes of 1 s samples — comfortably more
/// than the longest (5 m) window.
pub const DEFAULT_CAPACITY: usize = 720;

/// One cumulative snapshot of the service counters, stamped with an
/// epoch-milliseconds clock supplied by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Epoch milliseconds at which the snapshot was taken.
    pub at_ms: u64,
    /// Jobs completed since process start.
    pub jobs: u64,
    /// Cache hits since process start.
    pub hits: u64,
    /// Cache misses since process start.
    pub misses: u64,
    /// Dispatch retries since process start (routers; zero on backends).
    pub retries: u64,
    /// Errors since process start.
    pub errors: u64,
    /// Instantaneous queue depth.
    pub queue_depth: u64,
    /// Instantaneous busy-worker count.
    pub busy: u64,
    /// Cumulative latency observation count.
    pub lat_count: u64,
    /// Cumulative latency sum (µs).
    pub lat_sum: u64,
    /// Cumulative per-bucket latency counts (see [`crate::metrics`]).
    pub lat_buckets: [u64; BUCKETS],
}

impl Sample {
    /// An all-zero sample at `at_ms`.
    pub fn zero(at_ms: u64) -> Self {
        Self {
            at_ms,
            jobs: 0,
            hits: 0,
            misses: 0,
            retries: 0,
            errors: 0,
            queue_depth: 0,
            busy: 0,
            lat_count: 0,
            lat_sum: 0,
            lat_buckets: [0; BUCKETS],
        }
    }
}

/// The metric handles a sampler reads each tick. Each service wires its
/// own names (the daemon's `serve_*`, the router's `cluster_*`); handles
/// are cached `Arc`s so a tick is a handful of relaxed loads.
pub struct HistorySource {
    /// Completed-jobs counter.
    pub jobs: Arc<Counter>,
    /// Cache-hit counter.
    pub hits: Arc<Counter>,
    /// Cache-miss counter.
    pub misses: Arc<Counter>,
    /// Retry counter.
    pub retries: Arc<Counter>,
    /// Error counter.
    pub errors: Arc<Counter>,
    /// Queue-depth gauge.
    pub queue_depth: Arc<Gauge>,
    /// Busy-workers gauge.
    pub busy: Arc<Gauge>,
    /// Job-latency histogram.
    pub latency: Arc<Histogram>,
}

impl HistorySource {
    /// Reads every handle into a snapshot stamped `at_ms`.
    pub fn sample(&self, at_ms: u64) -> Sample {
        Sample {
            at_ms,
            jobs: self.jobs.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            retries: self.retries.get(),
            errors: self.errors.get(),
            queue_depth: self.queue_depth.get(),
            busy: self.busy.get(),
            lat_count: self.latency.count(),
            lat_sum: self.latency.sum(),
            lat_buckets: self.latency.bucket_counts(),
        }
    }
}

/// Raw deltas over one sliding window — the wire and merge unit.
///
/// Merging is field-wise addition (span takes the max), so cluster-wide
/// aggregation is exact and order-independent; rates are derived *after*
/// merging via [`HistoryWindow::jobs_per_sec`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryWindow {
    /// Nominal window length in seconds.
    pub window_secs: u64,
    /// Milliseconds actually spanned by the samples behind the deltas
    /// (zero when fewer than two samples fell inside the window).
    pub span_ms: u64,
    /// Jobs completed inside the window.
    pub jobs: u64,
    /// Cache hits inside the window.
    pub hits: u64,
    /// Cache misses inside the window.
    pub misses: u64,
    /// Dispatch retries inside the window.
    pub retries: u64,
    /// Errors inside the window.
    pub errors: u64,
    /// Queue depth at the newest sample (summed across a cluster).
    pub queue_depth: u64,
    /// Busy workers at the newest sample (summed across a cluster).
    pub busy: u64,
    /// Latency observations inside the window.
    pub lat_count: u64,
    /// Sum of latencies inside the window (µs).
    pub lat_sum: u64,
    /// Per-bucket latency counts inside the window.
    pub lat_buckets: Vec<u64>,
}

impl HistoryWindow {
    /// An empty window of nominal length `window_secs`.
    pub fn empty(window_secs: u64) -> Self {
        Self {
            window_secs,
            span_ms: 0,
            jobs: 0,
            hits: 0,
            misses: 0,
            retries: 0,
            errors: 0,
            queue_depth: 0,
            busy: 0,
            lat_count: 0,
            lat_sum: 0,
            lat_buckets: vec![0; BUCKETS],
        }
    }

    /// The delta between two cumulative samples. Counters use saturating
    /// subtraction so a restarted process (counters reset to zero) yields
    /// an empty delta instead of garbage.
    pub fn between(window_secs: u64, oldest: &Sample, newest: &Sample) -> Self {
        Self {
            window_secs,
            span_ms: newest.at_ms.saturating_sub(oldest.at_ms),
            jobs: newest.jobs.saturating_sub(oldest.jobs),
            hits: newest.hits.saturating_sub(oldest.hits),
            misses: newest.misses.saturating_sub(oldest.misses),
            retries: newest.retries.saturating_sub(oldest.retries),
            errors: newest.errors.saturating_sub(oldest.errors),
            queue_depth: newest.queue_depth,
            busy: newest.busy,
            lat_count: newest.lat_count.saturating_sub(oldest.lat_count),
            lat_sum: newest.lat_sum.saturating_sub(oldest.lat_sum),
            lat_buckets: (0..BUCKETS)
                .map(|b| newest.lat_buckets[b].saturating_sub(oldest.lat_buckets[b]))
                .collect(),
        }
    }

    /// Adds `other` into `self`: field-wise addition, span takes the max.
    /// Associative and commutative, so cluster aggregation order does not
    /// matter.
    pub fn merge(&mut self, other: &HistoryWindow) {
        debug_assert_eq!(self.window_secs, other.window_secs);
        self.span_ms = self.span_ms.max(other.span_ms);
        self.jobs += other.jobs;
        self.hits += other.hits;
        self.misses += other.misses;
        self.retries += other.retries;
        self.errors += other.errors;
        self.queue_depth += other.queue_depth;
        self.busy += other.busy;
        self.lat_count += other.lat_count;
        self.lat_sum += other.lat_sum;
        if self.lat_buckets.len() < other.lat_buckets.len() {
            self.lat_buckets.resize(other.lat_buckets.len(), 0);
        }
        for (b, n) in other.lat_buckets.iter().enumerate() {
            self.lat_buckets[b] += n;
        }
    }

    /// Jobs per second over the spanned interval (0 with no span).
    pub fn jobs_per_sec(&self) -> f64 {
        rate_per_sec(self.jobs, self.span_ms)
    }

    /// Cache hit-rate in `[0, 1]` (0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.hits + self.misses)
    }

    /// Dispatch retries per routed job (0 with no jobs).
    pub fn retry_rate(&self) -> f64 {
        ratio(self.retries, self.jobs)
    }

    /// Errors per job (0 with no jobs).
    pub fn error_rate(&self) -> f64 {
        ratio(self.errors, self.jobs + self.errors)
    }

    /// The latency value at quantile `q` within the window, in µs —
    /// a cumulative walk over the delta buckets, same semantics as
    /// [`crate::metrics::Histogram::quantile`]. Returns 0 for an empty
    /// window.
    pub fn latency_quantile(&self, q: f64) -> u64 {
        if self.lat_count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.lat_count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, n) in self.lat_buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Window p50 latency in µs.
    pub fn p50_us(&self) -> u64 {
        self.latency_quantile(0.50)
    }

    /// Window p99 latency in µs.
    pub fn p99_us(&self) -> u64 {
        self.latency_quantile(0.99)
    }
}

fn rate_per_sec(n: u64, span_ms: u64) -> f64 {
    if span_ms == 0 {
        0.0
    } else {
        n as f64 * 1000.0 / span_ms as f64
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// The ring itself: a mutex over a `VecDeque` of samples. The lock is
/// touched once per sampler tick and once per `MetricsHistory` request —
/// both far off the optimization hot path ("lock-light" in the sense
/// that matters: never on a per-job or per-node edge).
pub struct History {
    samples: Mutex<VecDeque<Sample>>,
    capacity: AtomicUsize,
}

impl Default for History {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl History {
    /// An empty ring holding at most `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Mutex::new(VecDeque::new()),
            capacity: AtomicUsize::new(capacity.max(2)),
        }
    }

    /// Re-sizes the ring (the sampler thread applies the configured
    /// capacity at startup). Shrinking drops the oldest samples.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(2);
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut samples = self.samples.lock().expect("history lock poisoned");
        while samples.len() > capacity {
            samples.pop_front();
        }
    }

    /// Appends a snapshot, dropping the oldest once full. Out-of-order
    /// samples (clock went backwards) are dropped rather than corrupting
    /// the window scan.
    pub fn push(&self, sample: Sample) {
        let capacity = self.capacity.load(Ordering::Relaxed);
        let mut samples = self.samples.lock().expect("history lock poisoned");
        if let Some(last) = samples.back() {
            if sample.at_ms < last.at_ms {
                return;
            }
        }
        if samples.len() == capacity {
            samples.pop_front();
        }
        samples.push_back(sample);
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.lock().expect("history lock poisoned").len()
    }

    /// True when no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The newest retained sample, if any.
    pub fn newest(&self) -> Option<Sample> {
        self.samples
            .lock()
            .expect("history lock poisoned")
            .back()
            .cloned()
    }

    /// The window deltas ending at the newest sample, one per entry of
    /// `windows_secs`, evaluated at synthetic time `now_ms`. A window
    /// needs two samples inside it to carry a delta; otherwise it comes
    /// back empty (all zeros, span 0).
    pub fn windows(&self, now_ms: u64, windows_secs: &[u64]) -> Vec<HistoryWindow> {
        let samples = self.samples.lock().expect("history lock poisoned");
        windows_secs
            .iter()
            .map(|&w| {
                let horizon = now_ms.saturating_sub(w.saturating_mul(1000));
                let newest = match samples.back() {
                    Some(s) if s.at_ms >= horizon => s,
                    _ => return HistoryWindow::empty(w),
                };
                let oldest = samples.iter().find(|s| s.at_ms >= horizon);
                match oldest {
                    Some(o) if o.at_ms < newest.at_ms => HistoryWindow::between(w, o, newest),
                    _ => HistoryWindow::empty(w),
                }
            })
            .collect()
    }

    /// [`History::windows`] over the standard 10s/1m/5m windows at the
    /// wall clock.
    pub fn standard_windows(&self) -> Vec<HistoryWindow> {
        self.windows(crate::epoch_us() / 1000, &WINDOWS_SECS)
    }
}

/// The process-global history ring, mirroring [`crate::registry`]: the
/// sampler thread feeds it, the `MetricsHistory` endpoint reads it.
pub fn history() -> &'static History {
    static HISTORY: OnceLock<History> = OnceLock::new();
    HISTORY.get_or_init(History::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_ms: u64, jobs: u64, hits: u64, misses: u64, lat: &[u64]) -> Sample {
        let h = Histogram::new();
        for &v in lat {
            h.record(v);
        }
        Sample {
            at_ms,
            jobs,
            hits,
            misses,
            retries: 0,
            errors: 0,
            queue_depth: 1,
            busy: 2,
            lat_count: h.count(),
            lat_sum: h.sum(),
            lat_buckets: h.bucket_counts(),
        }
    }

    #[test]
    fn ring_wraps_dropping_the_oldest() {
        let h = History::with_capacity(4);
        for i in 0..10u64 {
            h.push(sample(i * 1000, i, 0, 0, &[]));
        }
        assert_eq!(h.len(), 4);
        // Only t=6000..9000 retained: a 100 s window spans exactly those.
        let w = &h.windows(9_000, &[100])[0];
        assert_eq!(w.jobs, 9 - 6);
        assert_eq!(w.span_ms, 3_000);
    }

    #[test]
    fn out_of_order_samples_are_dropped() {
        let h = History::with_capacity(8);
        h.push(sample(5_000, 5, 0, 0, &[]));
        h.push(sample(4_000, 9, 0, 0, &[]));
        assert_eq!(h.len(), 1);
        assert_eq!(h.newest().unwrap().at_ms, 5_000);
    }

    #[test]
    fn set_capacity_shrinks_from_the_front() {
        let h = History::with_capacity(8);
        for i in 0..8u64 {
            h.push(sample(i * 1000, i, 0, 0, &[]));
        }
        h.set_capacity(3);
        assert_eq!(h.len(), 3);
        assert_eq!(h.newest().unwrap().at_ms, 7_000);
    }

    #[test]
    fn window_math_against_a_synthetic_clock() {
        let h = History::with_capacity(64);
        // One sample per second; 2 jobs, 1 hit, 1 miss per second.
        for i in 0..31u64 {
            h.push(sample(i * 1000, 2 * i, i, i, &[]));
        }
        let now = 30_000;
        let ws = h.windows(now, &[10, 60]);
        // 10 s window: samples at t=20..30 → 10 s span, 20 jobs.
        assert_eq!(ws[0].span_ms, 10_000);
        assert_eq!(ws[0].jobs, 20);
        assert!((ws[0].jobs_per_sec() - 2.0).abs() < 1e-9);
        assert!((ws[0].hit_rate() - 0.5).abs() < 1e-9);
        // 60 s window: only 30 s of history exists; rate still exact
        // because it divides by the actual span.
        assert_eq!(ws[1].span_ms, 30_000);
        assert_eq!(ws[1].jobs, 60);
        assert!((ws[1].jobs_per_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample_and_stale_windows_are_empty() {
        let h = History::with_capacity(8);
        assert!(h.windows(1_000, &[10])[0].jobs == 0);
        h.push(sample(500, 7, 0, 0, &[]));
        // One sample in window: no delta.
        let w = &h.windows(1_000, &[10])[0];
        assert_eq!((w.jobs, w.span_ms), (0, 0));
        // Sampler stalled: newest sample fell out of the window.
        h.push(sample(900, 9, 0, 0, &[]));
        let w = &h.windows(60_000, &[10])[0];
        assert_eq!((w.jobs, w.span_ms), (0, 0));
    }

    #[test]
    fn counter_reset_yields_empty_delta_not_garbage() {
        let h = History::with_capacity(8);
        h.push(sample(0, 100, 0, 0, &[]));
        h.push(sample(1_000, 3, 0, 0, &[])); // process restarted
        let w = &h.windows(1_000, &[10])[0];
        assert_eq!(w.jobs, 0);
    }

    #[test]
    fn window_latency_quantiles_read_the_delta_not_the_total() {
        let h = History::with_capacity(8);
        // Old sample: 100 slow observations (~1000 µs).
        let slow: Vec<u64> = vec![1000; 100];
        h.push(sample(0, 0, 0, 0, &slow));
        // New sample: those plus 100 fast (~10 µs) observations.
        let mut all = slow.clone();
        all.extend(vec![10u64; 100]);
        h.push(sample(10_000, 0, 0, 0, &all));
        let w = &h.windows(10_000, &[10])[0];
        assert_eq!(w.lat_count, 100);
        // The window only saw the fast observations.
        assert_eq!(w.p50_us(), 15);
        assert_eq!(w.p99_us(), 15);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |jobs, hits, lat: &[u64]| {
            let old = sample(0, 0, 0, 0, &[]);
            let new = sample(10_000, jobs, hits, 1, lat);
            HistoryWindow::between(10, &old, &new)
        };
        let (a, b, c) = (mk(4, 1, &[5, 9]), mk(9, 2, &[1000]), mk(0, 0, &[]));
        let digest = |w: &HistoryWindow| {
            (
                w.jobs,
                w.hits,
                w.misses,
                w.lat_count,
                w.lat_sum,
                w.p50_us(),
                w.p99_us(),
                w.lat_buckets.clone(),
            )
        };
        // (a + b) + c == a + (b + c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(digest(&left), digest(&right));
        // a + b == b + a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(digest(&ab), digest(&ba));
    }

    #[test]
    fn rates_guard_against_empty_denominators() {
        let w = HistoryWindow::empty(10);
        assert_eq!(w.jobs_per_sec(), 0.0);
        assert_eq!(w.hit_rate(), 0.0);
        assert_eq!(w.retry_rate(), 0.0);
        assert_eq!(w.error_rate(), 0.0);
        assert_eq!(w.p99_us(), 0);
    }

    #[test]
    fn source_samples_registry_handles() {
        let r = crate::Registry::new();
        let source = HistorySource {
            jobs: r.counter("jobs"),
            hits: r.counter("hits"),
            misses: r.counter("misses"),
            retries: r.counter("retries"),
            errors: r.counter("errors"),
            queue_depth: r.gauge("queue"),
            busy: r.gauge("busy"),
            latency: r.histogram("lat_us"),
        };
        r.counter("jobs").add(3);
        r.gauge("queue").set(5);
        r.histogram("lat_us").record(100);
        let s = source.sample(42);
        assert_eq!(s.at_ms, 42);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.queue_depth, 5);
        assert_eq!(s.lat_count, 1);
    }
}
