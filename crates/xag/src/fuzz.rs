//! Seeded random-XAG generation for differential testing.
//!
//! The fuzz layer follows the sampler-testing idea: rather than trusting
//! an optimizer because its unit tests pass, drive it with a stream of
//! structurally diverse random networks and check every output against an
//! equivalence oracle ([`crate::equiv`]). The generator is seeded by
//! [`mc_rng`] — never wall-clock — so any failure replays from the seed in
//! the log.
//!
//! [`FuzzConfig`] exposes the knobs that matter for rewriting coverage:
//!
//! * `gates` / `inputs` — overall size and width of the network;
//! * `xor_ratio` — XOR-vs-AND mix (crypto circuits are XOR-heavy, control
//!   logic AND-heavy; both regimes stress different database entries);
//! * `depth_bias` — probability that an operand is drawn from the most
//!   recent window of signals instead of uniformly, trading wide/shallow
//!   networks for narrow/deep ones;
//! * `complement_p` — probability of complementing an operand edge, which
//!   exercises the normalization rules.
//!
//! # Examples
//!
//! ```
//! use xag_network::fuzz::{random_xag, FuzzConfig};
//!
//! let cfg = FuzzConfig::default();
//! let a = random_xag(&cfg, 42);
//! let b = random_xag(&cfg, 42);
//! assert_eq!(a.num_gates(), b.num_gates()); // same seed, same network
//! assert_eq!(a.num_inputs(), cfg.inputs);
//! assert_eq!(a.num_outputs(), cfg.outputs);
//! ```

use mc_rng::Rng;

use crate::network::Xag;
use crate::signal::Signal;

/// Shape knobs for [`random_xag`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of gate-construction attempts. The final gate count is
    /// usually lower: attempts that constant-fold or hash into an existing
    /// gate do not allocate.
    pub gates: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Probability that a gate is a XOR (otherwise an AND).
    pub xor_ratio: f64,
    /// Probability that an operand is drawn from the most recent
    /// `recency_window` signals instead of the whole pool — higher values
    /// produce deeper, narrower networks.
    pub depth_bias: f64,
    /// Size of the recency window `depth_bias` draws from.
    pub recency_window: usize,
    /// Probability of complementing each operand edge.
    pub complement_p: f64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            inputs: 6,
            gates: 40,
            outputs: 4,
            xor_ratio: 0.5,
            depth_bias: 0.5,
            recency_window: 8,
            complement_p: 0.25,
        }
    }
}

impl FuzzConfig {
    /// An XOR-heavy configuration resembling linear-layer-dominated crypto
    /// logic.
    pub fn xor_heavy() -> Self {
        Self {
            xor_ratio: 0.8,
            gates: 60,
            ..Self::default()
        }
    }

    /// An AND-heavy, deep configuration resembling control logic.
    pub fn and_heavy() -> Self {
        Self {
            xor_ratio: 0.25,
            depth_bias: 0.75,
            gates: 50,
            ..Self::default()
        }
    }
}

/// Generates a random XAG from a seed. Equal `(config, seed)` pairs
/// produce identical networks, on every platform, forever.
///
/// The network has exactly `config.inputs` primary inputs and
/// `config.outputs` primary outputs; outputs are drawn with the same
/// recency bias as operands, so deep cones are usually observable.
///
/// # Panics
///
/// Panics if `config.inputs == 0` or `config.outputs == 0`.
pub fn random_xag(config: &FuzzConfig, seed: u64) -> Xag {
    assert!(config.inputs > 0, "need at least one input");
    assert!(config.outputs > 0, "need at least one output");
    let mut rng = Rng::seed_from_u64(seed);
    let mut xag = Xag::new();
    let mut pool: Vec<Signal> = (0..config.inputs).map(|_| xag.input()).collect();

    let pick = |rng: &mut Rng, pool: &[Signal]| -> Signal {
        let window = config.recency_window.max(1).min(pool.len());
        let idx = if rng.gen_bool(config.depth_bias) {
            pool.len() - window + rng.gen_range(0..window)
        } else {
            rng.gen_range(0..pool.len())
        };
        pool[idx] ^ rng.gen_bool(config.complement_p)
    };

    for _ in 0..config.gates {
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let s = if rng.gen_bool(config.xor_ratio) {
            xag.xor(a, b)
        } else {
            xag.and(a, b)
        };
        pool.push(s);
    }
    for _ in 0..config.outputs {
        let s = pick(&mut rng, &pool);
        xag.output(s);
    }
    xag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_network() {
        let cfg = FuzzConfig::default();
        for seed in 0..20u64 {
            let a = random_xag(&cfg, seed);
            let b = random_xag(&cfg, seed);
            assert_eq!(a.num_gates(), b.num_gates());
            assert_eq!(a.num_ands(), b.num_ands());
            let words: Vec<u64> = (0..cfg.inputs as u64)
                .map(|i| i.wrapping_mul(0x9e37))
                .collect();
            assert_eq!(a.simulate(&words), b.simulate(&words), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FuzzConfig::default();
        let counts: Vec<usize> = (0..10).map(|s| random_xag(&cfg, s).num_gates()).collect();
        assert!(
            counts.iter().any(|&c| c != counts[0]),
            "ten seeds produced identical gate counts: {counts:?}"
        );
    }

    #[test]
    fn io_counts_are_exact() {
        for cfg in [
            FuzzConfig::default(),
            FuzzConfig::xor_heavy(),
            FuzzConfig::and_heavy(),
        ] {
            let x = random_xag(&cfg, 7);
            assert_eq!(x.num_inputs(), cfg.inputs);
            assert_eq!(x.num_outputs(), cfg.outputs);
        }
    }

    #[test]
    fn xor_ratio_shifts_the_gate_mix() {
        let xor_heavy: usize = (0..10)
            .map(|s| random_xag(&FuzzConfig::xor_heavy(), s).num_xors())
            .sum();
        let and_heavy: usize = (0..10)
            .map(|s| random_xag(&FuzzConfig::and_heavy(), s).num_xors())
            .sum();
        assert!(
            xor_heavy > and_heavy,
            "xor-heavy config produced fewer XORs ({xor_heavy}) than and-heavy ({and_heavy})"
        );
    }

    #[test]
    fn depth_bias_deepens_networks() {
        let deep_cfg = FuzzConfig {
            depth_bias: 0.95,
            recency_window: 2,
            xor_ratio: 0.0,
            complement_p: 0.0,
            ..FuzzConfig::default()
        };
        let wide_cfg = FuzzConfig {
            depth_bias: 0.0,
            ..deep_cfg
        };
        let deep: usize = (0..10).map(|s| random_xag(&deep_cfg, s).and_depth()).sum();
        let wide: usize = (0..10).map(|s| random_xag(&wide_cfg, s).and_depth()).sum();
        assert!(
            deep > wide,
            "depth bias did not deepen networks (deep {deep} vs wide {wide})"
        );
    }
}
