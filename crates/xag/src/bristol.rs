//! Bristol-fashion circuit I/O.
//!
//! The ["Bristol fashion"](https://homes.esat.kuleuven.be/~nsmart/MPC/)
//! format is the de-facto interchange format of the MPC community and the
//! format in which the paper's Table 2 benchmarks are published. A file
//! looks like:
//!
//! ```text
//! <num_gates> <num_wires>
//! <niv> <wires of input value 0> …
//! <nov> <wires of output value 0> …
//!
//! 2 1 <in0> <in1> <out> AND
//! 2 1 <in0> <in1> <out> XOR
//! 1 1 <in>  <out> INV
//! ```
//!
//! The writer materializes complemented edges as `INV` gates and pads the
//! output wires with `EQW` (wire-copy) gates so that outputs occupy the last
//! wires, as the format requires.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

use crate::network::{NodeKind, Xag};
use crate::signal::Signal;

/// Error produced when parsing a Bristol-fashion file.
#[derive(Debug)]
pub enum ParseBristolError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem, with a human-readable description.
    Malformed(String),
}

impl core::fmt::Display for ParseBristolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseBristolError::Io(e) => write!(f, "i/o error: {e}"),
            ParseBristolError::Malformed(m) => write!(f, "malformed bristol circuit: {m}"),
        }
    }
}

impl std::error::Error for ParseBristolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseBristolError::Io(e) => Some(e),
            ParseBristolError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for ParseBristolError {
    fn from(e: std::io::Error) -> Self {
        ParseBristolError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ParseBristolError {
    ParseBristolError::Malformed(msg.into())
}

/// Reads a Bristol-fashion circuit into an [`Xag`].
///
/// Supported gate types: `AND`, `XOR`, `INV`/`NOT`, `EQW` (wire copy) and
/// `EQ` (constant assignment). `MAND` (multi-AND) is rejected.
///
/// A `&mut` reference can be passed for `reader` because `Read` is
/// implemented for mutable references.
///
/// # Errors
///
/// Returns [`ParseBristolError`] on I/O failure, unknown gate types, wire
/// indices out of range, or use of undefined wires.
pub fn read_bristol<R: Read>(reader: R) -> Result<Xag, ParseBristolError> {
    let mut lines = BufReader::new(reader).lines();
    let mut next_line = || -> Result<Option<String>, ParseBristolError> {
        for line in lines.by_ref() {
            let line = line?;
            if !line.trim().is_empty() {
                return Ok(Some(line));
            }
        }
        Ok(None)
    };

    let header = next_line()?.ok_or_else(|| malformed("missing header"))?;
    let mut it = header.split_whitespace();
    let num_gates: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| malformed("bad gate count"))?;
    let num_wires: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| malformed("bad wire count"))?;

    let parse_values = |line: &str| -> Result<Vec<usize>, ParseBristolError> {
        let nums: Option<Vec<usize>> = line.split_whitespace().map(|t| t.parse().ok()).collect();
        let nums = nums.ok_or_else(|| malformed("bad value list"))?;
        if nums.is_empty() || nums.len() != nums[0] + 1 {
            return Err(malformed("value list length mismatch"));
        }
        Ok(nums[1..].to_vec())
    };

    let inputs_line = next_line()?.ok_or_else(|| malformed("missing input declaration"))?;
    let input_sizes = parse_values(&inputs_line)?;
    let outputs_line = next_line()?.ok_or_else(|| malformed("missing output declaration"))?;
    let output_sizes = parse_values(&outputs_line)?;

    let num_inputs: usize = input_sizes.iter().sum();
    let num_outputs: usize = output_sizes.iter().sum();
    if num_inputs + num_outputs > num_wires {
        return Err(malformed("wire count smaller than i/o wires"));
    }

    let mut xag = Xag::new();
    let mut wires: HashMap<usize, Signal> = HashMap::new();
    for w in 0..num_inputs {
        let s = xag.input();
        wires.insert(w, s);
    }

    let mut gates_seen = 0usize;
    while let Some(line) = next_line()? {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 3 {
            return Err(malformed(format!("bad gate line: {line}")));
        }
        let kind = *tokens.last().expect("nonempty");
        let nin: usize = tokens[0]
            .parse()
            .map_err(|_| malformed("bad gate input count"))?;
        let nout: usize = tokens[1]
            .parse()
            .map_err(|_| malformed("bad gate output count"))?;
        if tokens.len() != 3 + nin + nout {
            return Err(malformed(format!("gate arity mismatch: {line}")));
        }
        let idx = |t: &str| -> Result<usize, ParseBristolError> {
            let w: usize = t.parse().map_err(|_| malformed("bad wire index"))?;
            if w >= num_wires {
                return Err(malformed(format!("wire {w} out of range")));
            }
            Ok(w)
        };
        let in_wire =
            |wires: &HashMap<usize, Signal>, t: &str| -> Result<Signal, ParseBristolError> {
                let w = idx(t)?;
                wires
                    .get(&w)
                    .copied()
                    .ok_or_else(|| malformed(format!("use of undefined wire {w}")))
            };
        let out_wire = idx(tokens[2 + nin])?;
        let signal = match (kind, nin, nout) {
            ("AND", 2, 1) => {
                let a = in_wire(&wires, tokens[2])?;
                let b = in_wire(&wires, tokens[3])?;
                xag.and(a, b)
            }
            ("XOR", 2, 1) => {
                let a = in_wire(&wires, tokens[2])?;
                let b = in_wire(&wires, tokens[3])?;
                xag.xor(a, b)
            }
            ("INV" | "NOT", 1, 1) => !in_wire(&wires, tokens[2])?,
            ("EQW", 1, 1) => in_wire(&wires, tokens[2])?,
            ("EQ", 1, 1) => {
                // Input token is a constant 0/1, not a wire.
                match tokens[2] {
                    "0" => Signal::CONST0,
                    "1" => Signal::CONST1,
                    other => return Err(malformed(format!("bad EQ constant {other}"))),
                }
            }
            _ => return Err(malformed(format!("unsupported gate: {kind}/{nin}/{nout}"))),
        };
        wires.insert(out_wire, signal);
        gates_seen += 1;
    }
    if gates_seen != num_gates {
        return Err(malformed(format!(
            "expected {num_gates} gates, found {gates_seen}"
        )));
    }
    for w in (num_wires - num_outputs)..num_wires {
        let s = wires
            .get(&w)
            .copied()
            .ok_or_else(|| malformed(format!("output wire {w} undriven")))?;
        xag.output(s);
    }
    Ok(xag)
}

/// Writes a network as a Bristol-fashion circuit.
///
/// All primary inputs are declared as a single input value and all outputs
/// as a single output value. A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_bristol<W: Write>(xag: &Xag, mut writer: W) -> std::io::Result<()> {
    struct Emitter {
        body: String,
        num_gates: usize,
        next_wire: usize,
        wire_of: HashMap<u32, usize>,
        const_wire: [Option<usize>; 2],
        inv_cache: HashMap<u32, usize>,
    }

    impl Emitter {
        fn emit(&mut self, line: String) {
            self.body.push_str(&line);
            self.body.push('\n');
            self.num_gates += 1;
        }

        fn fresh_wire(&mut self) -> usize {
            let w = self.next_wire;
            self.next_wire += 1;
            w
        }

        fn const_wire(&mut self, value: bool) -> usize {
            if let Some(w) = self.const_wire[value as usize] {
                return w;
            }
            let w = self.fresh_wire();
            self.emit(format!("1 1 {} {} EQ", value as u8, w));
            self.const_wire[value as usize] = Some(w);
            w
        }

        fn signal_wire(&mut self, s: Signal) -> usize {
            if s.is_const() {
                return self.const_wire(s.is_complement());
            }
            let base = *self
                .wire_of
                .get(&s.node())
                .expect("wire assigned in topological order");
            if !s.is_complement() {
                return base;
            }
            if let Some(&w) = self.inv_cache.get(&s.index()) {
                return w;
            }
            let w = self.fresh_wire();
            self.emit(format!("1 1 {base} {w} INV"));
            self.inv_cache.insert(s.index(), w);
            w
        }
    }

    let order = xag.live_gates();
    let n_in = xag.num_inputs();
    let n_out = xag.num_outputs();

    let mut em = Emitter {
        body: String::new(),
        num_gates: 0,
        next_wire: n_in,
        wire_of: HashMap::new(),
        const_wire: [None, None],
        inv_cache: HashMap::new(),
    };
    for i in 0..n_in {
        em.wire_of.insert(xag.input_signal(i).node(), i);
    }

    for n in &order {
        let (f0, f1) = xag.fanins(*n);
        let a = em.signal_wire(f0);
        let b = em.signal_wire(f1);
        let w = em.fresh_wire();
        let kind = match xag.kind(*n) {
            NodeKind::And => "AND",
            NodeKind::Xor => "XOR",
            _ => unreachable!("live_gates yields gates only"),
        };
        em.emit(format!("2 1 {a} {b} {w} {kind}"));
        em.wire_of.insert(*n, w);
    }

    // Copy outputs into the trailing wire block.
    let mut out_src: Vec<(usize, bool)> = Vec::with_capacity(n_out);
    for i in 0..n_out {
        let s = xag.output_signal(i);
        if s.is_const() {
            let w = em.const_wire(s.is_complement());
            out_src.push((w, false));
        } else {
            let base = *em.wire_of.get(&s.node()).expect("driven output");
            out_src.push((base, s.is_complement()));
        }
    }
    let first_out_wire = em.next_wire;
    for (i, (src, compl)) in out_src.iter().enumerate() {
        let w = first_out_wire + i;
        let gate = if *compl { "INV" } else { "EQW" };
        em.emit(format!("1 1 {src} {w} {gate}"));
    }
    let num_wires = first_out_wire + n_out;

    writeln!(writer, "{} {num_wires}", em.num_gates)?;
    writeln!(writer, "1 {n_in}")?;
    writeln!(writer, "1 {n_out}")?;
    writeln!(writer)?;
    writer.write_all(em.body.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::equiv_exhaustive;

    fn sample_network() -> Xag {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        let m = x.maj(a, b, c);
        let g = x.and(a, !b);
        let h = x.xor(g, !c);
        x.output(m);
        x.output(!h);
        x.output(Signal::CONST1);
        x
    }

    #[test]
    fn roundtrip_preserves_function() {
        let x = sample_network();
        let mut buf = Vec::new();
        write_bristol(&x, &mut buf).expect("write");
        let y = read_bristol(buf.as_slice()).expect("read");
        assert_eq!(y.num_inputs(), 3);
        assert_eq!(y.num_outputs(), 3);
        assert!(equiv_exhaustive(&x, &y));
    }

    #[test]
    fn read_simple_handwritten() {
        let text = "3 7\n1 2\n1 1\n\n2 1 0 1 2 AND\n2 1 0 1 3 XOR\n1 1 2 4 INV\n";
        // Output wire is wire 6... adjust: declare 7 wires, output = wire 6.
        // Rewrite with the AND feeding the last wire through EQW.
        let text2 = "4 7\n1 2\n1 1\n\n2 1 0 1 2 AND\n2 1 0 1 3 XOR\n1 1 2 4 INV\n1 1 3 6 EQW\n";
        let _ = text;
        let x = read_bristol(text2.as_bytes()).expect("parse");
        assert_eq!(x.num_inputs(), 2);
        assert_eq!(x.num_outputs(), 1);
        for m in 0..4u64 {
            let v = x.evaluate(m);
            assert_eq!(v[0], ((m & 1) ^ ((m >> 1) & 1)) == 1);
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_bristol("".as_bytes()).is_err());
        assert!(read_bristol("1 2\n1 1\n1 1\n\n3 1 0 0 0 1 MAND\n".as_bytes()).is_err());
        let undefined_wire = "1 4\n1 2\n1 1\n\n2 1 0 9 3 AND\n";
        assert!(read_bristol(undefined_wire.as_bytes()).is_err());
        // Arity mismatch: claims 2 inputs but lists one.
        assert!(read_bristol("1 4\n1 2\n1 1\n\n2 1 0 3 AND\n".as_bytes()).is_err());
        // Gate-count mismatch against the header.
        assert!(read_bristol("2 4\n1 2\n1 1\n\n2 1 0 1 3 AND\n".as_bytes()).is_err());
        // Wire index beyond the declared wire count.
        assert!(read_bristol("1 3\n1 2\n1 1\n\n2 1 0 1 7 AND\n".as_bytes()).is_err());
        // Bad EQ constant.
        assert!(read_bristol("1 3\n1 2\n1 1\n\n1 1 5 2 EQ\n".as_bytes()).is_err());
        // Undriven output wire.
        assert!(read_bristol("1 9\n1 2\n1 1\n\n2 1 0 1 3 AND\n".as_bytes()).is_err());
        // Garbage value list.
        assert!(read_bristol("1 4\nfoo\n1 1\n\n2 1 0 1 3 AND\n".as_bytes()).is_err());
    }

    #[test]
    fn multi_value_declarations_are_summed() {
        // Two input values of 1 wire each; output declared as one value.
        let text = "1 3\n2 1 1\n1 1\n\n2 1 0 1 2 AND\n";
        let x = read_bristol(text.as_bytes()).expect("parse");
        assert_eq!(x.num_inputs(), 2);
        assert_eq!(x.num_outputs(), 1);
        assert!(x.evaluate(0b11)[0]);
        assert!(!x.evaluate(0b01)[0]);
    }

    #[test]
    fn eq_constant_outputs() {
        // An output driven by a constant through EQ.
        let text = "1 3\n1 2\n1 1\n\n1 1 1 2 EQ\n";
        let x = read_bristol(text.as_bytes()).expect("parse");
        assert!(x.evaluate(0)[0]);
        assert!(x.evaluate(3)[0]);
    }
}
