use xag_tt::{AffineOp, Tt};

use crate::network::Xag;
use crate::signal::Signal;

/// Reference to a value inside an [`XagFragment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FragRef {
    /// A constant value.
    Const(bool),
    /// Fragment input `i`, complemented if the flag is set.
    Input(u8, bool),
    /// Output of fragment gate `g`, complemented if the flag is set.
    Gate(u16, bool),
}

impl FragRef {
    /// Complements the reference.
    #[must_use]
    pub fn complement(self) -> FragRef {
        match self {
            FragRef::Const(c) => FragRef::Const(!c),
            FragRef::Input(i, c) => FragRef::Input(i, !c),
            FragRef::Gate(g, c) => FragRef::Gate(g, !c),
        }
    }

    /// Conditionally complements the reference.
    #[must_use]
    pub fn complement_if(self, cond: bool) -> FragRef {
        if cond {
            self.complement()
        } else {
            self
        }
    }
}

/// One gate of a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentGate {
    /// True for AND, false for XOR.
    pub is_and: bool,
    /// First operand.
    pub a: FragRef,
    /// Second operand.
    pub b: FragRef,
}

/// A small single-output sub-circuit template over `k` abstract inputs.
///
/// Fragments are the currency of the DAC'19 flow: the database maps each
/// affine-class representative to a fragment, and cut rewriting instantiates
/// fragments onto the cut leaves of a live network. A fragment is
/// *structural*: instantiating it through [`XagFragment::instantiate`] runs
/// the target network's constant folding and structural hashing, so shared
/// logic is reused automatically.
///
/// # Examples
///
/// ```
/// use xag_network::{Xag, XagFragment};
/// use xag_tt::Tt;
///
/// // Majority with a single AND gate: (a⊕c)(b⊕c) ⊕ c.
/// let mut f = XagFragment::new(3);
/// let ac = f.xor(XagFragment::input(0), XagFragment::input(2));
/// let bc = f.xor(XagFragment::input(1), XagFragment::input(2));
/// let p = f.and(ac, bc);
/// let out = f.xor(p, XagFragment::input(2));
/// f.set_output(out);
/// assert_eq!(f.num_ands(), 1);
/// assert_eq!(f.eval_tt().bits(), 0xe8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XagFragment {
    inputs: u8,
    gates: Vec<FragmentGate>,
    output: FragRef,
}

impl XagFragment {
    /// Creates an empty fragment over `k` inputs with constant-zero output.
    ///
    /// # Panics
    ///
    /// Panics if `k > 64`.
    pub fn new(k: usize) -> Self {
        assert!(k <= 64, "fragments support at most 64 inputs");
        Self {
            inputs: k as u8,
            gates: Vec::new(),
            output: FragRef::Const(false),
        }
    }

    /// A fragment computing a constant.
    pub fn constant(k: usize, value: bool) -> Self {
        let mut f = Self::new(k);
        f.set_output(FragRef::Const(value));
        f
    }

    /// Reference to fragment input `i`.
    pub fn input(i: usize) -> FragRef {
        FragRef::Input(i as u8, false)
    }

    /// Number of fragment inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs as usize
    }

    /// Number of AND gates in the fragment.
    pub fn num_ands(&self) -> usize {
        self.gates.iter().filter(|g| g.is_and).count()
    }

    /// Number of XOR gates in the fragment.
    pub fn num_xors(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_and).count()
    }

    /// The gates in topological order.
    pub fn gates(&self) -> &[FragmentGate] {
        &self.gates
    }

    /// The output reference.
    pub fn output(&self) -> FragRef {
        self.output
    }

    /// Sets the fragment output.
    pub fn set_output(&mut self, r: FragRef) {
        self.output = r;
    }

    fn push(&mut self, is_and: bool, a: FragRef, b: FragRef) -> FragRef {
        self.gates.push(FragmentGate { is_and, a, b });
        FragRef::Gate((self.gates.len() - 1) as u16, false)
    }

    /// Appends an AND gate and returns its output reference.
    pub fn and(&mut self, a: FragRef, b: FragRef) -> FragRef {
        self.push(true, a, b)
    }

    /// Appends a XOR gate and returns its output reference.
    pub fn xor(&mut self, a: FragRef, b: FragRef) -> FragRef {
        self.push(false, a, b)
    }

    /// XOR of many references (returns a constant for an empty list).
    pub fn xor_many(&mut self, refs: &[FragRef]) -> FragRef {
        let mut acc = FragRef::Const(false);
        for &r in refs {
            acc = match acc {
                FragRef::Const(false) => r,
                FragRef::Const(true) => r.complement(),
                _ => {
                    if let FragRef::Const(c) = r {
                        acc.complement_if(c)
                    } else {
                        self.xor(acc, r)
                    }
                }
            };
        }
        acc
    }

    /// Instantiates the fragment in `xag`, connecting fragment input `i` to
    /// `leaves[i]`. Returns the output signal.
    ///
    /// # Panics
    ///
    /// Panics if `leaves.len() != self.num_inputs()`.
    pub fn instantiate(&self, xag: &mut Xag, leaves: &[Signal]) -> Signal {
        assert_eq!(leaves.len(), self.num_inputs());
        let mut outs: Vec<Signal> = Vec::with_capacity(self.gates.len());
        let resolve = |r: FragRef, outs: &[Signal]| -> Signal {
            match r {
                FragRef::Const(c) => Signal::CONST0 ^ c,
                FragRef::Input(i, c) => leaves[i as usize] ^ c,
                FragRef::Gate(g, c) => outs[g as usize] ^ c,
            }
        };
        for gate in &self.gates {
            let a = resolve(gate.a, &outs);
            let b = resolve(gate.b, &outs);
            let s = if gate.is_and {
                xag.and(a, b)
            } else {
                xag.xor(a, b)
            };
            outs.push(s);
        }
        resolve(self.output, &outs)
    }

    /// Estimates how many *new* AND gates instantiating this fragment on
    /// `leaves` would create. See [`XagFragment::count_new_gates`].
    pub fn count_new_ands(&self, xag: &Xag, leaves: &[Signal]) -> usize {
        self.count_new_gates(xag, leaves).0
    }

    /// Estimates how many *new* `(AND, total)` gates instantiating this
    /// fragment on `leaves` would create, exploiting the network's
    /// structural hashing.
    ///
    /// Gates that hash to nodes with a zero reference count are counted as
    /// new: after a rewrite they would only survive because the fragment
    /// uses them, cancelling out the gain attributed to removing them.
    pub fn count_new_gates(&self, xag: &Xag, leaves: &[Signal]) -> (usize, usize) {
        assert_eq!(leaves.len(), self.num_inputs());
        // Virtual signal per gate: Some(existing signal) or None (new node).
        let mut outs: Vec<Option<Signal>> = Vec::with_capacity(self.gates.len());
        let mut added = 0usize;
        let mut added_total = 0usize;
        let resolve = |r: FragRef, outs: &[Option<Signal>]| -> Option<Signal> {
            match r {
                FragRef::Const(c) => Some(Signal::CONST0 ^ c),
                FragRef::Input(i, c) => Some(leaves[i as usize] ^ c),
                FragRef::Gate(g, c) => outs[g as usize].map(|s| s ^ c),
            }
        };
        for gate in &self.gates {
            let a = resolve(gate.a, &outs);
            let b = resolve(gate.b, &outs);
            let hit = match (a, b) {
                (Some(a), Some(b)) => {
                    if gate.is_and {
                        xag.lookup_and(a, b)
                    } else {
                        xag.lookup_xor(a, b)
                    }
                }
                _ => None,
            };
            match hit {
                Some(s) if s.is_const() || !xag.is_gate(s.node()) || xag.nref(s.node()) > 0 => {
                    outs.push(Some(s));
                }
                Some(s) => {
                    // Hash hit on a node scheduled for deletion: reusing it
                    // keeps it alive, so it still costs its own gate.
                    if gate.is_and {
                        added += 1;
                    }
                    added_total += 1;
                    outs.push(Some(s));
                }
                None => {
                    if gate.is_and {
                        added += 1;
                    }
                    added_total += 1;
                    outs.push(None);
                }
            }
        }
        (added, added_total)
    }

    /// Evaluates the fragment into a truth table over its inputs.
    ///
    /// # Panics
    ///
    /// Panics if the fragment has more than six inputs.
    pub fn eval_tt(&self) -> Tt {
        let n = self.num_inputs();
        assert!(n <= 6, "eval_tt supports at most six inputs");
        let nv = n.max(1);
        let mut outs: Vec<Tt> = Vec::with_capacity(self.gates.len());
        let resolve = |r: FragRef, outs: &[Tt]| -> Tt {
            let t = match r {
                FragRef::Const(c) => Tt::constant(c, nv),
                FragRef::Input(i, _) => Tt::projection(i as usize, nv),
                FragRef::Gate(g, _) => outs[g as usize],
            };
            match r {
                FragRef::Const(_) => t,
                FragRef::Input(_, c) | FragRef::Gate(_, c) => {
                    if c {
                        !t
                    } else {
                        t
                    }
                }
            }
        };
        for gate in &self.gates {
            let a = resolve(gate.a, &outs);
            let b = resolve(gate.b, &outs);
            outs.push(if gate.is_and { a & b } else { a ^ b });
        }
        resolve(self.output, &outs)
    }

    /// Returns a copy with the output complemented.
    #[must_use]
    pub fn complemented(&self) -> XagFragment {
        let mut f = self.clone();
        f.output = f.output.complement();
        f
    }

    /// Applies an affine operation *to the circuit*: if this fragment
    /// computes `h`, the result computes `op(h)` using only wiring changes
    /// and XOR gates — never an AND gate. This is how the DAC'19 flow turns
    /// a representative's minimum circuit into a circuit for any class
    /// member (paper Fig. 2).
    ///
    /// ```
    /// use xag_network::XagFragment;
    /// use xag_tt::{AffineOp, Tt};
    ///
    /// // AND fragment → majority by replaying Example 2.3's operations.
    /// let mut and = XagFragment::new(3);
    /// let g = and.and(XagFragment::input(0), XagFragment::input(1));
    /// and.set_output(g);
    /// let maj = [
    ///     AffineOp::FlipInput(1),
    ///     AffineOp::Translate { dst: 1, src: 2 },
    ///     AffineOp::Translate { dst: 0, src: 1 },
    ///     AffineOp::XorOutput(0),
    /// ]
    /// .iter()
    /// .fold(and, |f, &op| f.apply_affine_op(op));
    /// assert_eq!(maj.eval_tt().bits(), 0xe8);
    /// assert_eq!(maj.num_ands(), 1);
    /// ```
    #[must_use]
    pub fn apply_affine_op(&self, op: AffineOp) -> XagFragment {
        match op {
            AffineOp::FlipOutput => self.complemented(),
            AffineOp::XorOutput(i) => {
                let mut f = self.clone();
                let out = f.xor(f.output, XagFragment::input(i));
                f.set_output(out);
                f
            }
            AffineOp::FlipInput(i) => {
                let flip = |r: FragRef| match r {
                    FragRef::Input(k, c) if k as usize == i => FragRef::Input(k, !c),
                    other => other,
                };
                XagFragment {
                    inputs: self.inputs,
                    gates: self
                        .gates
                        .iter()
                        .map(|g| FragmentGate {
                            is_and: g.is_and,
                            a: flip(g.a),
                            b: flip(g.b),
                        })
                        .collect(),
                    output: flip(self.output),
                }
            }
            AffineOp::Swap(i, j) => {
                let map: Vec<usize> = (0..self.num_inputs())
                    .map(|k| {
                        if k == i {
                            j
                        } else if k == j {
                            i
                        } else {
                            k
                        }
                    })
                    .collect();
                self.with_inputs(self.num_inputs(), &map)
            }
            AffineOp::Translate { dst, src } => {
                // Prepend t = x_dst ⊕ x_src and reroute reads of x_dst to t.
                let mut f = XagFragment::new(self.num_inputs());
                let t = f.xor(XagFragment::input(dst), XagFragment::input(src));
                let reroute = |r: FragRef| match r {
                    FragRef::Input(k, c) if k as usize == dst => t.complement_if(c),
                    FragRef::Gate(g, c) => FragRef::Gate(g + 1, c),
                    other => other,
                };
                for g in &self.gates {
                    f.gates.push(FragmentGate {
                        is_and: g.is_and,
                        a: reroute(g.a),
                        b: reroute(g.b),
                    });
                }
                f.set_output(reroute(self.output));
                f
            }
        }
    }

    /// Replays a classification's operation sequence on a representative's
    /// circuit: if this fragment computes the representative `r` and
    /// `ops` maps some function `f` to `r` (each affine operation is an
    /// involution), the result computes `f`.
    #[must_use]
    pub fn undo_affine_ops(&self, ops: &[AffineOp]) -> XagFragment {
        ops.iter()
            .rev()
            .fold(self.clone(), |f, &op| f.apply_affine_op(op))
    }

    /// Appends all gates of `other` (which must have the same input count)
    /// to this fragment, returning `other`'s output re-indexed into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the input counts differ.
    pub fn append_fragment(&mut self, other: &XagFragment) -> FragRef {
        assert_eq!(self.inputs, other.inputs, "fragment input counts differ");
        let offset = self.gates.len() as u16;
        let shift = |r: FragRef| match r {
            FragRef::Gate(g, c) => FragRef::Gate(g + offset, c),
            other => other,
        };
        for g in &other.gates {
            self.gates.push(FragmentGate {
                is_and: g.is_and,
                a: shift(g.a),
                b: shift(g.b),
            });
        }
        shift(other.output)
    }

    /// Re-expresses the fragment over `n` inputs, feeding old input `i` from
    /// new input `map[i]`. Used to lift a fragment synthesized on a
    /// function's support back to the full variable set.
    ///
    /// # Panics
    ///
    /// Panics if `map.len() != self.num_inputs()` or any entry is `≥ n`.
    #[must_use]
    pub fn with_inputs(&self, n: usize, map: &[usize]) -> XagFragment {
        assert_eq!(map.len(), self.num_inputs());
        assert!(map.iter().all(|&m| m < n), "input map entry out of range");
        let remap = |r: FragRef| match r {
            FragRef::Input(i, c) => FragRef::Input(map[i as usize] as u8, c),
            other => other,
        };
        XagFragment {
            inputs: n as u8,
            gates: self
                .gates
                .iter()
                .map(|g| FragmentGate {
                    is_and: g.is_and,
                    a: remap(g.a),
                    b: remap(g.b),
                })
                .collect(),
            output: remap(self.output),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn maj_fragment() -> XagFragment {
        let mut f = XagFragment::new(3);
        let ac = f.xor(XagFragment::input(0), XagFragment::input(2));
        let bc = f.xor(XagFragment::input(1), XagFragment::input(2));
        let p = f.and(ac, bc);
        let out = f.xor(p, XagFragment::input(2));
        f.set_output(out);
        f
    }

    #[test]
    fn eval_tt_matches_instantiation() {
        let f = maj_fragment();
        assert_eq!(f.eval_tt().bits(), 0xe8);
        let mut xag = Xag::new();
        let ins: Vec<_> = (0..3).map(|_| xag.input()).collect();
        let out = f.instantiate(&mut xag, &ins);
        xag.output(out);
        for m in 0..8u64 {
            assert_eq!(xag.evaluate(m)[0], m.count_ones() >= 2);
        }
        assert_eq!(xag.num_ands(), 1);
    }

    #[test]
    fn instantiation_reuses_existing_gates() {
        let f = maj_fragment();
        let mut xag = Xag::new();
        let ins: Vec<_> = (0..3).map(|_| xag.input()).collect();
        let o1 = f.instantiate(&mut xag, &ins);
        let gates_after_first = xag.num_gates();
        let o2 = f.instantiate(&mut xag, &ins);
        assert_eq!(o1, o2);
        assert_eq!(xag.num_gates(), gates_after_first);
        // And the dry-run sees full reuse only for referenced nodes.
        xag.output(o1);
        assert_eq!(f.count_new_ands(&xag, &ins), 0);
    }

    #[test]
    fn count_new_ands_on_empty_network() {
        let f = maj_fragment();
        let mut xag = Xag::new();
        let ins: Vec<_> = (0..3).map(|_| xag.input()).collect();
        assert_eq!(f.count_new_ands(&xag, &ins), 1);
    }

    #[test]
    fn complemented_output() {
        let f = maj_fragment().complemented();
        assert_eq!(f.eval_tt().bits(), (!Tt::from_bits(0xe8, 3)).bits());
    }

    #[test]
    fn xor_many_folds_constants() {
        let mut f = XagFragment::new(2);
        let out = f.xor_many(&[
            FragRef::Const(true),
            XagFragment::input(0),
            FragRef::Const(true),
            XagFragment::input(1),
        ]);
        f.set_output(out);
        assert_eq!(f.num_xors(), 1);
        assert_eq!(f.eval_tt().bits(), 0b0110);
    }
}
