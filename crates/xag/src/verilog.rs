//! Structural Verilog export.
//!
//! Writes an XAG as a flat gate-level Verilog module using only `assign`
//! statements with `&`, `^` and `~` — importable by any EDA tool or
//! simulator. Complemented edges become inline `~` operators, so the
//! emitted netlist has exactly one `assign` per live gate.

use std::collections::HashMap;
use std::io::Write;

use crate::network::{NodeKind, Xag};
use crate::signal::Signal;

/// Writes `xag` as a structural Verilog module named `name`.
///
/// Inputs are emitted as `i0, i1, …` and outputs as `o0, o1, …`, each a
/// single-bit port. A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use xag_network::{write_verilog, Xag};
///
/// # fn main() -> std::io::Result<()> {
/// let mut xag = Xag::new();
/// let a = xag.input();
/// let b = xag.input();
/// let g = xag.and(a, !b);
/// xag.output(g);
/// let mut text = Vec::new();
/// write_verilog(&xag, "demo", &mut text)?;
/// let v = String::from_utf8_lossy(&text);
/// assert!(v.contains("module demo"));
/// assert!(v.contains('&'));
/// # Ok(())
/// # }
/// ```
pub fn write_verilog<W: Write>(xag: &Xag, name: &str, mut writer: W) -> std::io::Result<()> {
    let n_in = xag.num_inputs();
    let n_out = xag.num_outputs();
    let ports: Vec<String> = (0..n_in)
        .map(|i| format!("i{i}"))
        .chain((0..n_out).map(|o| format!("o{o}")))
        .collect();
    writeln!(writer, "module {name} ({});", ports.join(", "))?;
    for i in 0..n_in {
        writeln!(writer, "  input i{i};")?;
    }
    for o in 0..n_out {
        writeln!(writer, "  output o{o};")?;
    }

    let mut name_of: HashMap<u32, String> = HashMap::new();
    for i in 0..n_in {
        name_of.insert(xag.input_signal(i).node(), format!("i{i}"));
    }
    let order = xag.live_gates();
    for (k, &n) in order.iter().enumerate() {
        name_of.insert(n, format!("w{k}"));
    }
    if !order.is_empty() {
        let wires: Vec<String> = (0..order.len()).map(|k| format!("w{k}")).collect();
        writeln!(writer, "  wire {};", wires.join(", "))?;
    }

    let operand = |s: Signal, names: &HashMap<u32, String>| -> String {
        if s.is_const() {
            return if s.is_complement() {
                "1'b1".into()
            } else {
                "1'b0".into()
            };
        }
        let base = &names[&s.node()];
        if s.is_complement() {
            format!("~{base}")
        } else {
            base.clone()
        }
    };

    for &n in &order {
        let (f0, f1) = xag.fanins(n);
        let op = match xag.kind(n) {
            NodeKind::And => "&",
            NodeKind::Xor => "^",
            _ => unreachable!("live_gates yields gates only"),
        };
        writeln!(
            writer,
            "  assign {} = {} {} {};",
            name_of[&n],
            operand(f0, &name_of),
            op,
            operand(f1, &name_of)
        )?;
    }
    for o in 0..n_out {
        let s = xag.output_signal(o);
        writeln!(writer, "  assign o{o} = {};", operand(s, &name_of))?;
    }
    writeln!(writer, "endmodule")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_netlist_structure() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        let m = x.maj(a, b, c);
        let t = x.xor(a, b);
        let s = x.xor(t, c);
        x.output(s);
        x.output(!m);
        x.output(Signal::CONST1);
        let mut buf = Vec::new();
        write_verilog(&x, "fa", &mut buf).expect("write");
        let v = String::from_utf8(buf).expect("utf8");
        assert!(v.starts_with("module fa (i0, i1, i2, o0, o1, o2);"));
        assert_eq!(v.matches("assign").count(), x.num_gates() + 3);
        assert!(v.contains("assign o2 = 1'b1;"));
        assert!(v.contains("~"));
        assert!(v.trim_end().ends_with("endmodule"));
        // One assign per live gate: AND count must match '&' uses.
        assert_eq!(v.matches(" & ").count(), x.num_ands());
        assert_eq!(v.matches(" ^ ").count(), x.num_xors());
    }

    #[test]
    fn empty_network_is_valid() {
        let mut x = Xag::new();
        let a = x.input();
        x.output(a);
        let mut buf = Vec::new();
        write_verilog(&x, "pass", &mut buf).expect("write");
        let v = String::from_utf8(buf).expect("utf8");
        assert!(v.contains("assign o0 = i0;"));
        assert!(!v.contains("wire"));
    }
}
