//! Structural Verilog export and (round-trip) import.
//!
//! [`write_verilog`] writes an XAG as a flat gate-level Verilog module
//! using only `assign` statements with `&`, `^` and `~` — importable by
//! any EDA tool or simulator. Complemented edges become inline `~`
//! operators, so the emitted netlist has exactly one `assign` per live
//! gate. [`read_verilog`] parses that structural subset back, closing the
//! export → reimport → [`crate::equiv`] loop the round-trip tests rely on.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};

use crate::network::{NodeKind, Xag};
use crate::signal::Signal;

/// Writes `xag` as a structural Verilog module named `name`.
///
/// Inputs are emitted as `i0, i1, …` and outputs as `o0, o1, …`, each a
/// single-bit port. A `&mut` reference can be passed for `writer`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use xag_network::{write_verilog, Xag};
///
/// # fn main() -> std::io::Result<()> {
/// let mut xag = Xag::new();
/// let a = xag.input();
/// let b = xag.input();
/// let g = xag.and(a, !b);
/// xag.output(g);
/// let mut text = Vec::new();
/// write_verilog(&xag, "demo", &mut text)?;
/// let v = String::from_utf8_lossy(&text);
/// assert!(v.contains("module demo"));
/// assert!(v.contains('&'));
/// # Ok(())
/// # }
/// ```
pub fn write_verilog<W: Write>(xag: &Xag, name: &str, mut writer: W) -> std::io::Result<()> {
    let n_in = xag.num_inputs();
    let n_out = xag.num_outputs();
    let ports: Vec<String> = (0..n_in)
        .map(|i| format!("i{i}"))
        .chain((0..n_out).map(|o| format!("o{o}")))
        .collect();
    writeln!(writer, "module {name} ({});", ports.join(", "))?;
    for i in 0..n_in {
        writeln!(writer, "  input i{i};")?;
    }
    for o in 0..n_out {
        writeln!(writer, "  output o{o};")?;
    }

    let mut name_of: HashMap<u32, String> = HashMap::new();
    for i in 0..n_in {
        name_of.insert(xag.input_signal(i).node(), format!("i{i}"));
    }
    let order = xag.live_gates();
    for (k, &n) in order.iter().enumerate() {
        name_of.insert(n, format!("w{k}"));
    }
    if !order.is_empty() {
        let wires: Vec<String> = (0..order.len()).map(|k| format!("w{k}")).collect();
        writeln!(writer, "  wire {};", wires.join(", "))?;
    }

    let operand = |s: Signal, names: &HashMap<u32, String>| -> String {
        if s.is_const() {
            return if s.is_complement() {
                "1'b1".into()
            } else {
                "1'b0".into()
            };
        }
        let base = &names[&s.node()];
        if s.is_complement() {
            format!("~{base}")
        } else {
            base.clone()
        }
    };

    for &n in &order {
        let (f0, f1) = xag.fanins(n);
        let op = match xag.kind(n) {
            NodeKind::And => "&",
            NodeKind::Xor => "^",
            _ => unreachable!("live_gates yields gates only"),
        };
        writeln!(
            writer,
            "  assign {} = {} {} {};",
            name_of[&n],
            operand(f0, &name_of),
            op,
            operand(f1, &name_of)
        )?;
    }
    for o in 0..n_out {
        let s = xag.output_signal(o);
        writeln!(writer, "  assign o{o} = {};", operand(s, &name_of))?;
    }
    writeln!(writer, "endmodule")?;
    Ok(())
}

/// Error produced when parsing a structural Verilog file.
#[derive(Debug)]
pub enum ParseVerilogError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Syntactic or structural problem, with a human-readable description.
    Malformed(String),
}

impl core::fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseVerilogError::Io(e) => write!(f, "i/o error: {e}"),
            ParseVerilogError::Malformed(m) => write!(f, "malformed verilog netlist: {m}"),
        }
    }
}

impl std::error::Error for ParseVerilogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseVerilogError::Io(e) => Some(e),
            ParseVerilogError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for ParseVerilogError {
    fn from(e: std::io::Error) -> Self {
        ParseVerilogError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ParseVerilogError {
    ParseVerilogError::Malformed(msg.into())
}

/// Reads a structural Verilog module of the subset [`write_verilog`]
/// emits: single-bit `input`/`output`/`wire` declarations and `assign`
/// statements whose right-hand side is a literal (`1'b0`/`1'b1`), an
/// optionally `~`-complemented name, or a binary `&`/`^` of two such
/// operands.
///
/// Inputs become primary inputs in declaration order; outputs become
/// primary outputs in declaration order. Assignments must appear in
/// topological order (every name used has been defined), which
/// [`write_verilog`] guarantees.
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on I/O failure, unsupported syntax,
/// redefined wires, use of undefined names, or missing output drivers.
pub fn read_verilog<R: Read>(reader: R) -> Result<Xag, ParseVerilogError> {
    let mut xag = Xag::new();
    let mut signals: HashMap<String, Signal> = HashMap::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut saw_module = false;
    let mut saw_endmodule = false;

    for line in BufReader::new(reader).lines() {
        let line = line?;
        let stmt = line.trim();
        if stmt.is_empty() || stmt.starts_with("//") {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("module") {
            if saw_module {
                return Err(malformed("multiple module headers"));
            }
            if !rest.trim_end().ends_with(");") {
                return Err(malformed("unterminated module header"));
            }
            saw_module = true;
            continue;
        }
        if stmt == "endmodule" {
            saw_endmodule = true;
            continue;
        }
        if !saw_module {
            return Err(malformed(format!("statement before module header: {stmt}")));
        }
        if saw_endmodule {
            return Err(malformed(format!("statement after endmodule: {stmt}")));
        }
        let stmt = stmt
            .strip_suffix(';')
            .ok_or_else(|| malformed(format!("missing semicolon: {stmt}")))?;
        if let Some(names) = stmt.strip_prefix("input ") {
            for name in names.split(',').map(str::trim) {
                if name.is_empty() {
                    return Err(malformed("empty input name"));
                }
                let s = xag.input();
                if signals.insert(name.to_string(), s).is_some() {
                    return Err(malformed(format!("redefined name: {name}")));
                }
            }
        } else if let Some(names) = stmt.strip_prefix("output ") {
            for name in names.split(',').map(str::trim) {
                if name.is_empty() {
                    return Err(malformed("empty output name"));
                }
                outputs.push(name.to_string());
            }
        } else if let Some(names) = stmt.strip_prefix("wire ") {
            // Declarations only; wires are defined by their assign.
            for name in names.split(',').map(str::trim) {
                if name.is_empty() {
                    return Err(malformed("empty wire name"));
                }
            }
        } else if let Some(rest) = stmt.strip_prefix("assign ") {
            let (lhs, rhs) = rest
                .split_once('=')
                .ok_or_else(|| malformed(format!("assign without '=': {rest}")))?;
            let lhs = lhs.trim();
            let rhs = rhs.trim();
            let operand = |tok: &str| -> Result<Signal, ParseVerilogError> {
                let (tok, compl) = match tok.strip_prefix('~') {
                    Some(t) => (t.trim(), true),
                    None => (tok, false),
                };
                let s = match tok {
                    "1'b0" => Signal::CONST0,
                    "1'b1" => Signal::CONST1,
                    name => *signals
                        .get(name)
                        .ok_or_else(|| malformed(format!("undefined name: {name}")))?,
                };
                Ok(s ^ compl)
            };
            let value = if let Some((a, b)) = rhs.split_once('&') {
                let (a, b) = (operand(a.trim())?, operand(b.trim())?);
                xag.and(a, b)
            } else if let Some((a, b)) = rhs.split_once('^') {
                let (a, b) = (operand(a.trim())?, operand(b.trim())?);
                xag.xor(a, b)
            } else {
                operand(rhs)?
            };
            if signals.insert(lhs.to_string(), value).is_some() {
                return Err(malformed(format!("redefined name: {lhs}")));
            }
        } else {
            return Err(malformed(format!("unsupported statement: {stmt}")));
        }
    }
    if !saw_module || !saw_endmodule {
        return Err(malformed("missing module/endmodule"));
    }
    for name in &outputs {
        let s = *signals
            .get(name)
            .ok_or_else(|| malformed(format!("output {name} never assigned")))?;
        xag.output(s);
    }
    Ok(xag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::equiv_exhaustive;

    #[test]
    fn full_adder_netlist_structure() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        let m = x.maj(a, b, c);
        let t = x.xor(a, b);
        let s = x.xor(t, c);
        x.output(s);
        x.output(!m);
        x.output(Signal::CONST1);
        let mut buf = Vec::new();
        write_verilog(&x, "fa", &mut buf).expect("write");
        let v = String::from_utf8(buf).expect("utf8");
        assert!(v.starts_with("module fa (i0, i1, i2, o0, o1, o2);"));
        assert_eq!(v.matches("assign").count(), x.num_gates() + 3);
        assert!(v.contains("assign o2 = 1'b1;"));
        assert!(v.contains("~"));
        assert!(v.trim_end().ends_with("endmodule"));
        // One assign per live gate: AND count must match '&' uses.
        assert_eq!(v.matches(" & ").count(), x.num_ands());
        assert_eq!(v.matches(" ^ ").count(), x.num_xors());
    }

    #[test]
    fn empty_network_is_valid() {
        let mut x = Xag::new();
        let a = x.input();
        x.output(a);
        let mut buf = Vec::new();
        write_verilog(&x, "pass", &mut buf).expect("write");
        let v = String::from_utf8(buf).expect("utf8");
        assert!(v.contains("assign o0 = i0;"));
        assert!(!v.contains("wire"));
    }

    #[test]
    fn roundtrip_preserves_function_and_io() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        let m = x.maj(a, b, c);
        let t = x.xor(a, !b);
        let s = x.and(t, c);
        x.output(s);
        x.output(!m);
        x.output(Signal::CONST1);
        let mut buf = Vec::new();
        write_verilog(&x, "rt", &mut buf).expect("write");
        let back = read_verilog(buf.as_slice()).expect("parse");
        assert_eq!(back.num_inputs(), x.num_inputs());
        assert_eq!(back.num_outputs(), x.num_outputs());
        assert!(equiv_exhaustive(&x, &back));
        // Strashing on re-read cannot create more gates than were printed.
        assert!(back.num_gates() <= x.num_gates());
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(read_verilog("".as_bytes()).is_err());
        assert!(read_verilog("module m (a);\n  input a;\n".as_bytes()).is_err());
        assert!(read_verilog(
            "module m (a, o0);\n  input a;\n  output o0;\n  assign o0 = undef;\nendmodule\n"
                .as_bytes()
        )
        .is_err());
        assert!(
            read_verilog("module m (o0);\n  output o0;\nendmodule\n".as_bytes()).is_err(),
            "undriven output"
        );
    }
}
