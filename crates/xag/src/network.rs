use xag_tt::hash::FxHashMap;
use xag_tt::Tt;

use crate::signal::Signal;

/// Dense index of a network node.
pub type NodeId = u32;

/// The kind of a network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The constant-zero node (always node 0).
    Const,
    /// A primary input; the payload is the input position.
    Input(u32),
    /// A two-input AND gate.
    And,
    /// A two-input XOR gate.
    Xor,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    kind: NodeKind,
    f0: Signal,
    f1: Signal,
}

type StrashKey = (bool, Signal, Signal);

enum Norm {
    /// The gate folds to an existing signal.
    Trivial(Signal),
    /// A canonical gate: kind, fanins, and an output complement (XOR only).
    Gate {
        is_and: bool,
        a: Signal,
        b: Signal,
        out_compl: bool,
    },
}

fn normalize_and(a: Signal, b: Signal) -> Norm {
    if a == Signal::CONST0 || b == Signal::CONST0 || a == !b {
        return Norm::Trivial(Signal::CONST0);
    }
    if a == Signal::CONST1 {
        return Norm::Trivial(b);
    }
    if b == Signal::CONST1 || a == b {
        return Norm::Trivial(a);
    }
    let (a, b) = if a <= b { (a, b) } else { (b, a) };
    Norm::Gate {
        is_and: true,
        a,
        b,
        out_compl: false,
    }
}

fn normalize_xor(a: Signal, b: Signal) -> Norm {
    if a.is_const() {
        return Norm::Trivial(b ^ a.is_complement());
    }
    if b.is_const() {
        return Norm::Trivial(a ^ b.is_complement());
    }
    if a.abs() == b.abs() {
        return Norm::Trivial(Signal::new(0, a != b));
    }
    let out_compl = a.is_complement() ^ b.is_complement();
    let (a, b) = (a.abs(), b.abs());
    let (a, b) = if a <= b { (a, b) } else { (b, a) };
    Norm::Gate {
        is_and: false,
        a,
        b,
        out_compl,
    }
}

/// Reusable state for [`Xag::live_gates_into`].
///
/// Holds the DFS colouring and stack so repeated topological-order requests
/// (one per rewrite round, window build, canonicalization, …) reuse the same
/// buffers instead of re-allocating them.
#[derive(Debug, Default, Clone)]
pub struct TopoScratch {
    state: Vec<u8>, // 0 new, 1 open, 2 done
    stack: Vec<(NodeId, bool)>,
}

impl TopoScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable memo for [`Xag::cone_tt_with`].
///
/// A dense epoch-stamped table: entry `n` is valid only if its stamp equals
/// the current epoch, so starting a new cone evaluation is O(1) — no clearing,
/// no hashing, no allocation once the buffers have grown to network size.
#[derive(Debug, Default, Clone)]
pub struct ConeScratch {
    epoch: u32,
    stamp: Vec<u32>,
    tt: Vec<Tt>,
    stack: Vec<NodeId>,
}

impl ConeScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, cap: usize) {
        if self.stamp.len() < cap {
            self.stamp.resize(cap, 0);
            self.tt.resize(cap, Tt::zero(1));
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: reset so stale entries cannot alias.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn get(&self, n: NodeId) -> Option<Tt> {
        if self.stamp[n as usize] == self.epoch {
            Some(self.tt[n as usize])
        } else {
            None
        }
    }

    #[inline]
    fn set(&mut self, n: NodeId, t: Tt) {
        self.stamp[n as usize] = self.epoch;
        self.tt[n as usize] = t;
    }
}

/// A XOR-AND graph: a structurally hashed logic network of two-input AND and
/// XOR gates with complemented edges.
///
/// See the [crate documentation](crate) for an overview and an example.
#[derive(Debug, Clone)]
pub struct Xag {
    nodes: Vec<Node>,
    pis: Vec<NodeId>,
    pos: Vec<Signal>,
    strash: FxHashMap<StrashKey, NodeId>,
    nref: Vec<u32>,
    fanouts: Vec<Vec<NodeId>>,
    dead: Vec<bool>,
    replacement: Vec<Option<Signal>>,
}

impl Default for Xag {
    fn default() -> Self {
        Self::new()
    }
}

impl Xag {
    /// Creates an empty network containing only the constant-zero node.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node {
                kind: NodeKind::Const,
                f0: Signal::CONST0,
                f1: Signal::CONST0,
            }],
            pis: Vec::new(),
            pos: Vec::new(),
            strash: FxHashMap::default(),
            nref: vec![0],
            fanouts: vec![Vec::new()],
            dead: vec![false],
            replacement: vec![None],
        }
    }

    /// Adds a primary input and returns its signal.
    pub fn input(&mut self) -> Signal {
        let id = self.alloc(
            NodeKind::Input(self.pis.len() as u32),
            Signal::CONST0,
            Signal::CONST0,
        );
        self.pis.push(id);
        Signal::new(id, false)
    }

    /// Adds `n` primary inputs.
    pub fn inputs(&mut self, n: usize) -> Vec<Signal> {
        (0..n).map(|_| self.input()).collect()
    }

    /// Marks a signal as a primary output and returns its output position.
    pub fn output(&mut self, s: Signal) -> usize {
        self.nref[s.node() as usize] += 1;
        self.pos.push(s);
        self.pos.len() - 1
    }

    /// The constant signal with the given value.
    pub fn constant(&self, value: bool) -> Signal {
        Signal::new(0, value)
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.pis.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.pos.len()
    }

    /// Signal of the `i`-th primary input.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn input_signal(&self, i: usize) -> Signal {
        Signal::new(self.pis[i], false)
    }

    /// Signal driving the `i`-th primary output.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn output_signal(&self, i: usize) -> Signal {
        self.resolve(self.pos[i])
    }

    /// All primary-output signals.
    pub fn output_signals(&self) -> Vec<Signal> {
        (0..self.pos.len()).map(|i| self.output_signal(i)).collect()
    }

    /// The kind of a node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n as usize].kind
    }

    /// True iff the node is an AND or XOR gate.
    pub fn is_gate(&self, n: NodeId) -> bool {
        matches!(self.nodes[n as usize].kind, NodeKind::And | NodeKind::Xor)
    }

    /// The two fanins of a gate node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a gate.
    pub fn fanins(&self, n: NodeId) -> (Signal, Signal) {
        assert!(self.is_gate(n), "node {n} is not a gate");
        let node = &self.nodes[n as usize];
        (node.f0, node.f1)
    }

    /// Reference count of a node (live fanouts plus primary-output uses).
    pub fn nref(&self, n: NodeId) -> u32 {
        self.nref[n as usize]
    }

    /// True iff the node has been removed from the network.
    pub fn is_dead(&self, n: NodeId) -> bool {
        self.dead[n as usize]
    }

    /// Total number of allocated node slots (including dead nodes).
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    fn alloc(&mut self, kind: NodeKind, f0: Signal, f1: Signal) -> NodeId {
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node { kind, f0, f1 });
        self.nref.push(0);
        self.fanouts.push(Vec::new());
        self.dead.push(false);
        self.replacement.push(None);
        if matches!(kind, NodeKind::And | NodeKind::Xor) {
            self.nref[f0.node() as usize] += 1;
            self.nref[f1.node() as usize] += 1;
            self.fanouts[f0.node() as usize].push(id);
            self.fanouts[f1.node() as usize].push(id);
        }
        id
    }

    fn lookup_or_create(&mut self, is_and: bool, a: Signal, b: Signal, out_compl: bool) -> Signal {
        let key = (is_and, a, b);
        if let Some(&n) = self.strash.get(&key) {
            return Signal::new(n, out_compl);
        }
        let kind = if is_and { NodeKind::And } else { NodeKind::Xor };
        let id = self.alloc(kind, a, b);
        self.strash.insert(key, id);
        Signal::new(id, out_compl)
    }

    /// Creates (or finds) the AND of two signals.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        let (a, b) = (self.resolve(a), self.resolve(b));
        match normalize_and(a, b) {
            Norm::Trivial(s) => s,
            Norm::Gate {
                is_and,
                a,
                b,
                out_compl,
            } => self.lookup_or_create(is_and, a, b, out_compl),
        }
    }

    /// Creates (or finds) the XOR of two signals.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        let (a, b) = (self.resolve(a), self.resolve(b));
        match normalize_xor(a, b) {
            Norm::Trivial(s) => s,
            Norm::Gate {
                is_and,
                a,
                b,
                out_compl,
            } => self.lookup_or_create(is_and, a, b, out_compl),
        }
    }

    /// The complement of a signal (free: flips the edge attribute).
    pub fn not(&self, a: Signal) -> Signal {
        !a
    }

    /// OR via De Morgan: `a | b = !(!a & !b)`.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        let g = self.and(!a, !b);
        !g
    }

    /// Two-input multiplexer `if s { t } else { e }`, built with one AND
    /// gate: `e ⊕ s·(t⊕e)`.
    pub fn mux(&mut self, s: Signal, t: Signal, e: Signal) -> Signal {
        let d = self.xor(t, e);
        let sd = self.and(s, d);
        self.xor(sd, e)
    }

    /// Majority of three signals with one AND gate:
    /// `⟨abc⟩ = (a⊕c)(b⊕c) ⊕ c`.
    pub fn maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        let ac = self.xor(a, c);
        let bc = self.xor(b, c);
        let t = self.and(ac, bc);
        self.xor(t, c)
    }

    /// Looks up an AND gate without creating it.
    ///
    /// Returns the signal the gate would evaluate to if it (or a trivial
    /// simplification) already exists.
    pub fn lookup_and(&self, a: Signal, b: Signal) -> Option<Signal> {
        let (a, b) = (self.resolve(a), self.resolve(b));
        match normalize_and(a, b) {
            Norm::Trivial(s) => Some(s),
            Norm::Gate {
                is_and,
                a,
                b,
                out_compl,
            } => self
                .strash
                .get(&(is_and, a, b))
                .map(|&n| Signal::new(n, out_compl)),
        }
    }

    /// Looks up a XOR gate without creating it. See [`Xag::lookup_and`].
    pub fn lookup_xor(&self, a: Signal, b: Signal) -> Option<Signal> {
        let (a, b) = (self.resolve(a), self.resolve(b));
        match normalize_xor(a, b) {
            Norm::Trivial(s) => Some(s),
            Norm::Gate {
                is_and,
                a,
                b,
                out_compl,
            } => self
                .strash
                .get(&(is_and, a, b))
                .map(|&n| Signal::new(n, out_compl)),
        }
    }

    /// Follows replacement records left behind by [`Xag::substitute`].
    pub fn resolve(&self, mut s: Signal) -> Signal {
        while let Some(r) = self.replacement[s.node() as usize] {
            s = r ^ s.is_complement();
        }
        s
    }

    fn key_of(&self, n: NodeId) -> Option<StrashKey> {
        let node = &self.nodes[n as usize];
        match node.kind {
            NodeKind::And => Some((true, node.f0, node.f1)),
            NodeKind::Xor => Some((false, node.f0, node.f1)),
            _ => None,
        }
    }

    fn unhash(&mut self, n: NodeId) {
        if let Some(key) = self.key_of(n) {
            if self.strash.get(&key) == Some(&n) {
                self.strash.remove(&key);
            }
        }
    }

    fn kill(&mut self, n: NodeId) {
        if self.dead[n as usize] || !self.is_gate(n) {
            return;
        }
        debug_assert_eq!(self.nref[n as usize], 0);
        self.dead[n as usize] = true;
        self.unhash(n);
        let (f0, f1) = self.fanins(n);
        for f in [f0, f1] {
            let fi = f.node() as usize;
            self.nref[fi] -= 1;
            if self.nref[fi] == 0 {
                self.kill(f.node());
            }
        }
    }

    /// Replaces node `old` by signal `new_sig` everywhere, re-normalizing and
    /// re-hashing the transitive fanout. Nodes whose reference count drops to
    /// zero are removed.
    ///
    /// The caller must ensure `old` is not in the transitive fanin of
    /// `new_sig` (see [`Xag::is_in_tfi`]); violating this creates a cycle.
    ///
    /// # Panics
    ///
    /// Panics if `old` is not a gate node.
    pub fn substitute(&mut self, old: NodeId, new_sig: Signal) {
        assert!(self.is_gate(old), "can only substitute gate nodes");
        let mut work = vec![(old, new_sig)];
        while let Some((old, new_sig)) = work.pop() {
            if self.dead[old as usize] {
                continue;
            }
            let new_sig = self.resolve(new_sig);
            if new_sig.node() == old {
                continue;
            }
            // Re-point primary outputs.
            for i in 0..self.pos.len() {
                if self.pos[i].node() == old {
                    let c = self.pos[i].is_complement();
                    self.nref[old as usize] -= 1;
                    self.pos[i] = new_sig ^ c;
                    self.nref[new_sig.node() as usize] += 1;
                }
            }
            // Re-point fanouts.
            let parents = std::mem::take(&mut self.fanouts[old as usize]);
            for p in parents {
                if self.dead[p as usize] || !self.is_gate(p) {
                    continue;
                }
                let (f0, f1) = self.fanins(p);
                if f0.node() != old && f1.node() != old {
                    continue; // stale fanout entry
                }
                self.unhash(p);
                let remap = |f: Signal| {
                    if f.node() == old {
                        new_sig ^ f.is_complement()
                    } else {
                        f
                    }
                };
                let (g0, g1) = (remap(f0), remap(f1));
                for f in [f0, f1] {
                    if f.node() == old {
                        self.nref[old as usize] -= 1;
                        self.nref[new_sig.node() as usize] += 1;
                        self.fanouts[new_sig.node() as usize].push(p);
                    }
                }
                self.nodes[p as usize].f0 = g0;
                self.nodes[p as usize].f1 = g1;
                let is_and = self.nodes[p as usize].kind == NodeKind::And;
                let norm = if is_and {
                    normalize_and(g0, g1)
                } else {
                    normalize_xor(g0, g1)
                };
                match norm {
                    Norm::Trivial(s) => work.push((p, s)),
                    Norm::Gate {
                        is_and,
                        a,
                        b,
                        out_compl,
                    } => {
                        // When the XOR normalization pushes a complement out
                        // (`out_compl`), the node cannot flip polarity in
                        // place: keep the parity on the second fanin edge
                        // instead. This never allocates nodes, which keeps
                        // substitution cascades linear (a fresh node per
                        // re-normalized parent blows up quadratically).
                        let (na, nb) = if out_compl { (a, !b) } else { (a, b) };
                        let key = (is_and, na, nb);
                        let canonical_hit = if out_compl {
                            // A canonical twin computing xor(a, b) may
                            // already exist; its complement is p's function.
                            self.strash.get(&(is_and, a, b)).copied()
                        } else {
                            None
                        };
                        match self.strash.get(&key) {
                            Some(&q) if q != p => {
                                work.push((p, Signal::new(q, false)));
                            }
                            _ => match canonical_hit {
                                Some(q) if q != p => {
                                    work.push((p, Signal::new(q, true)));
                                }
                                _ => {
                                    // Adopt the stored form (same fanin
                                    // nodes, so reference counts are
                                    // unaffected).
                                    self.nodes[p as usize].f0 = na;
                                    self.nodes[p as usize].f1 = nb;
                                    self.strash.insert(key, p);
                                }
                            },
                        }
                    }
                }
            }
            self.replacement[old as usize] = Some(new_sig);
            if self.nref[old as usize] == 0 {
                self.kill(old);
            }
        }
    }

    /// Removes a dangling gate — a node nothing references, typically a
    /// rewrite candidate that was instantiated and then rejected — along
    /// with every fanin-cone node whose reference count drops to zero.
    ///
    /// No-op for constants, inputs, dead nodes, and nodes that still have
    /// references, so it is always safe to call on a signal's node.
    pub fn remove_dangling(&mut self, n: NodeId) {
        if self.is_gate(n) && !self.dead[n as usize] && self.nref[n as usize] == 0 {
            self.kill(n);
        }
    }

    /// Removes every dangling gate allocated at or above `watermark`
    /// (typically a [`Xag::capacity`] value recorded before instantiating a
    /// rewrite candidate), top-down so fanin references cascade.
    ///
    /// This is the shard-local reclamation primitive of the parallel
    /// rewriting engine: each commit records the arena watermark before
    /// instantiating a candidate and rolls back to it when the candidate is
    /// rejected, so rejected rewrites never leak nodes — regardless of
    /// which shard proposed them.
    pub fn reclaim_above(&mut self, watermark: usize) {
        for id in (watermark..self.capacity()).rev() {
            self.remove_dangling(id as NodeId);
        }
    }

    /// True iff node `target` lies in the transitive fanin cone of `of`.
    pub fn is_in_tfi(&self, target: NodeId, of: Signal) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![of.node()];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if seen[n as usize] || !self.is_gate(n) {
                continue;
            }
            seen[n as usize] = true;
            let (f0, f1) = self.fanins(n);
            stack.push(f0.node());
            stack.push(f1.node());
        }
        false
    }

    /// Gate nodes reachable from the primary outputs, in topological order
    /// (fanins before fanouts).
    ///
    /// Allocates fresh buffers on every call; hot paths should hold a
    /// [`TopoScratch`] and an order `Vec` and use [`Xag::live_gates_into`].
    pub fn live_gates(&self) -> Vec<NodeId> {
        let mut scratch = TopoScratch::new();
        let mut order = Vec::new();
        self.live_gates_into(&mut scratch, &mut order);
        order
    }

    /// Collects the live gates in topological order into `order`, reusing the
    /// buffers of `scratch` (and of `order`, which is cleared first).
    pub fn live_gates_into(&self, scratch: &mut TopoScratch, order: &mut Vec<NodeId>) {
        order.clear();
        let state = &mut scratch.state;
        state.clear();
        state.resize(self.nodes.len(), 0u8);
        let stack = &mut scratch.stack;
        stack.clear();
        stack.extend(self.pos.iter().map(|s| (self.resolve(*s).node(), false)));
        while let Some((n, expanded)) = stack.pop() {
            if state[n as usize] == 2 {
                continue;
            }
            if expanded {
                state[n as usize] = 2;
                if self.is_gate(n) {
                    order.push(n);
                }
                continue;
            }
            if state[n as usize] == 1 {
                continue;
            }
            state[n as usize] = 1;
            stack.push((n, true));
            if self.is_gate(n) {
                let (f0, f1) = self.fanins(n);
                if state[f0.node() as usize] == 0 {
                    stack.push((f0.node(), false));
                }
                if state[f1.node() as usize] == 0 {
                    stack.push((f1.node(), false));
                }
            }
        }
    }

    /// Number of AND gates reachable from the outputs (the circuit's
    /// multiplicative complexity in the paper's terminology).
    pub fn num_ands(&self) -> usize {
        self.live_gates()
            .iter()
            .filter(|&&n| self.nodes[n as usize].kind == NodeKind::And)
            .count()
    }

    /// Number of XOR gates reachable from the outputs.
    pub fn num_xors(&self) -> usize {
        self.live_gates()
            .iter()
            .filter(|&&n| self.nodes[n as usize].kind == NodeKind::Xor)
            .count()
    }

    /// Total number of live gates.
    pub fn num_gates(&self) -> usize {
        self.live_gates().len()
    }

    /// Multiplicative depth: the maximum number of AND gates on any
    /// input-to-output path. This is the second cost metric of FHE (each
    /// AND level consumes noise budget); XOR gates and inverters are free
    /// in depth as well.
    pub fn and_depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        for n in self.live_gates() {
            let (f0, f1) = self.fanins(n);
            let d = depth[f0.node() as usize].max(depth[f1.node() as usize]);
            depth[n as usize] = d + (self.nodes[n as usize].kind == NodeKind::And) as usize;
        }
        self.pos
            .iter()
            .map(|s| depth[self.resolve(*s).node() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Word-parallel simulation: given one 64-bit pattern word per input,
    /// returns one word per output (bit `k` of a word belongs to test
    /// vector `k`).
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len() != self.num_inputs()`.
    pub fn simulate(&self, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(input_words.len(), self.num_inputs());
        let mut values = vec![0u64; self.nodes.len()];
        for (k, &pi) in self.pis.iter().enumerate() {
            values[pi as usize] = input_words[k];
        }
        for n in self.live_gates() {
            let node = &self.nodes[n as usize];
            let v0 = values[node.f0.node() as usize]
                ^ if node.f0.is_complement() { u64::MAX } else { 0 };
            let v1 = values[node.f1.node() as usize]
                ^ if node.f1.is_complement() { u64::MAX } else { 0 };
            values[n as usize] = match node.kind {
                NodeKind::And => v0 & v1,
                NodeKind::Xor => v0 ^ v1,
                _ => unreachable!(),
            };
        }
        self.pos
            .iter()
            .map(|s| {
                let s = self.resolve(*s);
                values[s.node() as usize] ^ if s.is_complement() { u64::MAX } else { 0 }
            })
            .collect()
    }

    /// Evaluates the network on a single assignment (bit `i` of `assignment`
    /// is input `i`).
    pub fn evaluate(&self, assignment: u64) -> Vec<bool> {
        let words: Vec<u64> = (0..self.num_inputs())
            .map(|i| {
                if (assignment >> i) & 1 == 1 {
                    u64::MAX
                } else {
                    0
                }
            })
            .collect();
        self.simulate(&words).iter().map(|&w| w & 1 == 1).collect()
    }

    /// Computes the local function of `root` expressed over the given cut
    /// `leaves` (at most six node ids).
    ///
    /// Returns `None` if the cone reaches a primary input or has more than
    /// six leaves — i.e. if `leaves` is not a valid cut of `root`.
    ///
    /// Allocates a fresh memo on every call; hot paths should hold a
    /// [`ConeScratch`] and use [`Xag::cone_tt_with`].
    pub fn cone_tt(&self, root: NodeId, leaves: &[NodeId]) -> Option<Tt> {
        self.cone_tt_with(root, leaves, &mut ConeScratch::new())
    }

    /// [`Xag::cone_tt`] with a caller-provided memo, allocation-free once the
    /// scratch has grown to network size.
    pub fn cone_tt_with(
        &self,
        root: NodeId,
        leaves: &[NodeId],
        scratch: &mut ConeScratch,
    ) -> Option<Tt> {
        if leaves.len() > 6 {
            return None;
        }
        let nvars = leaves.len().max(1);
        scratch.begin(self.nodes.len());
        for (i, &l) in leaves.iter().enumerate() {
            scratch.set(l, Tt::projection(i, nvars));
        }
        scratch.set(0, Tt::zero(nvars));
        let mut stack = std::mem::take(&mut scratch.stack);
        stack.clear();
        stack.push(root);
        let mut valid = true;
        while let Some(&n) = stack.last() {
            if scratch.get(n).is_some() {
                stack.pop();
                continue;
            }
            if !self.is_gate(n) {
                valid = false; // reached a PI that is not a leaf
                break;
            }
            let (f0, f1) = self.fanins(n);
            match (scratch.get(f0.node()), scratch.get(f1.node())) {
                (Some(t0), Some(t1)) => {
                    stack.pop();
                    let t0 = if f0.is_complement() { !t0 } else { t0 };
                    let t1 = if f1.is_complement() { !t1 } else { t1 };
                    let t = match self.nodes[n as usize].kind {
                        NodeKind::And => t0 & t1,
                        NodeKind::Xor => t0 ^ t1,
                        _ => unreachable!(),
                    };
                    scratch.set(n, t);
                }
                (t0, t1) => {
                    if t0.is_none() {
                        stack.push(f0.node());
                    }
                    if t1.is_none() {
                        stack.push(f1.node());
                    }
                }
            }
        }
        scratch.stack = stack;
        if valid {
            scratch.get(root)
        } else {
            None
        }
    }

    /// Dereferences the maximum fanout-free cone of `root` bounded by
    /// `leaves`, returning `(AND gates, total gates)` that would be freed by
    /// removing `root`. Must be undone with [`Xag::ref_cone`] before any
    /// other mutation.
    pub fn deref_cone(&mut self, root: NodeId, leaves: &[NodeId]) -> (u32, u32) {
        let mut ands = (self.nodes[root as usize].kind == NodeKind::And) as u32;
        let mut total = 1u32;
        let (f0, f1) = self.fanins(root);
        for f in [f0, f1] {
            let fi = f.node();
            self.nref[fi as usize] -= 1;
            if self.nref[fi as usize] == 0 && self.is_gate(fi) && !leaves.contains(&fi) {
                let (a, t) = self.deref_cone(fi, leaves);
                ands += a;
                total += t;
            }
        }
        (ands, total)
    }

    /// Undoes [`Xag::deref_cone`].
    pub fn ref_cone(&mut self, root: NodeId, leaves: &[NodeId]) -> (u32, u32) {
        let mut ands = (self.nodes[root as usize].kind == NodeKind::And) as u32;
        let mut total = 1u32;
        let (f0, f1) = self.fanins(root);
        for f in [f0, f1] {
            let fi = f.node();
            if self.nref[fi as usize] == 0 && self.is_gate(fi) && !leaves.contains(&fi) {
                let (a, t) = self.ref_cone(fi, leaves);
                ands += a;
                total += t;
            }
            self.nref[fi as usize] += 1;
        }
        (ands, total)
    }

    /// Rebuilds the network, dropping dead and unreachable nodes. Primary
    /// inputs and outputs keep their order.
    pub fn cleanup(&self) -> Xag {
        let mut out = Xag::new();
        // Node ids are dense indices, so a flat side table beats a hash map.
        let mut map: Vec<Signal> = vec![Signal::CONST0; self.nodes.len()];
        for &pi in &self.pis {
            map[pi as usize] = out.input();
        }
        for n in self.live_gates() {
            let (f0, f1) = self.fanins(n);
            let a = map[f0.node() as usize] ^ f0.is_complement();
            let b = map[f1.node() as usize] ^ f1.is_complement();
            let s = match self.nodes[n as usize].kind {
                NodeKind::And => out.and(a, b),
                NodeKind::Xor => out.xor(a, b),
                _ => unreachable!(),
            };
            map[n as usize] = s;
        }
        for po in &self.pos {
            let po = self.resolve(*po);
            let s = map[po.node() as usize] ^ po.is_complement();
            out.output(s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder(xag: &mut Xag) -> (Signal, Signal) {
        let a = xag.input();
        let b = xag.input();
        let c = xag.input();
        let axb = xag.xor(a, b);
        let sum = xag.xor(axb, c);
        let ab = xag.and(a, b);
        let ac = xag.and(a, c);
        let bc = xag.and(b, c);
        let t = xag.xor(ab, ac);
        let cout = xag.xor(t, bc);
        (sum, cout)
    }

    #[test]
    fn constant_folding() {
        let mut x = Xag::new();
        let a = x.input();
        assert_eq!(x.and(a, Signal::CONST0), Signal::CONST0);
        assert_eq!(x.and(a, Signal::CONST1), a);
        assert_eq!(x.and(a, a), a);
        assert_eq!(x.and(a, !a), Signal::CONST0);
        assert_eq!(x.xor(a, Signal::CONST0), a);
        assert_eq!(x.xor(a, Signal::CONST1), !a);
        assert_eq!(x.xor(a, a), Signal::CONST0);
        assert_eq!(x.xor(a, !a), Signal::CONST1);
        assert_eq!(x.num_gates(), 0);
    }

    #[test]
    fn structural_hashing_dedups() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let g1 = x.and(a, b);
        let g2 = x.and(b, a);
        assert_eq!(g1, g2);
        let x1 = x.xor(a, b);
        let x2 = x.xor(!a, !b);
        assert_eq!(x1, x2);
        let x3 = x.xor(!a, b);
        assert_eq!(x3, !x1);
    }

    #[test]
    fn full_adder_counts() {
        let mut x = Xag::new();
        let (sum, cout) = full_adder(&mut x);
        x.output(sum);
        x.output(cout);
        assert_eq!(x.num_ands(), 3);
        assert_eq!(x.num_xors(), 4);
        // Check functionality on all 8 assignments.
        for m in 0..8u64 {
            let bits = x.evaluate(m);
            let ones = m.count_ones();
            assert_eq!(bits[0], ones % 2 == 1, "sum at {m}");
            assert_eq!(bits[1], ones >= 2, "cout at {m}");
        }
    }

    #[test]
    fn maj_uses_one_and() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        let m = x.maj(a, b, c);
        x.output(m);
        assert_eq!(x.num_ands(), 1);
        for i in 0..8u64 {
            assert_eq!(x.evaluate(i)[0], i.count_ones() >= 2);
        }
    }

    #[test]
    fn mux_works() {
        let mut x = Xag::new();
        let s = x.input();
        let t = x.input();
        let e = x.input();
        let m = x.mux(s, t, e);
        x.output(m);
        assert_eq!(x.num_ands(), 1);
        for i in 0..8u64 {
            let (sv, tv, ev) = (i & 1 == 1, i & 2 == 2, i & 4 == 4);
            assert_eq!(x.evaluate(i)[0], if sv { tv } else { ev });
        }
    }

    #[test]
    fn simulate_words() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let g = x.and(a, !b);
        x.output(g);
        let out = x.simulate(&[0b1100, 0b1010]);
        assert_eq!(out[0] & 0xf, 0b0100);
    }

    #[test]
    fn cone_tt_of_full_adder_cout() {
        let mut x = Xag::new();
        let (sum, cout) = full_adder(&mut x);
        x.output(sum);
        x.output(cout);
        let leaves: Vec<NodeId> = (0..3).map(|i| x.input_signal(i).node()).collect();
        let t = x.cone_tt(x.output_signal(1).node(), &leaves).unwrap();
        assert_eq!(t.bits(), 0xe8); // majority, as in the paper
    }

    #[test]
    fn substitute_rewires_and_kills() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        // cout computed the expensive way.
        let ab = x.and(a, b);
        let ac = x.and(a, c);
        let bc = x.and(b, c);
        let t = x.xor(ab, ac);
        let cout = x.xor(t, bc);
        x.output(cout);
        assert_eq!(x.num_ands(), 3);
        // The cheap majority.
        let m = x.maj(a, b, c);
        let before: Vec<u64> = x.simulate(&[0xff00ff00, 0xcccccccc, 0xaaaaaaaa]);
        x.substitute(cout.node(), m);
        let after: Vec<u64> = x.simulate(&[0xff00ff00, 0xcccccccc, 0xaaaaaaaa]);
        assert_eq!(before, after);
        assert_eq!(x.num_ands(), 1);
        assert_eq!(x.num_xors(), 3);
    }

    #[test]
    fn substitute_by_constant_cascades() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let g = x.and(a, b);
        let h = x.xor(g, b);
        x.output(h);
        // Replace g by constant 0: h collapses to b.
        x.substitute(g.node(), Signal::CONST0);
        assert_eq!(x.num_gates(), 0);
        assert_eq!(x.output_signal(0), b);
    }

    #[test]
    fn substitute_merges_structural_duplicates() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        let g1 = x.and(a, b);
        let g2 = x.and(a, c);
        let u = x.xor(g1, b);
        let v = x.xor(g2, b);
        let w = x.and(u, v);
        x.output(w);
        // Substituting c by b makes g2 ≡ g1, hence u ≡ v and w ≡ u.
        x.substitute(g2.node(), g1);
        assert_eq!(x.resolve(v), x.resolve(u));
        let out = x.output_signal(0);
        assert_eq!(out, x.resolve(u));
    }

    #[test]
    fn deref_ref_cone_roundtrip() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        let ab = x.and(a, b);
        let abc = x.and(ab, c);
        let other = x.xor(ab, c); // shares ab
        x.output(abc);
        x.output(other);
        let leaves = [a.node(), b.node(), c.node()];
        let refs_before: Vec<u32> = (0..x.capacity() as u32).map(|n| x.nref(n)).collect();
        let freed = x.deref_cone(abc.node(), &leaves);
        // ab is shared with `other`, so only abc itself is freed.
        assert_eq!(freed, (1, 1));
        let back = x.ref_cone(abc.node(), &leaves);
        assert_eq!(back, freed);
        let refs_after: Vec<u32> = (0..x.capacity() as u32).map(|n| x.nref(n)).collect();
        assert_eq!(refs_before, refs_after);
    }

    #[test]
    fn and_depth_counts_only_ands() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        // XOR chain: depth 0.
        let t1 = x.xor(a, b);
        let t2 = x.xor(t1, c);
        // Two AND levels.
        let g1 = x.and(t2, a);
        let g2 = x.and(g1, b);
        let out = x.xor(g2, c);
        x.output(out);
        assert_eq!(x.and_depth(), 2);
        let mut y = Xag::new();
        let p = y.input();
        let q = y.input();
        let r = y.xor(p, q);
        y.output(r);
        assert_eq!(y.and_depth(), 0);
    }

    #[test]
    fn cleanup_drops_dangling() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let keep = x.and(a, b);
        let _dangling = x.xor(a, b);
        x.output(keep);
        let y = x.cleanup();
        assert_eq!(y.num_inputs(), 2);
        assert_eq!(y.num_gates(), 1);
        assert_eq!(y.num_ands(), 1);
    }

    #[test]
    fn is_in_tfi_detects_cycles() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let g = x.and(a, b);
        let h = x.xor(g, a);
        x.output(h);
        assert!(x.is_in_tfi(g.node(), h));
        assert!(!x.is_in_tfi(h.node(), g));
    }
}
