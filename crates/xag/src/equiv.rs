use crate::network::Xag;

/// Hard input-count cap of [`equiv_exhaustive`]: above this, the `2^n`
/// sweep is considered unreasonable no matter the caller's patience.
pub const EXHAUSTIVE_MAX_INPUTS: usize = 24;

/// Input count up to which [`equiv`] always prefers the exhaustive check,
/// regardless of the requested random-simulation budget (a `2^16` sweep is
/// cheap enough to be unconditional).
pub const EXHAUSTIVE_DEFAULT_INPUTS: usize = 16;

/// Checks combinational equivalence of two networks with identical I/O
/// counts.
///
/// Uses exhaustive simulation (a proof) whenever it is no more expensive
/// than the requested random budget: always for networks of at most
/// [`EXHAUSTIVE_DEFAULT_INPUTS`] inputs, and in the 17–[`EXHAUSTIVE_MAX_INPUTS`]
/// band whenever `2^n` test vectors do not exceed the `rounds × 64` random
/// vectors the caller was willing to pay for. Otherwise falls back to
/// `rounds` rounds of 64 random vectors (a Monte Carlo check: it can prove
/// inequivalence but only gives statistical evidence of equivalence).
///
/// Callers that need a proof in the 17–24-input band regardless of budget
/// should call [`equiv_exhaustive`] directly.
///
/// # Panics
///
/// Panics if the I/O counts differ.
pub fn equiv(a: &Xag, b: &Xag, seed: u64, rounds: usize) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let n = a.num_inputs();
    let budget = (rounds as u64)
        .saturating_mul(64)
        .max(1 << EXHAUSTIVE_DEFAULT_INPUTS);
    if n <= EXHAUSTIVE_MAX_INPUTS && (1u64 << n) <= budget {
        equiv_exhaustive(a, b)
    } else {
        equiv_random(a, b, seed, rounds)
    }
}

/// Exhaustively compares two networks on all `2^n` assignments.
///
/// # Panics
///
/// Panics if the I/O counts differ or there are more than
/// [`EXHAUSTIVE_MAX_INPUTS`] inputs (the check would need more than `2^24`
/// evaluations).
pub fn equiv_exhaustive(a: &Xag, b: &Xag) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let n = a.num_inputs();
    assert!(
        n <= EXHAUSTIVE_MAX_INPUTS,
        "exhaustive check limited to {EXHAUSTIVE_MAX_INPUTS} inputs"
    );
    // Simulate 64 minterms per word: input i pattern within a block of 64
    // minterms starting at base.
    let total: u64 = 1u64 << n;
    let mut m = 0u64;
    while m < total {
        let words: Vec<u64> = (0..n)
            .map(|i| {
                if i < 6 {
                    // Repeating projection pattern within the 64-minterm block.
                    [
                        0xaaaa_aaaa_aaaa_aaaa,
                        0xcccc_cccc_cccc_cccc,
                        0xf0f0_f0f0_f0f0_f0f0,
                        0xff00_ff00_ff00_ff00,
                        0xffff_0000_ffff_0000,
                        0xffff_ffff_0000_0000,
                    ][i]
                } else if (m >> i) & 1 == 1 {
                    u64::MAX
                } else {
                    0
                }
            })
            .collect();
        let mask = if total - m >= 64 {
            u64::MAX
        } else {
            (1u64 << (total - m)) - 1
        };
        let ra = a.simulate(&words);
        let rb = b.simulate(&words);
        if ra.iter().zip(&rb).any(|(x, y)| (x ^ y) & mask != 0) {
            return false;
        }
        m += 64;
    }
    true
}

/// Compares two networks on `rounds × 64` pseudo-random vectors.
///
/// Deterministic for a fixed `seed` (xorshift64* generator). Returns `false`
/// as soon as a distinguishing vector is found.
///
/// # Panics
///
/// Panics if the I/O counts differ.
pub fn equiv_random(a: &Xag, b: &Xag, seed: u64, rounds: usize) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    for _ in 0..rounds {
        let words: Vec<u64> = (0..a.num_inputs()).map(|_| next()).collect();
        if a.simulate(&words) != b.simulate(&words) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    fn adder_like(cheap: bool) -> Xag {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        let cout = if cheap {
            x.maj(a, b, c)
        } else {
            let ab = x.and(a, b);
            let ac = x.and(a, c);
            let bc = x.and(b, c);
            let t = x.xor(ab, ac);
            x.xor(t, bc)
        };
        let axb = x.xor(a, b);
        let sum = x.xor(axb, c);
        x.output(sum);
        x.output(cout);
        x
    }

    #[test]
    fn equivalent_implementations() {
        let a = adder_like(false);
        let b = adder_like(true);
        assert!(equiv_exhaustive(&a, &b));
        assert!(equiv_random(&a, &b, 7, 16));
        assert!(equiv(&a, &b, 7, 16));
    }

    #[test]
    fn inequivalent_networks_detected() {
        let a = adder_like(false);
        // A network with the carry replaced by OR: differs on input 0b011… no,
        // OR(a,b,c-style) differs from majority exactly on single-one inputs.
        let mut b = Xag::new();
        let x0 = b.input();
        let x1 = b.input();
        let x2 = b.input();
        let t = b.xor(x0, x1);
        let sum = b.xor(t, x2);
        let o1 = b.or(x0, x1);
        let cout = b.or(o1, x2);
        b.output(sum);
        b.output(cout);
        assert!(!equiv_exhaustive(&a, &b));
        assert!(!equiv_random(&a, &b, 1, 8));
    }

    /// Parity chain over `n` inputs, folded in the given direction.
    fn parity(n: usize, reversed: bool) -> Xag {
        let mut x = Xag::new();
        let mut ins: Vec<Signal> = (0..n).map(|_| x.input()).collect();
        if reversed {
            ins.reverse();
        }
        let mut acc = Signal::CONST0;
        for &i in &ins {
            acc = x.xor(acc, i);
        }
        x.output(acc);
        x
    }

    /// `AND` of all `n` inputs vs constant zero: the two differ on exactly
    /// one assignment (all ones), the adversarial case for sampling.
    fn needle(n: usize, with_needle: bool) -> Xag {
        let mut x = Xag::new();
        let ins: Vec<Signal> = (0..n).map(|_| x.input()).collect();
        let mut acc = Signal::CONST1;
        for &i in &ins {
            acc = x.and(acc, i);
        }
        x.output(if with_needle { acc } else { Signal::CONST0 });
        x
    }

    #[test]
    fn exhaustive_supports_the_17_to_24_input_band() {
        for n in [17usize, 20, 24] {
            assert!(
                equiv_exhaustive(&parity(n, false), &parity(n, true)),
                "{n} inputs"
            );
            assert!(
                !equiv_exhaustive(&needle(n, true), &needle(n, false)),
                "{n} inputs"
            );
        }
    }

    #[test]
    fn dispatcher_proves_band_networks_when_the_budget_allows() {
        // 2^17 vectors = 2048 rounds of 64. With that budget the dispatcher
        // must choose the exhaustive proof, which *always* finds the single
        // distinguishing assignment — sampling would miss it with
        // probability ~0.37 per run and some seed would eventually pass.
        for seed in 0..16u64 {
            assert!(
                !equiv(&needle(17, true), &needle(17, false), seed, 2048),
                "seed {seed}"
            );
        }
        // Equivalence in the band is likewise proved, not sampled.
        assert!(equiv(&parity(18, false), &parity(18, true), 3, 1 << 12));
    }

    #[test]
    fn dispatcher_keeps_sampling_when_exhaustive_would_cost_more() {
        // 25 inputs is beyond the exhaustive cap entirely; 64 rounds on a
        // 17-input pair is far below the 2^17 sweep, so both stay random.
        // The needle network demonstrates the (documented) sampling gap:
        // a tiny budget cannot distinguish the single differing minterm.
        assert!(equiv(&parity(25, false), &parity(25, true), 11, 32));
        assert!(
            equiv(&needle(17, true), &needle(17, false), 1, 1),
            "1 round of sampling cannot see the needle — that is the documented trade-off"
        );
    }

    #[test]
    fn wide_networks_use_random_sim() {
        let mut a = Xag::new();
        let ins: Vec<Signal> = (0..40).map(|_| a.input()).collect();
        let mut acc = Signal::CONST0;
        for &i in &ins {
            acc = a.xor(acc, i);
        }
        a.output(acc);
        let mut b = Xag::new();
        let ins2: Vec<Signal> = (0..40).map(|_| b.input()).collect();
        let mut acc2 = Signal::CONST0;
        for &i in ins2.iter().rev() {
            acc2 = b.xor(acc2, i);
        }
        b.output(acc2);
        assert!(equiv(&a, &b, 42, 32));
    }
}
