//! XOR-AND graph (XAG) logic networks.
//!
//! An XAG is a directed acyclic graph whose internal nodes are two-input AND
//! or XOR gates and whose edges may be complemented (the paper's dashed
//! edges). It is the natural representation for cryptography-oriented logic
//! synthesis because XOR and NOT are free in MPC/FHE cost models while AND
//! gates — the *multiplicative complexity* — are the bottleneck.
//!
//! The central type is [`Xag`]:
//!
//! * gates are created through [`Xag::and`] / [`Xag::xor`] / [`Xag::not`],
//!   which constant-fold and structurally hash, so the graph never contains
//!   two gates with the same fanins;
//! * [`Xag::substitute`] replaces a node by an arbitrary signal and
//!   re-hashes/re-normalizes the transitive fanout, which is the primitive
//!   cut rewriting is built on;
//! * [`Xag::simulate`] runs 64 test vectors per word through the network,
//!   and [`equiv`] decides equivalence (exhaustively up to 16 inputs,
//!   by random simulation beyond);
//! * [`XagFragment`] is a small reusable sub-circuit template (the database
//!   entries of the DAC'19 flow) that can be instantiated into a network;
//! * [`bristol`] reads and writes Bristol-fashion circuit files, the
//!   interchange format of the MPC community.
//!
//! # Examples
//!
//! Build the paper's Figure 1 full adder and count its AND gates:
//!
//! ```
//! use xag_network::Xag;
//!
//! let mut xag = Xag::new();
//! let a = xag.input();
//! let b = xag.input();
//! let cin = xag.input();
//! let axb = xag.xor(a, b);
//! let sum = xag.xor(axb, cin);
//! let ab = xag.and(a, b);
//! let ac = xag.and(a, cin);
//! let bc = xag.and(b, cin);
//! let t = xag.xor(ab, ac);
//! let cout = xag.xor(t, bc);
//! xag.output(sum);
//! xag.output(cout);
//! assert_eq!(xag.num_ands(), 3);
//! ```

pub mod bristol;
mod equiv;
mod fragment;
pub mod fuzz;
mod network;
mod signal;
mod verilog;

pub use bristol::{read_bristol, write_bristol, ParseBristolError};
pub use equiv::{
    equiv, equiv_exhaustive, equiv_random, EXHAUSTIVE_DEFAULT_INPUTS, EXHAUSTIVE_MAX_INPUTS,
};
pub use fragment::{FragRef, FragmentGate, XagFragment};
pub use fuzz::{random_xag, FuzzConfig};
pub use network::{ConeScratch, NodeId, NodeKind, TopoScratch, Xag};
pub use signal::Signal;
pub use verilog::{read_verilog, write_verilog, ParseVerilogError};
