use crate::network::NodeId;

/// A (possibly complemented) edge pointing at a network node.
///
/// The low bit stores the complement attribute, the remaining bits the node
/// index. Node 0 is always the constant-zero node, so
/// [`Signal::CONST0`]/[`Signal::CONST1`] are plain values.
///
/// # Examples
///
/// ```
/// use xag_network::Signal;
///
/// let s = Signal::CONST0;
/// assert!(s.is_const());
/// assert_eq!(!s, Signal::CONST1);
/// assert_eq!(!!s, s);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal(u32);

impl Signal {
    /// The constant-zero signal.
    pub const CONST0: Signal = Signal(0);
    /// The constant-one signal.
    pub const CONST1: Signal = Signal(1);

    /// Creates a signal from a node index and complement attribute.
    #[inline]
    pub fn new(node: NodeId, complement: bool) -> Self {
        Signal((node << 1) | complement as u32)
    }

    /// The node this signal points at.
    #[inline]
    pub fn node(self) -> NodeId {
        self.0 >> 1
    }

    /// Whether the edge is complemented.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The non-complemented signal to the same node.
    #[inline]
    pub fn abs(self) -> Signal {
        Signal(self.0 & !1)
    }

    /// True iff the signal is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// Raw encoding, useful as a dense map key.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl core::ops::Not for Signal {
    type Output = Signal;
    #[inline]
    fn not(self) -> Signal {
        Signal(self.0 ^ 1)
    }
}

impl core::ops::BitXor<bool> for Signal {
    type Output = Signal;
    /// XOR with a boolean conditionally complements the signal.
    #[inline]
    fn bitxor(self, rhs: bool) -> Signal {
        Signal(self.0 ^ rhs as u32)
    }
}

impl core::fmt::Debug for Signal {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

impl core::fmt::Display for Signal {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_roundtrip() {
        let s = Signal::new(42, false);
        assert_eq!(s.node(), 42);
        assert!(!s.is_complement());
        assert!((!s).is_complement());
        assert_eq!((!s).abs(), s);
        assert_eq!(s ^ true, !s);
        assert_eq!(s ^ false, s);
    }

    #[test]
    fn constants() {
        assert!(Signal::CONST0.is_const());
        assert!(Signal::CONST1.is_const());
        assert_eq!(!Signal::CONST0, Signal::CONST1);
        assert_eq!(format!("{}", Signal::CONST1), "!n0");
    }
}
