//! Property-based tests for the XAG network: random construction,
//! substitution fuzzing, cleanup and Bristol round-trips.

use proptest::prelude::*;
use xag_network::{equiv_exhaustive, read_bristol, write_bristol, Signal, Xag};

/// A recipe for a random network over `n` inputs: each step picks a gate
/// type and two previously available signals (with complements).
#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    steps: Vec<(bool, usize, bool, usize, bool)>,
    outputs: Vec<(usize, bool)>,
}

fn build(recipe: &Recipe) -> Xag {
    let mut x = Xag::new();
    let mut pool: Vec<Signal> = (0..recipe.inputs).map(|_| x.input()).collect();
    pool.push(Signal::CONST0);
    for &(is_and, a, ca, b, cb) in &recipe.steps {
        let sa = pool[a % pool.len()] ^ ca;
        let sb = pool[b % pool.len()] ^ cb;
        let s = if is_and { x.and(sa, sb) } else { x.xor(sa, sb) };
        pool.push(s);
    }
    for &(o, c) in &recipe.outputs {
        let s = pool[o % pool.len()] ^ c;
        x.output(s);
    }
    x
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (2usize..=8, 1usize..40, 1usize..5).prop_flat_map(|(inputs, gates, outs)| {
        (
            proptest::collection::vec(
                (any::<bool>(), any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>()),
                gates,
            ),
            proptest::collection::vec((any::<usize>(), any::<bool>()), outs),
        )
            .prop_map(move |(steps, outputs)| Recipe {
                inputs,
                steps,
                outputs,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cleanup_preserves_function(recipe in arb_recipe()) {
        let x = build(&recipe);
        let y = x.cleanup();
        prop_assert!(equiv_exhaustive(&x, &y));
        prop_assert_eq!(x.num_ands(), y.num_ands());
        prop_assert_eq!(x.num_xors(), y.num_xors());
    }

    #[test]
    fn bristol_roundtrip(recipe in arb_recipe()) {
        let x = build(&recipe);
        let mut buf = Vec::new();
        write_bristol(&x, &mut buf).expect("write");
        let y = read_bristol(buf.as_slice()).expect("read");
        prop_assert!(equiv_exhaustive(&x, &y));
        // The reader must not create more ANDs than the writer printed.
        prop_assert_eq!(x.num_ands(), y.num_ands());
    }

    #[test]
    fn substitute_equivalent_cone_preserves_function(
        recipe in arb_recipe(),
        pick in any::<usize>(),
    ) {
        // Replace a random gate by a freshly rebuilt equivalent cone
        // (rebuilding through the strash should hit the same nodes or
        // equivalent ones), then check I/O equivalence.
        let mut x = build(&recipe);
        let gates = x.live_gates();
        prop_assume!(!gates.is_empty());
        let target = gates[pick % gates.len()];
        // Rebuild the target's function from its fanins with the same ops:
        // substituting a node by itself-equivalent signal is a no-op or a
        // strash merge; both must preserve the network function.
        let (f0, f1) = x.fanins(target);
        let rebuilt = match x.kind(target) {
            xag_network::NodeKind::And => {
                // a & b  ==  !(!a | !b) == !(!(!!a & !!b))... simply re-AND.
                let t = x.and(f0, f1);
                t
            }
            xag_network::NodeKind::Xor => {
                let t = x.xor(!f0, !f1);
                t
            }
            _ => unreachable!(),
        };
        let reference = x.cleanup();
        if !x.is_in_tfi(target, rebuilt) {
            x.substitute(target, rebuilt);
            prop_assert!(equiv_exhaustive(&reference, &x.cleanup()));
        }
    }

    #[test]
    fn substitute_by_constant_keeps_consistency(
        recipe in arb_recipe(),
        pick in any::<usize>(),
        value in any::<bool>(),
    ) {
        // Replacing any gate by a constant must leave a structurally sound
        // network (no panics, simulation works, counts consistent).
        let mut x = build(&recipe);
        let gates = x.live_gates();
        prop_assume!(!gates.is_empty());
        let target = gates[pick % gates.len()];
        let c = Signal::CONST0 ^ value;
        x.substitute(target, c);
        let y = x.cleanup();
        prop_assert!(equiv_exhaustive(&x, &y));
        prop_assert!(y.num_gates() <= x.num_gates());
    }

    #[test]
    fn simulate_agrees_with_evaluate(recipe in arb_recipe(), assignment in any::<u64>()) {
        let x = build(&recipe);
        let m = assignment & ((1 << x.num_inputs()) - 1);
        let bits = x.evaluate(m);
        let words: Vec<u64> = (0..x.num_inputs())
            .map(|i| if (m >> i) & 1 == 1 { u64::MAX } else { 0 })
            .collect();
        let sim = x.simulate(&words);
        for (o, &w) in sim.iter().enumerate() {
            prop_assert_eq!(bits[o], w & 1 == 1);
        }
    }
}
