//! Randomized property tests for the XAG network: random construction,
//! substitution fuzzing, cleanup, dangling-node removal, and Bristol
//! round-trips. Driven by a fixed-seed deterministic generator.

use mc_rng::Rng;
use xag_network::{equiv_exhaustive, read_bristol, write_bristol, NodeKind, Signal, Xag};

/// A recipe for a random network over `n` inputs: each step picks a gate
/// type and two previously available signals (with complements).
#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    steps: Vec<(bool, usize, bool, usize, bool)>,
    outputs: Vec<(usize, bool)>,
}

fn arb_recipe(rng: &mut Rng) -> Recipe {
    let inputs = rng.gen_range(2..9);
    let gates = rng.gen_range(1..40);
    let outs = rng.gen_range(1..5);
    Recipe {
        inputs,
        steps: (0..gates)
            .map(|_| {
                (
                    rng.gen(),
                    rng.next_u64() as usize,
                    rng.gen(),
                    rng.next_u64() as usize,
                    rng.gen(),
                )
            })
            .collect(),
        outputs: (0..outs)
            .map(|_| (rng.next_u64() as usize, rng.gen()))
            .collect(),
    }
}

fn build(recipe: &Recipe) -> Xag {
    let mut x = Xag::new();
    let mut pool: Vec<Signal> = (0..recipe.inputs).map(|_| x.input()).collect();
    pool.push(Signal::CONST0);
    for &(is_and, a, ca, b, cb) in &recipe.steps {
        let sa = pool[a % pool.len()] ^ ca;
        let sb = pool[b % pool.len()] ^ cb;
        let s = if is_and { x.and(sa, sb) } else { x.xor(sa, sb) };
        pool.push(s);
    }
    for &(o, c) in &recipe.outputs {
        let s = pool[o % pool.len()] ^ c;
        x.output(s);
    }
    x
}

#[test]
fn cleanup_preserves_function() {
    let mut rng = Rng::seed_from_u64(0xA6_0001);
    for case in 0..64 {
        let recipe = arb_recipe(&mut rng);
        let x = build(&recipe);
        let y = x.cleanup();
        assert!(equiv_exhaustive(&x, &y), "case {case}");
        assert_eq!(x.num_ands(), y.num_ands(), "case {case}");
        assert_eq!(x.num_xors(), y.num_xors(), "case {case}");
    }
}

#[test]
fn bristol_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xA6_0002);
    for case in 0..64 {
        let recipe = arb_recipe(&mut rng);
        let x = build(&recipe);
        let mut buf = Vec::new();
        write_bristol(&x, &mut buf).expect("write");
        let y = read_bristol(buf.as_slice()).expect("read");
        assert!(equiv_exhaustive(&x, &y), "case {case}");
        // The reader must not create more ANDs than the writer printed.
        assert_eq!(x.num_ands(), y.num_ands(), "case {case}");
    }
}

#[test]
fn substitute_equivalent_cone_preserves_function() {
    let mut rng = Rng::seed_from_u64(0xA6_0003);
    for case in 0..64 {
        // Replace a random gate by a freshly rebuilt equivalent cone
        // (rebuilding through the strash should hit the same nodes or
        // equivalent ones), then check I/O equivalence.
        let recipe = arb_recipe(&mut rng);
        let mut x = build(&recipe);
        let gates = x.live_gates();
        if gates.is_empty() {
            continue;
        }
        let target = gates[rng.next_u64() as usize % gates.len()];
        // Rebuild the target's function from its fanins with the same ops:
        // substituting a node by an equivalent signal is a no-op or a
        // strash merge; both must preserve the network function.
        let (f0, f1) = x.fanins(target);
        let rebuilt = match x.kind(target) {
            NodeKind::And => x.and(f0, f1),
            NodeKind::Xor => x.xor(!f0, !f1),
            _ => unreachable!(),
        };
        let reference = x.cleanup();
        if !x.is_in_tfi(target, rebuilt) {
            x.substitute(target, rebuilt);
            assert!(equiv_exhaustive(&reference, &x.cleanup()), "case {case}");
        }
    }
}

#[test]
fn substitute_by_constant_keeps_consistency() {
    let mut rng = Rng::seed_from_u64(0xA6_0004);
    for case in 0..64 {
        // Replacing any gate by a constant must leave a structurally sound
        // network (no panics, simulation works, counts consistent).
        let recipe = arb_recipe(&mut rng);
        let mut x = build(&recipe);
        let gates = x.live_gates();
        if gates.is_empty() {
            continue;
        }
        let target = gates[rng.next_u64() as usize % gates.len()];
        let c = Signal::CONST0 ^ rng.gen();
        x.substitute(target, c);
        let y = x.cleanup();
        assert!(equiv_exhaustive(&x, &y), "case {case}");
        assert!(y.num_gates() <= x.num_gates(), "case {case}");
    }
}

#[test]
fn simulate_agrees_with_evaluate() {
    let mut rng = Rng::seed_from_u64(0xA6_0005);
    for case in 0..64 {
        let recipe = arb_recipe(&mut rng);
        let x = build(&recipe);
        let m = rng.next_u64() & ((1 << x.num_inputs()) - 1);
        let bits = x.evaluate(m);
        let words: Vec<u64> = (0..x.num_inputs())
            .map(|i| if (m >> i) & 1 == 1 { u64::MAX } else { 0 })
            .collect();
        let sim = x.simulate(&words);
        for (o, &w) in sim.iter().enumerate() {
            assert_eq!(bits[o], w & 1 == 1, "case {case} output {o}");
        }
    }
}

#[test]
fn remove_dangling_reclaims_unreferenced_cones() {
    let mut rng = Rng::seed_from_u64(0xA6_0006);
    for case in 0..64 {
        let recipe = arb_recipe(&mut rng);
        let mut x = build(&recipe);
        let reference = x.cleanup();
        // Grow a dangling cone on top of live signals without referencing
        // it from any output, then reclaim it from its root.
        let watermark = x.capacity();
        let a = x.input_signal(0);
        let b = x.input_signal(x.num_inputs() - 1);
        let g1 = x.and(a, !b);
        let g2 = x.xor(g1, a);
        let root = x.and(g2, b);
        for id in (watermark..x.capacity()).rev() {
            x.remove_dangling(id as u32);
        }
        for id in watermark..x.capacity() {
            assert!(x.is_dead(id as u32), "case {case}: node {id} survived");
        }
        // Live logic is untouched.
        assert!(equiv_exhaustive(&reference, &x.cleanup()), "case {case}");
        let _ = root;
    }
}

#[test]
fn remove_dangling_respects_referenced_nodes() {
    let mut x = Xag::new();
    let a = x.input();
    let b = x.input();
    let g = x.and(a, b);
    x.output(g);
    // The gate is referenced by an output: removal must be a no-op.
    x.remove_dangling(g.node());
    assert!(!x.is_dead(g.node()));
    // Inputs and constants are never removed.
    x.remove_dangling(a.node());
    assert!(!x.is_dead(a.node()));
}
