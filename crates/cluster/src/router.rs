//! The `mc-cluster` router: one frame-protocol endpoint in front of N
//! `mc-serve` backends.
//!
//! # Drop-in contract
//!
//! Clients speak to the router exactly as they would to a single
//! backend — same frames, same semantics (`mc-client` pointed at the
//! router just works). Backends additionally speak the registration
//! handshake: `register` once, `heartbeat` periodically.
//!
//! # Routing
//!
//! For every `optimize` the router parses the circuit (a malformed
//! upload is refused here and never consumes a backend slot) and
//! computes the **same canonical job key** the backend's semantic cache
//! will compute — `xag_mc::canon::job_key`, hoisted into the core crate
//! precisely so the two tiers agree bit for bit. The key's fingerprint
//! is consistent-hashed onto the backend ring: isomorphic resubmissions
//! land on the backend that already has the answer cached. The affine
//! target is bypassed only when it is down or saturated (then:
//! least-loaded fallback, counted in `affinity_fallbacks`).
//!
//! The key is computed **once, at the router** — backends recompute it
//! for their local cache, but no coordination is needed: canonicalization
//! is deterministic, so agreement is structural, not negotiated.
//!
//! # Failover
//!
//! A dispatch that fails at the transport level (connect refused,
//! connection died mid-job) marks the backend down immediately, and the
//! job is retried on the next backend in ring order — safe because
//! `optimize` is idempotent (same key, same result; at worst a surviving
//! backend recomputes what the dead one never delivered). A backend
//! that answers "shutting down" is treated the same way. Only after
//! `retry_limit` distinct backends failed does the client see an error.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mc_obs::{HistoryWindow, PhaseStat};
use mc_serve::client::Client;
use mc_serve::protocol::{
    read_frame, write_frame, BackendStats, ClusterStatsInfo, FlowTiming, FrameError,
    OptimizeRequest, Request, Response, StatsInfo, StatusInfo, ERR_JOB_DROPPED, ERR_SHUTTING_DOWN,
    MAX_JOB_ROUNDS,
};
use mc_serve::TraceEvent;
use xag_circuits::parse_circuit;
use xag_mc::canon::{fingerprint, job_key};

use crate::health::{health_loop, poll_addr, HealthConfig};
use crate::registry::{Backend, Choice, Registry};
use crate::ring::DEFAULT_REPLICAS;
use crate::slo::{SloMachine, SloState, SloThresholds};
use crate::sync::lock_unpoisoned;

/// How `optimize` jobs are placed onto backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutePolicy {
    /// Cache-affine consistent hashing (the default): the canonical job
    /// key picks the backend, so isomorphic resubmissions hit a warm
    /// cache.
    #[default]
    Affine,
    /// Uniform random placement among up backends — the baseline
    /// `cluster_bench` compares affinity against.
    Random,
}

impl RoutePolicy {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            RoutePolicy::Affine => "affine",
            RoutePolicy::Random => "random",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "affine" => Some(RoutePolicy::Affine),
            "random" => Some(RoutePolicy::Random),
            _ => None,
        }
    }
}

/// Configuration of [`Router::bind`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Virtual points per backend on the consistent-hash ring.
    pub replicas: usize,
    /// In-flight-per-capacity factor past which an affine target is
    /// considered saturated and the job spills to the least-loaded
    /// backend.
    pub saturation: usize,
    /// Age of the last liveness signal past which a backend is marked
    /// down.
    pub heartbeat_timeout: Duration,
    /// Pause between health-check rounds.
    pub health_interval: Duration,
    /// Per-probe bound of a health-check ping.
    pub ping_timeout: Duration,
    /// Consecutive failed pings before a backend is marked down.
    pub miss_threshold: u32,
    /// How long a backend may stay down before it is deregistered
    /// entirely (ephemeral-port restarts would otherwise leak a dead
    /// registry entry per restart).
    pub evict_after: Duration,
    /// Distinct extra backends a failed dispatch is retried on.
    pub retry_limit: usize,
    /// Placement policy.
    pub policy: RoutePolicy,
    /// Metrics-history sampling interval of the router's own counters.
    pub sample_interval: Duration,
    /// Bound of the router's metric-history ring.
    pub history_capacity: usize,
    /// SLO thresholds; when empty no watchdog thread runs and
    /// `cluster_stats` reports no health summary.
    pub slo: SloThresholds,
    /// Pause between SLO evaluation ticks.
    pub slo_eval_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            replicas: DEFAULT_REPLICAS,
            saturation: 2,
            heartbeat_timeout: Duration::from_secs(2),
            health_interval: Duration::from_millis(500),
            ping_timeout: Duration::from_millis(250),
            miss_threshold: 3,
            evict_after: Duration::from_secs(60),
            retry_limit: 3,
            policy: RoutePolicy::Affine,
            sample_interval: Duration::from_secs(1),
            history_capacity: mc_obs::history::DEFAULT_CAPACITY,
            slo: SloThresholds::default(),
            slo_eval_interval: Duration::from_secs(1),
        }
    }
}

struct RouterShared {
    registry: Registry,
    shutdown: AtomicBool,
    started: Instant,
    jobs_routed: AtomicU64,
    jobs_retried: AtomicU64,
    affinity_hits: AtomicU64,
    affinity_fallbacks: AtomicU64,
    /// Idle pooled connections per backend; a warm connection saves the
    /// connect round trip on every affine re-dispatch.
    pool: Mutex<HashMap<u64, Vec<Client>>>,
    /// Deterministic draw source for [`RoutePolicy::Random`].
    rng: Mutex<mc_rng::Rng>,
    policy: RoutePolicy,
    retry_limit: usize,
    stats_poll_timeout: Duration,
    /// The SLO watchdog's current verdict for `cluster_stats`: empty
    /// when no SLO is configured, else `ok` / `warn: …` / `breach: …`.
    health: Mutex<String>,
}

/// Per-backend pooled-connection bound; beyond it connections are
/// dropped rather than parked.
const POOL_PER_BACKEND: usize = 8;

impl RouterShared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn pool_take(&self, id: u64) -> Option<Client> {
        lock_unpoisoned(&self.pool).get_mut(&id).and_then(Vec::pop)
    }

    fn pool_put(&self, id: u64, client: Client) {
        let mut pool = lock_unpoisoned(&self.pool);
        let slot = pool.entry(id).or_default();
        if slot.len() < POOL_PER_BACKEND {
            slot.push(client);
        }
    }

    fn pool_drop(&self, id: u64) {
        lock_unpoisoned(&self.pool).remove(&id);
    }

    fn draw(&self) -> u64 {
        lock_unpoisoned(&self.rng).next_u64()
    }
}

/// The router daemon's entry point; see [`Router::bind`].
pub struct Router;

impl Router {
    /// Binds the listener, spawns the health checker and the accept
    /// loop, and returns a handle to the running router.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bad address, port in use, …).
    pub fn bind(config: RouterConfig) -> std::io::Result<RouterHandle> {
        let addrs: Vec<SocketAddr> = config.addr.to_socket_addrs()?.collect();
        let listener = TcpListener::bind(&addrs[..])?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shared = Arc::new(RouterShared {
            registry: Registry::new(config.replicas, config.saturation),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            jobs_routed: AtomicU64::new(0),
            jobs_retried: AtomicU64::new(0),
            affinity_hits: AtomicU64::new(0),
            affinity_fallbacks: AtomicU64::new(0),
            pool: Mutex::new(HashMap::new()),
            rng: Mutex::new(mc_rng::Rng::seed_from_u64(0x6d63_636c_7573_7465)),
            policy: config.policy,
            retry_limit: config.retry_limit,
            stats_poll_timeout: Duration::from_secs(2),
            health: Mutex::new(if config.slo.is_empty() {
                String::new()
            } else {
                SloState::Ok.as_str().to_string()
            }),
        });

        let health = HealthConfig {
            interval: config.health_interval,
            ping_timeout: config.ping_timeout,
            heartbeat_timeout_ms: config.heartbeat_timeout.as_millis() as u64,
            miss_threshold: config.miss_threshold,
            evict_after_ms: config.evict_after.as_millis() as u64,
        };
        let mut threads = Vec::with_capacity(4);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("mc-cluster-health".to_string())
                    .spawn(move || {
                        // Downed or evicted backends take their pooled
                        // connections with them.
                        let on_down = |id: u64| shared.pool_drop(id);
                        health_loop(&shared.registry, &shared.shutdown, &health, &on_down);
                    })
                    // lint: allow(no-panic-in-request-path): bind-time startup; no client connection exists yet
                    .expect("spawn health thread"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("mc-cluster-listener".to_string())
                    .spawn(move || accept_loop(listener, &shared))
                    // lint: allow(no-panic-in-request-path): bind-time startup; no client connection exists yet
                    .expect("spawn listener thread"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            let interval = config.sample_interval;
            let capacity = config.history_capacity;
            threads.push(
                std::thread::Builder::new()
                    .name("mc-cluster-sampler".to_string())
                    .spawn(move || sampler_loop(&shared, interval, capacity))
                    // lint: allow(no-panic-in-request-path): bind-time startup; no client connection exists yet
                    .expect("spawn sampler thread"),
            );
        }
        if !config.slo.is_empty() {
            let shared = Arc::clone(&shared);
            let thresholds = config.slo;
            let interval = config.slo_eval_interval;
            threads.push(
                std::thread::Builder::new()
                    .name("mc-cluster-slo".to_string())
                    .spawn(move || slo_loop(&shared, &thresholds, interval))
                    // lint: allow(no-panic-in-request-path): bind-time startup; no client connection exists yet
                    .expect("spawn slo thread"),
            );
        }

        Ok(RouterHandle {
            local_addr,
            shared,
            threads,
        })
    }
}

/// A running router: its bound address and the means to stop it.
pub struct RouterHandle {
    local_addr: SocketAddr,
    shared: Arc<RouterShared>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks until the router stops.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Initiates shutdown and waits for the listener and the health
    /// checker to exit. Backends are left running — the router owns
    /// routing, not backend lifecycles.
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        self.join();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<RouterShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("mc-cluster-conn".to_string())
                    .spawn(move || {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_nodelay(true);
                        connection_loop(stream, &shared);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn send(stream: &mut TcpStream, response: &Response) -> bool {
    write_frame(&mut *stream, &response.to_payload()).is_ok()
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<RouterShared>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return,
            Err(FrameError::Oversized(n)) => {
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        message: FrameError::Oversized(n).to_string(),
                    },
                );
                return;
            }
            Err(_) => return,
        };
        let request = match Request::from_payload(&payload) {
            Ok(request) => request,
            Err(message) => {
                if !send(&mut stream, &Response::Error { message }) {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Register(r) => Response::Registered {
                backend_id: shared
                    .registry
                    .register(&r.addr, r.capacity, r.queue_capacity),
            },
            Request::Heartbeat(h) => {
                if shared
                    .registry
                    .heartbeat(h.backend_id, h.queue_depth, h.busy)
                {
                    Response::Pong
                } else {
                    Response::Error {
                        message: format!(
                            "unknown backend id {} (router restarted?): re-register",
                            h.backend_id
                        ),
                    }
                }
            }
            Request::Status => Response::Status(aggregate_status(shared)),
            Request::Stats => Response::Stats(aggregate_stats(shared)),
            Request::ClusterStats => Response::ClusterStats(cluster_stats(shared)),
            Request::Metrics => Response::Metrics {
                text: cluster_metrics(shared),
            },
            Request::MetricsHistory => Response::MetricsHistory {
                at_ms: mc_obs::epoch_us() / 1000,
                windows: cluster_history(shared),
            },
            Request::ProfDump => Response::ProfDump {
                phases: cluster_prof(shared),
            },
            Request::TraceDump { trace_id } => Response::TraceDump {
                events: cluster_trace_dump(shared, trace_id),
            },
            Request::Shutdown => {
                shared.begin_shutdown();
                let _ = send(&mut stream, &Response::ShuttingDown);
                return;
            }
            Request::Optimize(req) => route_optimize(shared, req),
        };
        if !send(&mut stream, &response) {
            return;
        }
    }
}

/// One dispatch attempt's outcome.
enum Forward {
    /// The backend answered; pass it to the client.
    Reply(Response),
    /// The backend is unusable for this job; fail over.
    Retry,
}

fn is_shutdown_error(message: &str) -> bool {
    // Exact matches against the protocol's stable shutdown messages —
    // shared constants, so the serve tier cannot reword them without
    // this check following.
    message == ERR_SHUTTING_DOWN || message == ERR_JOB_DROPPED
}

/// Sends the job to one backend, reusing a pooled connection when
/// available (one reconnect attempt covers stale pool entries).
fn forward(shared: &Arc<RouterShared>, choice: &Choice, req: &OptimizeRequest) -> Forward {
    let request = Request::Optimize(req.clone());
    let mut fresh = false;
    let mut client = match shared.pool_take(choice.id) {
        Some(client) => client,
        None => {
            fresh = true;
            match Client::connect(&choice.addr) {
                Ok(client) => client,
                Err(_) => return Forward::Retry,
            }
        }
    };
    loop {
        match client.request(&request) {
            Ok(Response::Result(r)) => {
                shared.pool_put(choice.id, client);
                return Forward::Reply(Response::Result(r));
            }
            Ok(Response::Error { message }) if is_shutdown_error(&message) => {
                return Forward::Retry;
            }
            Ok(Response::Error { message }) => {
                // A live backend rejected the job for a job-level reason;
                // retrying elsewhere would just repeat it.
                shared.pool_put(choice.id, client);
                return Forward::Reply(Response::Error { message });
            }
            Ok(_) => return Forward::Retry,
            Err(_) if !fresh => {
                // The pooled connection was stale; one fresh connection
                // distinguishes "idle connection aged out" from "backend
                // is gone".
                fresh = true;
                match Client::connect(&choice.addr) {
                    Ok(c) => {
                        client = c;
                        continue;
                    }
                    Err(_) => return Forward::Retry,
                }
            }
            Err(_) => return Forward::Retry,
        }
    }
}

/// Builds a client-facing error response, counting it in
/// `cluster_errors_total` so the history windows and the SLO error rate
/// see every refusal the router produced.
fn router_error(message: String) -> Response {
    mc_obs::registry().counter("cluster_errors_total").inc();
    Response::Error { message }
}

fn route_optimize(shared: &Arc<RouterShared>, mut req: OptimizeRequest) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return router_error("router is shutting down".to_string());
    }
    // The trace is born at the cluster edge: assign an ID unless the
    // client brought one, and forward it in the frame, so router dispatch
    // and backend queue/pass events line up under one trace.
    if req.trace_id == 0 {
        req.trace_id = mc_obs::next_trace_id();
    }
    let _trace = mc_obs::trace_scope(req.trace_id);
    // Parse here: a malformed upload is a protocol error at the edge and
    // never consumes a backend dispatch.
    let xag = match parse_circuit(&req.circuit, req.format) {
        Ok(xag) => xag,
        Err(e) => return router_error(e.to_string()),
    };
    // Clamp exactly like the backend will, so both tiers derive the same
    // canonical key bytes. The flow contributes its *normalized* spec
    // (the typed request was already parse-validated at this edge), so
    // alias/whitespace/`par{}` variants of one flow hash to the same
    // warm backend.
    let max_rounds = req.max_rounds.clamp(1, MAX_JOB_ROUNDS);
    let hash = fingerprint(&job_key(&xag, &req.flow, max_rounds));

    let mut excluded: Vec<u64> = Vec::new();
    for _attempt in 0..=shared.retry_limit {
        let choice = match shared.policy {
            RoutePolicy::Affine => shared.registry.choose(hash, &excluded),
            RoutePolicy::Random => shared
                .registry
                .choose_random(hash, &excluded, shared.draw()),
        };
        let Some(choice) = choice else {
            return router_error("no live backend in the cluster".to_string());
        };
        if choice.affine {
            shared.affinity_hits.fetch_add(1, Ordering::Relaxed);
            mc_obs::registry()
                .counter("cluster_affinity_hits_total")
                .inc();
        } else {
            shared.affinity_fallbacks.fetch_add(1, Ordering::Relaxed);
            mc_obs::registry()
                .counter("cluster_affinity_fallbacks_total")
                .inc();
        }
        shared.registry.begin_dispatch(choice.id);
        let dispatch_start = Instant::now();
        let mut dispatch_span = mc_obs::span("cluster:dispatch");
        dispatch_span.detail(format!(
            "backend={} affine={} attempt={}",
            choice.addr,
            choice.affine,
            excluded.len() + 1
        ));
        let outcome = forward(shared, &choice, &req);
        drop(dispatch_span);
        mc_obs::registry()
            .histogram("cluster_dispatch_us")
            .record(dispatch_start.elapsed().as_micros() as u64);
        shared.registry.end_dispatch(choice.id);
        match outcome {
            Forward::Reply(response) => {
                shared.jobs_routed.fetch_add(1, Ordering::Relaxed);
                mc_obs::registry()
                    .counter("cluster_jobs_routed_total")
                    .inc();
                if matches!(response, Response::Error { .. }) {
                    mc_obs::registry().counter("cluster_errors_total").inc();
                }
                return response;
            }
            Forward::Retry => {
                // First-hand failure: down it now; the health loop will
                // notice recovery later.
                shared.registry.mark_down(choice.id);
                shared.pool_drop(choice.id);
                shared.jobs_retried.fetch_add(1, Ordering::Relaxed);
                let reg = mc_obs::registry();
                reg.counter("cluster_dispatch_retries_total").inc();
                reg.counter(&format!(
                    "cluster_failovers_total{{backend=\"{}\"}}",
                    choice.addr
                ))
                .inc();
                mc_obs::instant(
                    "cluster:failover",
                    format!("backend={} marked down, retrying", choice.addr),
                );
                excluded.push(choice.id);
            }
        }
    }
    router_error(format!(
        "job failed on {} backend(s); no further retry",
        excluded.len()
    ))
}

/// Polls every *up* backend's `stats` concurrently (a wedged backend
/// costs one timeout, not one timeout per backend) and returns each
/// registry row paired with its poll result (`None` for down or
/// unresponsive backends).
fn poll_all_stats(shared: &Arc<RouterShared>) -> Vec<(Backend, Option<StatsInfo>)> {
    let snapshot = shared.registry.snapshot();
    std::thread::scope(|s| {
        let polls: Vec<_> = snapshot
            .iter()
            .map(|b| {
                let addr = b.addr.clone();
                let up = b.up;
                let timeout = shared.stats_poll_timeout;
                s.spawn(move || {
                    if !up {
                        return None;
                    }
                    match poll_addr(&addr, &Request::Stats, timeout) {
                        Some(Response::Stats(stats)) => Some(stats),
                        _ => None,
                    }
                })
            })
            .collect();
        snapshot
            .into_iter()
            .zip(polls)
            // A panicked poll thread degrades to "backend unpolled" instead
            // of taking the connection thread (and its client) down.
            .map(|(b, poll)| (b, poll.join().unwrap_or_default()))
            .collect()
    })
}

/// `status` against a router: heartbeat-carried occupancy summed over up
/// backends — no live polling, so it is always fast.
fn aggregate_status(shared: &Arc<RouterShared>) -> StatusInfo {
    let mut status = StatusInfo {
        queue_depth: 0,
        queue_capacity: 0,
        workers: 0,
        busy: 0,
        // Per-job progress lives on the backends; the router's status
        // stays heartbeat-only so it never blocks on a poll.
        running: Vec::new(),
    };
    for b in shared.registry.snapshot() {
        if b.up {
            status.queue_depth += b.queue_depth;
            status.queue_capacity += b.queue_capacity;
            status.workers += b.capacity;
            status.busy += b.busy;
        }
    }
    status
}

/// `stats` against a router: live-polled backend counters summed, so
/// `mc-client --stats` shows cluster-wide cache behavior unchanged.
fn aggregate_stats(shared: &Arc<RouterShared>) -> StatsInfo {
    let mut total = StatsInfo {
        uptime_secs: shared.started.elapsed().as_secs(),
        jobs_served: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        cache_entries: 0,
        cache_capacity: 0,
        queue_depth: 0,
        flows: Vec::new(),
    };
    let mut flows: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    for (_, polled) in poll_all_stats(shared) {
        let Some(s) = polled else {
            continue;
        };
        total.jobs_served += s.jobs_served;
        total.cache_hits += s.cache_hits;
        total.cache_misses += s.cache_misses;
        total.cache_evictions += s.cache_evictions;
        total.cache_entries += s.cache_entries;
        total.cache_capacity += s.cache_capacity;
        total.queue_depth += s.queue_depth;
        for t in s.flows {
            let slot = flows.entry(t.flow).or_insert((0, 0));
            slot.0 += t.jobs;
            slot.1 += t.total_millis;
        }
    }
    total.flows = flows
        .into_iter()
        .map(|(flow, (jobs, total_millis))| FlowTiming {
            flow,
            jobs,
            total_millis,
        })
        .collect();
    total
}

/// Polls every *up* backend with `request` concurrently and returns the
/// registry rows paired with whatever each backend answered (`None` for
/// down or unresponsive ones). The generic sibling of [`poll_all_stats`]
/// for the observability frames.
fn poll_up_backends(
    shared: &Arc<RouterShared>,
    request: &Request,
) -> Vec<(Backend, Option<Response>)> {
    let snapshot = shared.registry.snapshot();
    std::thread::scope(|s| {
        let polls: Vec<_> = snapshot
            .iter()
            .map(|b| {
                let addr = b.addr.clone();
                let up = b.up;
                let timeout = shared.stats_poll_timeout;
                s.spawn(move || {
                    if !up {
                        return None;
                    }
                    poll_addr(&addr, request, timeout)
                })
            })
            .collect();
        snapshot
            .into_iter()
            .zip(polls)
            // Same degradation as poll_all_stats: a panicked poll thread
            // yields None for that backend only.
            .map(|(b, poll)| (b, poll.join().unwrap_or_default()))
            .collect()
    })
}

/// `metrics` against a router: the router's own registry first, then one
/// section per backend headed by a comment line keying it — cluster-wide
/// scrape in one round trip, no backend left unlabeled.
fn cluster_metrics(shared: &Arc<RouterShared>) -> String {
    let mut text = String::from("# router\n");
    text.push_str(&mc_obs::registry().render());
    for (b, polled) in poll_up_backends(shared, &Request::Metrics) {
        use core::fmt::Write as _;
        let _ = writeln!(text, "# backend id={} addr={} up={}", b.id, b.addr, b.up);
        if let Some(Response::Metrics { text: section }) = polled {
            text.push_str(&section);
        }
    }
    text
}

/// `trace-dump` against a router: the router's own events merged with
/// every live backend's onto one wall-clock timeline (all tiers stamp
/// microseconds since the epoch, so a plain sort aligns them).
fn cluster_trace_dump(shared: &Arc<RouterShared>, trace_id: Option<u64>) -> Vec<TraceEvent> {
    let mut events = mc_obs::trace_dump(trace_id);
    for (_, polled) in poll_up_backends(shared, &Request::TraceDump { trace_id }) {
        if let Some(Response::TraceDump { events: more }) = polled {
            events.extend(more);
        }
    }
    events.sort_by_key(|e| (e.start_us, e.dur_us));
    events
}

/// `metrics-history` against a router: every up backend's windows merged
/// per window length. The merge is *exact* — windows carry raw counter
/// deltas and per-bucket histogram deltas, both of which add — so the
/// cluster window equals what one process observing every backend would
/// have computed. The router's own windows are deliberately left out:
/// every routed job is also a served job on some backend, and merging
/// both tiers would double-count the cluster's throughput.
fn cluster_history(shared: &Arc<RouterShared>) -> Vec<HistoryWindow> {
    let mut merged: Vec<HistoryWindow> = mc_obs::WINDOWS_SECS
        .iter()
        .map(|&w| HistoryWindow::empty(w))
        .collect();
    for (_, polled) in poll_up_backends(shared, &Request::MetricsHistory) {
        if let Some(Response::MetricsHistory { windows, .. }) = polled {
            for w in windows {
                if let Some(slot) = merged.iter_mut().find(|m| m.window_secs == w.window_secs) {
                    slot.merge(&w);
                }
            }
        }
    }
    merged
}

/// `prof-dump` against a router: the router's own phase profile (usually
/// empty — the router runs no passes) merged with every up backend's,
/// summing by path.
fn cluster_prof(shared: &Arc<RouterShared>) -> Vec<PhaseStat> {
    let mut by_path: std::collections::BTreeMap<String, PhaseStat> = mc_obs::prof::snapshot()
        .into_iter()
        .map(|p| (p.path.clone(), p))
        .collect();
    for (_, polled) in poll_up_backends(shared, &Request::ProfDump) {
        if let Some(Response::ProfDump { phases }) = polled {
            for p in phases {
                by_path
                    .entry(p.path.clone())
                    .and_modify(|slot| {
                        slot.count += p.count;
                        slot.total_us += p.total_us;
                        slot.self_us += p.self_us;
                    })
                    .or_insert(p);
            }
        }
    }
    by_path.into_values().collect()
}

/// Sleeps up to `total` in short slices so router threads notice
/// shutdown within ~50 ms regardless of their configured interval.
fn sleep_until_shutdown(shared: &Arc<RouterShared>, total: Duration) {
    let mut remaining = total;
    while !shared.shutdown.load(Ordering::SeqCst) && !remaining.is_zero() {
        let slice = remaining.min(Duration::from_millis(50));
        std::thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
}

/// The router's own history sampler: snapshots the routing counters and
/// dispatch-latency histogram into the process-global ring every
/// `interval`, and keeps the cluster occupancy gauges (queue depth and
/// busy workers summed over up backends, from heartbeats) current. This
/// local history backs the SLO evaluator; the `metrics-history` frame
/// serves the backend merge instead (see [`cluster_history`]).
fn sampler_loop(shared: &Arc<RouterShared>, interval: Duration, capacity: usize) {
    let reg = mc_obs::registry();
    mc_obs::history().set_capacity(capacity);
    let queue_gauge = reg.gauge("cluster_queue_depth");
    let busy_gauge = reg.gauge("cluster_workers_busy");
    let source = mc_obs::HistorySource {
        jobs: reg.counter("cluster_jobs_routed_total"),
        hits: reg.counter("cluster_affinity_hits_total"),
        misses: reg.counter("cluster_affinity_fallbacks_total"),
        retries: reg.counter("cluster_dispatch_retries_total"),
        errors: reg.counter("cluster_errors_total"),
        queue_depth: Arc::clone(&queue_gauge),
        busy: Arc::clone(&busy_gauge),
        latency: reg.histogram("cluster_dispatch_us"),
    };
    while !shared.shutdown.load(Ordering::SeqCst) {
        let (mut queue, mut busy) = (0u64, 0u64);
        for b in shared.registry.snapshot() {
            if b.up {
                queue += b.queue_depth as u64;
                busy += b.busy as u64;
            }
        }
        queue_gauge.set(queue);
        busy_gauge.set(busy);
        mc_obs::history().push(source.sample(mc_obs::epoch_us() / 1000));
        sleep_until_shutdown(shared, interval);
    }
}

/// The SLO watchdog thread: every tick, derives the observed rates from
/// the 10-second windows — p99 dispatch latency and error rate from the
/// router's own history (they measure what *clients* experience,
/// including failover), cache hit-rate from the merged backend windows
/// (the router has no cache) — and feeds the verdict to the hysteresis
/// machine. Transitions move the `slo_state` gauge, count in
/// `slo_transitions_total`, leave an instant trace event, and rewrite
/// the health summary `cluster_stats` reports.
fn slo_loop(shared: &Arc<RouterShared>, thresholds: &SloThresholds, interval: Duration) {
    let reg = mc_obs::registry();
    let state_gauge = reg.gauge("slo_state");
    state_gauge.set(SloState::Ok.severity());
    let mut machine = SloMachine::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        let local = mc_obs::history()
            .standard_windows()
            .into_iter()
            .find(|w| w.window_secs == 10)
            .unwrap_or_else(|| HistoryWindow::empty(10));
        let p99_us = (local.lat_count > 0).then(|| local.p99_us());
        let error_rate = (local.jobs + local.errors > 0).then(|| local.error_rate());
        let hit_rate = if thresholds.hit_rate.is_some() {
            cluster_history(shared)
                .into_iter()
                .find(|w| w.window_secs == 10)
                .filter(|w| w.hits + w.misses > 0)
                .map(|w| w.hit_rate())
        } else {
            None
        };
        let violations = thresholds.violations(p99_us, hit_rate, error_rate);
        let detail = violations.join(", ");
        if let Some((from, to)) = machine.tick(!violations.is_empty()) {
            state_gauge.set(to.severity());
            reg.counter(&format!(
                "slo_transitions_total{{state=\"{}\"}}",
                to.as_str()
            ))
            .inc();
            mc_obs::instant(
                "slo:transition",
                format!("{} -> {}: {}", from.as_str(), to.as_str(), detail),
            );
        }
        let summary = match machine.state() {
            SloState::Ok => SloState::Ok.as_str().to_string(),
            state if detail.is_empty() => format!("{}: recovering", state.as_str()),
            state => format!("{}: {detail}", state.as_str()),
        };
        *lock_unpoisoned(&shared.health) = summary;
        sleep_until_shutdown(shared, interval);
    }
}

fn cluster_stats(shared: &Arc<RouterShared>) -> ClusterStatsInfo {
    let backends = poll_all_stats(shared)
        .into_iter()
        .map(|(b, polled)| {
            // Live cache counters only from live backends; a down backend
            // reports registry state with zeroed poll fields.
            let (jobs_served, cache_hits, cache_misses) = polled
                .map(|s| (s.jobs_served, s.cache_hits, s.cache_misses))
                .unwrap_or_default();
            BackendStats {
                id: b.id,
                addr: b.addr,
                up: b.up,
                capacity: b.capacity,
                in_flight: b.in_flight,
                jobs_routed: b.jobs_routed,
                queue_depth: b.queue_depth,
                busy: b.busy,
                jobs_served,
                cache_hits,
                cache_misses,
            }
        })
        .collect();
    ClusterStatsInfo {
        uptime_secs: shared.started.elapsed().as_secs(),
        jobs_routed: shared.jobs_routed.load(Ordering::Relaxed),
        jobs_retried: shared.jobs_retried.load(Ordering::Relaxed),
        affinity_hits: shared.affinity_hits.load(Ordering::Relaxed),
        affinity_fallbacks: shared.affinity_fallbacks.load(Ordering::Relaxed),
        health: lock_unpoisoned(&shared.health).clone(),
        backends,
    }
}
