//! The cluster router daemon.
//!
//! Usage:
//!
//! ```text
//! mc-cluster [--addr HOST:PORT] [--port-file PATH] [--policy affine|random]
//!            [--replicas N] [--saturation N] [--retries N]
//!            [--heartbeat-timeout-ms N] [--health-interval-ms N]
//!            [--sample-ms N] [--slo SPEC] [--slo-eval-ms N]
//! ```
//!
//! * `--addr` — listen address; port 0 picks an ephemeral port
//!   (default `127.0.0.1:4520`).
//! * `--port-file` — write the bound address to this file once
//!   listening, for scripts that start the router with port 0.
//! * `--policy` — job placement: `affine` (cache-affine consistent
//!   hashing, default) or `random` (the affinity-oblivious baseline).
//! * `--replicas` — virtual points per backend on the hash ring.
//! * `--saturation` — in-flight jobs per capacity unit before an affine
//!   target spills to least-loaded placement.
//! * `--retries` — distinct extra backends a failed dispatch tries.
//! * `--heartbeat-timeout-ms` — liveness-signal age before a backend is
//!   marked down (default 2000).
//! * `--health-interval-ms` — pause between health-check rounds
//!   (default 500).
//! * `--sample-ms` — metrics-history sampling interval of the router's
//!   own counters (default 1000).
//! * `--slo` — watchdog thresholds as comma-separated `key=value` pairs
//!   (`p99_ms=400,hit_rate=0.5,error_rate=0.01`); repeatable, later
//!   flags merge. Without it no watchdog runs and `cluster_stats`
//!   reports no health summary.
//! * `--slo-eval-ms` — pause between SLO evaluation ticks (default
//!   1000).
//!
//! Backends join with `mc-serve --join <this addr>`. The router runs
//! until a client sends `shutdown` (`mc-client <addr> --shutdown`);
//! shutting the router down leaves the backends running.

use std::time::Duration;

use mc_cluster::{RoutePolicy, Router, RouterConfig};

fn usage() -> ! {
    eprintln!(
        "usage: mc-cluster [--addr HOST:PORT] [--port-file PATH] [--policy affine|random] \
         [--replicas N] [--saturation N] [--retries N] [--heartbeat-timeout-ms N] \
         [--health-interval-ms N] [--sample-ms N] [--slo SPEC] [--slo-eval-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = RouterConfig {
        addr: "127.0.0.1:4520".to_string(),
        ..RouterConfig::default()
    };
    let mut port_file: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => config.addr = value(),
            "--port-file" => port_file = Some(value()),
            "--policy" => {
                config.policy = RoutePolicy::from_name(&value()).unwrap_or_else(|| usage())
            }
            "--replicas" => config.replicas = value().parse().unwrap_or_else(|_| usage()),
            "--saturation" => config.saturation = value().parse().unwrap_or_else(|_| usage()),
            "--retries" => config.retry_limit = value().parse().unwrap_or_else(|_| usage()),
            "--heartbeat-timeout-ms" => {
                let ms: u64 = value().parse().unwrap_or_else(|_| usage());
                config.heartbeat_timeout = Duration::from_millis(ms.max(1));
            }
            "--health-interval-ms" => {
                let ms: u64 = value().parse().unwrap_or_else(|_| usage());
                config.health_interval = Duration::from_millis(ms.max(1));
            }
            "--sample-ms" => {
                let ms: u64 = value().parse().unwrap_or_else(|_| usage());
                config.sample_interval = Duration::from_millis(ms.max(1));
            }
            "--slo" => {
                if let Err(e) = config.slo.parse_into(&value()) {
                    eprintln!("mc-cluster: {e}");
                    usage();
                }
            }
            "--slo-eval-ms" => {
                let ms: u64 = value().parse().unwrap_or_else(|_| usage());
                config.slo_eval_interval = Duration::from_millis(ms.max(1));
            }
            _ => usage(),
        }
    }

    let policy = config.policy;
    let slo = config.slo;
    let handle = match Router::bind(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("mc-cluster: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.local_addr();
    println!(
        "mc-cluster routing on {addr} (policy {}); join backends with: mc-serve --join {addr}",
        policy.name()
    );
    if !slo.is_empty() {
        println!("mc-cluster SLO watchdog armed: {slo:?}");
    }
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, addr.to_string()) {
            eprintln!("mc-cluster: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    handle.join();
    println!("mc-cluster: shut down");
}
