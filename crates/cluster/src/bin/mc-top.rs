//! `mc-top` — a live terminal dashboard for a cluster (or a single
//! daemon).
//!
//! Usage:
//!
//! ```text
//! mc-top ADDR [--interval-ms N] [--once] [--json]
//! ```
//!
//! * `ADDR` — a router (`mc-cluster`) or a plain backend (`mc-serve`);
//!   against a backend the per-backend table is simply absent.
//! * `--interval-ms` — refresh interval (default 1000).
//! * `--once` — render one frame and exit instead of refreshing.
//! * `--json` — with `--once`: print the snapshot as one JSON object
//!   (machine-readable; what the CI smoke test asserts against).
//!
//! Every refresh polls four frames — `status`, `cluster_stats`,
//! `metrics_history`, `prof_dump` — plus each up backend's `status` for
//! its running jobs, and renders: the SLO health line, per-backend
//! health/load rows, throughput and hit-rate sparklines fed by the
//! 10-second window, the running jobs with their trace IDs, and the
//! hottest profiler phases by self time. Plain ANSI only: clear-screen,
//! home, and bold — no TUI dependency, per the workspace's offline
//! std-only policy.

use std::collections::VecDeque;
use std::time::Duration;

use mc_obs::{HistoryWindow, JobProgress, PhaseStat};
use mc_serve::json::Json;
use mc_serve::protocol::BackendStats;
use mc_serve::Client;

fn usage() -> ! {
    eprintln!("usage: mc-top ADDR [--interval-ms N] [--once] [--json]");
    std::process::exit(2);
}

/// How many sparkline points the dashboard remembers (one per refresh).
const SPARK_POINTS: usize = 48;

/// One polled frame of everything the dashboard renders.
struct Snapshot {
    at_ms: u64,
    health: String,
    windows: Vec<HistoryWindow>,
    backends: Vec<BackendStats>,
    /// `(backend addr, job)` — addr is empty against a plain backend.
    running: Vec<(String, JobProgress)>,
    phases: Vec<PhaseStat>,
    queue_depth: usize,
    workers: usize,
    busy: usize,
}

fn poll(addr: &str) -> Result<Snapshot, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let status = client.status().map_err(|e| format!("status: {e}"))?;
    let (at_ms, windows) = client
        .metrics_history()
        .map_err(|e| format!("metrics-history: {e}"))?;
    let phases = client.prof_dump().map_err(|e| format!("prof-dump: {e}"))?;
    // A plain backend answers `cluster_stats` with a server error; fall
    // back to single-node mode with the running jobs it already gave us.
    let (health, backends, mut running) = match client.cluster_stats() {
        Ok(stats) => (
            stats.health,
            stats.backends,
            Vec::<(String, JobProgress)>::new(),
        ),
        Err(_) => (
            String::new(),
            Vec::new(),
            status
                .running
                .iter()
                .cloned()
                .map(|j| (String::new(), j))
                .collect(),
        ),
    };
    // Per-job progress lives on the backends, not the router.
    for b in backends.iter().filter(|b| b.up) {
        if let Ok(mut bc) = Client::connect(&b.addr) {
            if let Ok(bs) = bc.status() {
                running.extend(bs.running.into_iter().map(|j| (b.addr.clone(), j)));
            }
        }
    }
    running.sort_by_key(|(_, j)| j.job_id);
    Ok(Snapshot {
        at_ms,
        health,
        windows,
        backends,
        running,
        phases,
        queue_depth: status.queue_depth,
        workers: status.workers,
        busy: status.busy,
    })
}

fn window(snapshot: &Snapshot, secs: u64) -> HistoryWindow {
    snapshot
        .windows
        .iter()
        .find(|w| w.window_secs == secs)
        .cloned()
        .unwrap_or_else(|| HistoryWindow::empty(secs))
}

/// Renders `values` scaled to the eight block glyphs (empty history
/// renders as spaces, an all-zero history as the lowest block).
fn sparkline(values: &VecDeque<f64>) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    let mut out = String::with_capacity(SPARK_POINTS * 3);
    for _ in values.len()..SPARK_POINTS {
        out.push(' ');
    }
    for &v in values {
        let idx = if max > 0.0 {
            (((v / max) * 7.0).round() as usize).min(7)
        } else {
            0
        };
        out.push(GLYPHS[idx]);
    }
    out
}

fn render(snapshot: &Snapshot, jobs_spark: &VecDeque<f64>, hits_spark: &VecDeque<f64>) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    let w10 = window(snapshot, 10);
    let w60 = window(snapshot, 60);
    let w300 = window(snapshot, 300);
    let health = if snapshot.health.is_empty() {
        "-".to_string()
    } else {
        snapshot.health.clone()
    };
    let _ = writeln!(
        out,
        "\x1b[1mmc-top\x1b[0m  health: {health}  workers {}/{} busy  queue {}",
        snapshot.busy, snapshot.workers, snapshot.queue_depth
    );
    let _ = writeln!(
        out,
        "jobs/s   10s {:>8.2}  1m {:>8.2}  5m {:>8.2}   |{}|",
        w10.jobs_per_sec(),
        w60.jobs_per_sec(),
        w300.jobs_per_sec(),
        sparkline(jobs_spark)
    );
    let _ = writeln!(
        out,
        "hit-rate 10s {:>7.1}%  1m {:>7.1}%  5m {:>7.1}%   |{}|",
        w10.hit_rate() * 100.0,
        w60.hit_rate() * 100.0,
        w300.hit_rate() * 100.0,
        sparkline(hits_spark)
    );
    let _ = writeln!(
        out,
        "latency  10s p50 {}µs p99 {}µs   retry-rate {:>5.3}  error-rate {:>5.3}",
        w10.p50_us(),
        w10.p99_us(),
        w10.retry_rate(),
        w10.error_rate()
    );
    if !snapshot.backends.is_empty() {
        let _ = writeln!(
            out,
            "\n\x1b[1m{:>4} {:<22} {:>4} {:>5} {:>6} {:>8} {:>8} {:>9}\x1b[0m",
            "id", "addr", "up", "busy", "queue", "routed", "served", "hit-rate"
        );
        for b in &snapshot.backends {
            let lookups = b.cache_hits + b.cache_misses;
            let hit_rate = if lookups > 0 {
                format!("{:.1}%", b.cache_hits as f64 / lookups as f64 * 100.0)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:>4} {:<22} {:>4} {:>2}/{:<2} {:>6} {:>8} {:>8} {:>9}",
                b.id,
                b.addr,
                if b.up { "up" } else { "DOWN" },
                b.busy,
                b.capacity,
                b.queue_depth,
                b.jobs_routed,
                b.jobs_served,
                hit_rate
            );
        }
    }
    if !snapshot.running.is_empty() {
        let _ = writeln!(
            out,
            "\n\x1b[1m{:>6} {:>18} {:<24} {:<16} {:>5} {:>8}\x1b[0m",
            "job", "trace", "flow", "pass", "round", "elapsed"
        );
        for (addr, j) in &snapshot.running {
            let _ = writeln!(
                out,
                "{:>6} {:>18x} {:<24} {:<16} {:>5} {:>6}ms  {}",
                j.job_id, j.trace_id, j.flow, j.pass, j.round, j.elapsed_ms, addr
            );
        }
    }
    let mut phases = snapshot.phases.clone();
    phases.sort_by_key(|p| std::cmp::Reverse(p.self_us));
    if !phases.is_empty() {
        let _ = writeln!(
            out,
            "\n\x1b[1m{:<44} {:>8} {:>12} {:>12}\x1b[0m",
            "phase", "count", "total", "self"
        );
        for p in phases.iter().take(10) {
            let _ = writeln!(
                out,
                "{:<44} {:>8} {:>10}µs {:>10}µs",
                p.path, p.count, p.total_us, p.self_us
            );
        }
    }
    out
}

fn window_json(w: &HistoryWindow) -> Json {
    Json::Obj(vec![
        ("window_secs".to_string(), Json::Num(w.window_secs as f64)),
        ("span_ms".to_string(), Json::Num(w.span_ms as f64)),
        ("jobs".to_string(), Json::Num(w.jobs as f64)),
        ("jobs_per_sec".to_string(), Json::Num(w.jobs_per_sec())),
        ("hit_rate".to_string(), Json::Num(w.hit_rate())),
        ("retry_rate".to_string(), Json::Num(w.retry_rate())),
        ("error_rate".to_string(), Json::Num(w.error_rate())),
        ("p50_us".to_string(), Json::Num(w.p50_us() as f64)),
        ("p99_us".to_string(), Json::Num(w.p99_us() as f64)),
        ("queue_depth".to_string(), Json::Num(w.queue_depth as f64)),
        ("busy".to_string(), Json::Num(w.busy as f64)),
    ])
}

fn snapshot_json(snapshot: &Snapshot) -> Json {
    Json::Obj(vec![
        ("at_ms".to_string(), Json::Num(snapshot.at_ms as f64)),
        ("health".to_string(), Json::Str(snapshot.health.clone())),
        (
            "queue_depth".to_string(),
            Json::Num(snapshot.queue_depth as f64),
        ),
        ("workers".to_string(), Json::Num(snapshot.workers as f64)),
        ("busy".to_string(), Json::Num(snapshot.busy as f64)),
        (
            "windows".to_string(),
            Json::Arr(snapshot.windows.iter().map(window_json).collect()),
        ),
        (
            "backends".to_string(),
            Json::Arr(
                snapshot
                    .backends
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("id".to_string(), Json::Num(b.id as f64)),
                            ("addr".to_string(), Json::Str(b.addr.clone())),
                            ("up".to_string(), Json::Bool(b.up)),
                            ("capacity".to_string(), Json::Num(b.capacity as f64)),
                            ("busy".to_string(), Json::Num(b.busy as f64)),
                            ("queue_depth".to_string(), Json::Num(b.queue_depth as f64)),
                            ("in_flight".to_string(), Json::Num(b.in_flight as f64)),
                            ("jobs_routed".to_string(), Json::Num(b.jobs_routed as f64)),
                            ("jobs_served".to_string(), Json::Num(b.jobs_served as f64)),
                            ("cache_hits".to_string(), Json::Num(b.cache_hits as f64)),
                            ("cache_misses".to_string(), Json::Num(b.cache_misses as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "running".to_string(),
            Json::Arr(
                snapshot
                    .running
                    .iter()
                    .map(|(addr, j)| {
                        Json::Obj(vec![
                            ("job_id".to_string(), Json::Num(j.job_id as f64)),
                            ("trace_id".to_string(), Json::Num(j.trace_id as f64)),
                            ("flow".to_string(), Json::Str(j.flow.clone())),
                            ("pass".to_string(), Json::Str(j.pass.clone())),
                            ("round".to_string(), Json::Num(j.round as f64)),
                            ("elapsed_ms".to_string(), Json::Num(j.elapsed_ms as f64)),
                            ("backend".to_string(), Json::Str(addr.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "phases".to_string(),
            Json::Arr(
                snapshot
                    .phases
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("path".to_string(), Json::Str(p.path.clone())),
                            ("count".to_string(), Json::Num(p.count as f64)),
                            ("total_us".to_string(), Json::Num(p.total_us as f64)),
                            ("self_us".to_string(), Json::Num(p.self_us as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<String> = None;
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--interval-ms" => {
                let ms: u64 = value().parse().unwrap_or_else(|_| usage());
                interval = Duration::from_millis(ms.max(50));
            }
            "--once" => once = true,
            "--json" => json = true,
            a if a.starts_with("--") => usage(),
            a => {
                if addr.replace(a.to_string()).is_some() {
                    usage();
                }
            }
        }
    }
    let Some(addr) = addr else { usage() };
    if json && !once {
        eprintln!("mc-top: --json requires --once (one machine-readable snapshot)");
        usage();
    }

    let mut jobs_spark: VecDeque<f64> = VecDeque::with_capacity(SPARK_POINTS);
    let mut hits_spark: VecDeque<f64> = VecDeque::with_capacity(SPARK_POINTS);
    loop {
        let snapshot = match poll(&addr) {
            Ok(snapshot) => snapshot,
            Err(e) => {
                eprintln!("mc-top: {e}");
                std::process::exit(1);
            }
        };
        let w10 = window(&snapshot, 10);
        if jobs_spark.len() == SPARK_POINTS {
            jobs_spark.pop_front();
            hits_spark.pop_front();
        }
        jobs_spark.push_back(w10.jobs_per_sec());
        hits_spark.push_back(w10.hit_rate());

        if json {
            println!("{}", snapshot_json(&snapshot).encode());
            return;
        }
        if once {
            print!("{}", render(&snapshot, &jobs_spark, &hits_spark));
            return;
        }
        // Clear, home, render — plain ANSI refresh.
        print!(
            "\x1b[2J\x1b[H{}",
            render(&snapshot, &jobs_spark, &hits_spark)
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(interval);
    }
}
