//! The SLO watchdog: thresholds, evaluation, and the hysteresis state
//! machine behind the cluster's `health` summary.
//!
//! An operator hands the router `--slo p99_ms=400,hit_rate=0.5,
//! error_rate=0.01`; the evaluator thread checks the configured
//! thresholds against the 10-second metric-history window every tick and
//! feeds the verdict to an [`SloMachine`]. The machine debounces:
//! `ok → warn` on the first bad tick (operators want the early signal),
//! but `warn → breach` only after [`BREACH_AFTER`] *consecutive* bad
//! ticks, and each recovery step (`breach → warn`, `warn → ok`) only
//! after [`RECOVER_AFTER`] consecutive good ticks — so a single slow
//! job cannot flap the cluster between breach and ok.
//!
//! A window with no traffic is *good*: an idle cluster meets its SLOs.

/// Consecutive bad ticks in `warn` before escalating to `breach`.
pub const BREACH_AFTER: u32 = 3;

/// Consecutive good ticks before each one-step recovery
/// (`breach → warn`, `warn → ok`).
pub const RECOVER_AFTER: u32 = 3;

/// Operator-configured service-level thresholds. Unset fields are not
/// checked.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SloThresholds {
    /// Dispatch latency p99 must stay at or under this many milliseconds.
    pub p99_ms: Option<u64>,
    /// Cluster cache hit-rate must stay at or above this fraction (0..=1).
    pub hit_rate: Option<f64>,
    /// Error rate (errors / (jobs + errors)) must stay at or under this
    /// fraction (0..=1).
    pub error_rate: Option<f64>,
}

impl SloThresholds {
    /// Whether any threshold is configured.
    pub fn is_empty(&self) -> bool {
        self.p99_ms.is_none() && self.hit_rate.is_none() && self.error_rate.is_none()
    }

    /// Parses `key=value` pairs separated by commas into `self`
    /// (repeated `--slo` flags merge; later keys win). Known keys:
    /// `p99_ms`, `hit_rate`, `error_rate`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending pair.
    pub fn parse_into(&mut self, spec: &str) -> Result<(), String> {
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("slo: expected key=value, got {pair:?}"))?;
            match key.trim() {
                "p99_ms" => {
                    self.p99_ms = Some(
                        value
                            .trim()
                            .parse()
                            .map_err(|_| format!("slo: bad p99_ms value {value:?}"))?,
                    );
                }
                "hit_rate" => {
                    self.hit_rate = Some(parse_fraction("hit_rate", value)?);
                }
                "error_rate" => {
                    self.error_rate = Some(parse_fraction("error_rate", value)?);
                }
                other => return Err(format!("slo: unknown threshold {other:?}")),
            }
        }
        Ok(())
    }

    /// Checks observed windowed rates against the thresholds and returns
    /// the violations, formatted `metric observed>limit` (or `<` for
    /// floors). `None` observations mean "no traffic in the window" and
    /// never violate.
    pub fn violations(
        &self,
        p99_us: Option<u64>,
        hit_rate: Option<f64>,
        error_rate: Option<f64>,
    ) -> Vec<String> {
        let mut out = Vec::new();
        if let (Some(limit), Some(p99_us)) = (self.p99_ms, p99_us) {
            let observed_ms = p99_us.div_ceil(1000);
            if observed_ms > limit {
                out.push(format!("p99_ms {observed_ms}>{limit}"));
            }
        }
        if let (Some(floor), Some(observed)) = (self.hit_rate, hit_rate) {
            if observed < floor {
                out.push(format!("hit_rate {observed:.3}<{floor:.3}"));
            }
        }
        if let (Some(limit), Some(observed)) = (self.error_rate, error_rate) {
            if observed > limit {
                out.push(format!("error_rate {observed:.3}>{limit:.3}"));
            }
        }
        out
    }
}

fn parse_fraction(key: &str, value: &str) -> Result<f64, String> {
    let parsed: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("slo: bad {key} value {value:?}"))?;
    if !(0.0..=1.0).contains(&parsed) {
        return Err(format!("slo: {key} must be in 0..=1, got {value:?}"));
    }
    Ok(parsed)
}

/// The watchdog's verdict on the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloState {
    /// All thresholds met.
    Ok,
    /// At least one recent bad tick; not yet sustained.
    Warn,
    /// Sustained violation.
    Breach,
}

impl SloState {
    /// Stable lowercase name (metric labels, health strings).
    pub fn as_str(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warn => "warn",
            SloState::Breach => "breach",
        }
    }

    /// Numeric severity for the `slo_state` gauge: ok=0, warn=1,
    /// breach=2.
    pub fn severity(self) -> u64 {
        match self {
            SloState::Ok => 0,
            SloState::Warn => 1,
            SloState::Breach => 2,
        }
    }
}

/// The debouncing state machine. Feed it one verdict per evaluation tick
/// with [`SloMachine::tick`]; it reports the transition when one fires.
#[derive(Debug)]
pub struct SloMachine {
    state: SloState,
    bad_streak: u32,
    good_streak: u32,
}

impl Default for SloMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl SloMachine {
    /// Starts in `ok` with clean streaks.
    pub fn new() -> Self {
        Self {
            state: SloState::Ok,
            bad_streak: 0,
            good_streak: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> SloState {
        self.state
    }

    /// Records one evaluation tick (`bad` = at least one violation) and
    /// returns `Some((from, to))` when the state changes. Streaks reset
    /// on every transition, so each recovery step needs its own
    /// [`RECOVER_AFTER`] consecutive good ticks.
    pub fn tick(&mut self, bad: bool) -> Option<(SloState, SloState)> {
        if bad {
            self.bad_streak += 1;
            self.good_streak = 0;
        } else {
            self.good_streak += 1;
            self.bad_streak = 0;
        }
        let next = match self.state {
            SloState::Ok if bad => SloState::Warn,
            SloState::Warn if self.bad_streak >= BREACH_AFTER => SloState::Breach,
            SloState::Warn if self.good_streak >= RECOVER_AFTER => SloState::Ok,
            SloState::Breach if self.good_streak >= RECOVER_AFTER => SloState::Warn,
            state => state,
        };
        if next == self.state {
            return None;
        }
        let from = self.state;
        self.state = next;
        self.bad_streak = 0;
        self.good_streak = 0;
        Some((from, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_merges_and_validates() {
        let mut t = SloThresholds::default();
        t.parse_into("p99_ms=400,hit_rate=0.5").expect("parse");
        t.parse_into("error_rate=0.01").expect("merge");
        assert_eq!(t.p99_ms, Some(400));
        assert_eq!(t.hit_rate, Some(0.5));
        assert_eq!(t.error_rate, Some(0.01));
        assert!(t.parse_into("p99_ms=abc").is_err());
        assert!(t.parse_into("hit_rate=1.5").is_err());
        assert!(t.parse_into("nope=1").is_err());
        assert!(t.parse_into("p99_ms").is_err());
        assert!(SloThresholds::default().is_empty());
    }

    #[test]
    fn violations_respect_direction_and_idle_windows() {
        let mut t = SloThresholds::default();
        t.parse_into("p99_ms=10,hit_rate=0.5,error_rate=0.1")
            .expect("parse");
        // All good.
        assert!(t.violations(Some(9_000), Some(0.9), Some(0.0)).is_empty());
        // All bad; messages carry observed>limit.
        let v = t.violations(Some(14_000), Some(0.2), Some(0.5));
        assert_eq!(v.len(), 3);
        assert!(v[0].contains("p99_ms 14>10"), "{v:?}");
        assert!(v[1].contains("hit_rate"), "{v:?}");
        assert!(v[2].contains("error_rate"), "{v:?}");
        // Idle window: nothing observed, nothing violated.
        assert!(t.violations(None, None, None).is_empty());
    }

    #[test]
    fn machine_warns_immediately_and_breaches_after_sustained_bad() {
        let mut m = SloMachine::new();
        assert_eq!(m.tick(true), Some((SloState::Ok, SloState::Warn)));
        // Two more bad ticks are not yet a breach...
        assert_eq!(m.tick(true), None);
        assert_eq!(m.tick(true), None);
        // ...the third consecutive bad tick in warn is.
        assert_eq!(m.tick(true), Some((SloState::Warn, SloState::Breach)));
        assert_eq!(m.state(), SloState::Breach);
    }

    #[test]
    fn machine_recovers_one_step_per_good_streak() {
        let mut m = SloMachine::new();
        m.tick(true);
        m.tick(true);
        m.tick(true);
        m.tick(true);
        assert_eq!(m.state(), SloState::Breach);
        assert_eq!(m.tick(false), None);
        assert_eq!(m.tick(false), None);
        assert_eq!(m.tick(false), Some((SloState::Breach, SloState::Warn)));
        // The streak reset on the transition: three *more* good ticks to ok.
        assert_eq!(m.tick(false), None);
        assert_eq!(m.tick(false), None);
        assert_eq!(m.tick(false), Some((SloState::Warn, SloState::Ok)));
    }

    #[test]
    fn machine_flap_resets_recovery_progress() {
        let mut m = SloMachine::new();
        m.tick(true); // ok -> warn
        m.tick(false);
        m.tick(false);
        m.tick(true); // bad tick wipes the good streak
        assert_eq!(m.state(), SloState::Warn);
        m.tick(false);
        m.tick(false);
        assert_eq!(m.tick(false), Some((SloState::Warn, SloState::Ok)));
    }
}
