//! `mc-cluster` — a multi-node job router over `mc-serve` backends.
//!
//! One `mc-serve` process caps out at one machine's cores; this crate
//! multiplies it horizontally while *preserving cache locality*. The
//! router sits in front of N backends, speaks the existing frame
//! protocol to clients unchanged (`mc-client` pointed at the router just
//! works), and adds a backend-side membership handshake: backends
//! started with `--join <router>` register their address and capacity,
//! then heartbeat; the router health-checks them, marks them down after
//! missed heartbeats or failed pings, and transparently retries failed
//! dispatches on a surviving backend.
//!
//! Scheduling is **cache-affine**: the router computes the same
//! canonical structural job key as the PR 3 semantic cache
//! (`xag_mc::canon`, hoisted into the core crate so both tiers agree bit
//! for bit) and consistent-hashes its fingerprint onto the backend ring
//! — isomorphic resubmissions land on the backend whose cache is warm.
//! Saturated or down targets fall back to least-loaded placement, and a
//! `cluster_stats` endpoint reports the affinity hit rate plus
//! per-backend queue depth, cache counters, and routed-job totals.
//!
//! Everything is `std`-only (no tokio, no serde), consistent with the
//! workspace's offline no-external-deps policy.
//!
//! The layers:
//!
//! * [`ring`] — the consistent-hash ring (virtual points, stable under
//!   membership change);
//! * [`registry`] — membership, the heartbeat/ping health state
//!   machine, load tracking, and backend selection;
//! * [`health`] — the router-initiated probe loop;
//! * [`router`] — listener, connection handling, dispatch with
//!   failover, and stats aggregation; the `mc-cluster` binary wraps it.
//!
//! # Examples
//!
//! Boot a router and two joined backends on ephemeral ports, then
//! submit through the router:
//!
//! ```
//! use mc_cluster::{Router, RouterConfig};
//! use mc_serve::{Client, OptimizeRequest, ServeConfig, Server};
//! use xag_network::{write_bristol, Xag};
//!
//! let router = Router::bind(RouterConfig::default()).unwrap();
//! let join = Some(router.local_addr().to_string());
//! let b1 = Server::bind(ServeConfig { join: join.clone(), ..ServeConfig::default() }).unwrap();
//! let b2 = Server::bind(ServeConfig { join, ..ServeConfig::default() }).unwrap();
//!
//! // Wait until both backends registered.
//! let mut client = Client::connect(router.local_addr()).unwrap();
//! for _ in 0..200 {
//!     if client.cluster_stats().unwrap().backends.iter().filter(|b| b.up).count() == 2 {
//!         break;
//!     }
//!     std::thread::sleep(std::time::Duration::from_millis(10));
//! }
//!
//! let mut xag = Xag::new();
//! let (a, b) = (xag.input(), xag.input());
//! let g = xag.and(a, b);
//! xag.output(g);
//! let mut text = Vec::new();
//! write_bristol(&xag, &mut text).unwrap();
//! let result = client
//!     .optimize(OptimizeRequest {
//!         circuit: String::from_utf8(text).unwrap(),
//!         ..OptimizeRequest::default()
//!     })
//!     .unwrap();
//! assert_eq!(result.ands_after, 1);
//!
//! b1.shutdown();
//! b2.shutdown();
//! router.shutdown();
//! ```

pub mod health;
pub mod registry;
pub mod ring;
pub mod router;
pub mod slo;
pub(crate) mod sync;

pub use health::{ping_addr, HealthConfig};
pub use registry::{Backend, Choice, Registry};
pub use ring::{HashRing, DEFAULT_REPLICAS};
pub use router::{RoutePolicy, Router, RouterConfig, RouterHandle};
pub use slo::{SloMachine, SloState, SloThresholds};
