//! Poison-tolerant lock acquisition for the routing path.
//!
//! Mirrors `mc-serve`'s helper: the router's locks (connection pool,
//! RNG, health summary, registry state) guard state that stays
//! structurally valid at every possible unwind point, so when a thread
//! panics while holding one, the right response is to keep routing with
//! the state as-is rather than cascade the panic into every connection
//! thread that touches the lock next. The `no-panic-in-request-path`
//! lint rule keeps bare `.lock().expect(…)` from creeping back in.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
