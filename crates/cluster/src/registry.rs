//! The backend registry: membership, health state, and load-aware
//! backend selection.
//!
//! One [`Registry`] owns everything the router knows about its backends:
//! the id ↔ address map, announced capacity, the health state machine,
//! live load (in-flight dispatches, last-heartbeat queue depth), and the
//! consistent-hash [`HashRing`](crate::ring::HashRing) the *up* backends
//! populate.
//!
//! # Health state machine
//!
//! A backend is **up** from registration. Three things feed the state:
//!
//! * **Heartbeats** (backend → router) refresh `last_seen` and carry
//!   load; a backend whose heartbeats stop is marked down once
//!   `last_seen` ages past the router's heartbeat timeout (the sweep).
//! * **Health-check pings** (router → backend) refresh `last_seen` on
//!   success; consecutive failures past the miss threshold mark the
//!   backend down. A successful ping or heartbeat (or a re-register)
//!   brings a down backend back up.
//! * **Dispatch failures** mark the backend down immediately — the
//!   router observed a broken connection first-hand, and waiting for the
//!   health loop would route more jobs into the hole.
//!
//! Down backends leave the ring (so affine targets fail over to the ring
//! successor) but stay registered: recovery re-inserts them and the
//! consistent hash hands their old keys straight back.

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::time::Instant;

use crate::ring::HashRing;

/// One registered backend, as reported by [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub struct Backend {
    /// Router-assigned id (stable per address).
    pub id: u64,
    /// Address jobs are forwarded to.
    pub addr: String,
    /// Announced worker capacity.
    pub capacity: usize,
    /// Announced job-queue bound.
    pub queue_capacity: usize,
    /// Health state.
    pub up: bool,
    /// Consecutive failed health checks since the last success.
    pub missed: u32,
    /// Last registration, heartbeat, or successful ping.
    pub last_seen: Instant,
    /// Router dispatches currently outstanding.
    pub in_flight: usize,
    /// Lifetime dispatches routed to this backend.
    pub jobs_routed: u64,
    /// Queue depth from the last heartbeat.
    pub queue_depth: usize,
    /// Busy workers from the last heartbeat.
    pub busy: usize,
}

/// A routing decision from [`Registry::choose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Choice {
    /// Chosen backend id.
    pub id: u64,
    /// Its address.
    pub addr: String,
    /// True iff the choice is the key's ring-affine target (counts
    /// toward the affinity hit rate).
    pub affine: bool,
}

struct State {
    backends: BTreeMap<u64, Backend>,
    by_addr: HashMap<String, u64>,
    ring: HashRing,
    next_id: u64,
}

/// Thread-safe backend registry. See the [module docs](self).
pub struct Registry {
    state: Mutex<State>,
    replicas: usize,
    /// A backend is *saturated* once `in_flight >= capacity * saturation`
    /// — its workers are all busy and its queue is at least as long as
    /// the pool — and affine placement falls back to least-loaded.
    saturation: usize,
}

impl Registry {
    /// Creates an empty registry; `replicas` is the virtual-point count
    /// per backend, `saturation` the in-flight-per-capacity factor past
    /// which affinity yields to load (min 1).
    pub fn new(replicas: usize, saturation: usize) -> Self {
        Self {
            state: Mutex::new(State {
                backends: BTreeMap::new(),
                by_addr: HashMap::new(),
                ring: HashRing::new(),
                next_id: 1,
            }),
            replicas: replicas.max(1),
            saturation: saturation.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        crate::sync::lock_unpoisoned(&self.state)
    }

    /// Registers (or re-registers) the backend at `addr`; returns its id.
    /// Re-registration refreshes capacity, clears the missed count, and
    /// marks the backend up.
    pub fn register(&self, addr: &str, capacity: usize, queue_capacity: usize) -> u64 {
        let mut s = self.lock();
        let id = match s.by_addr.get(addr) {
            Some(&id) => id,
            None => {
                let id = s.next_id;
                s.next_id += 1;
                s.by_addr.insert(addr.to_string(), id);
                s.backends.insert(
                    id,
                    Backend {
                        id,
                        addr: addr.to_string(),
                        capacity: capacity.max(1),
                        queue_capacity,
                        up: false, // marked up just below
                        missed: 0,
                        last_seen: Instant::now(),
                        in_flight: 0,
                        jobs_routed: 0,
                        queue_depth: 0,
                        busy: 0,
                    },
                );
                id
            }
        };
        // lint: allow(no-panic-in-request-path): id was just looked up or inserted under this same lock
        let b = s.backends.get_mut(&id).expect("registered above");
        b.capacity = capacity.max(1);
        b.queue_capacity = queue_capacity;
        b.missed = 0;
        b.last_seen = Instant::now();
        if !b.up {
            b.up = true;
            s.ring.insert(id, self.replicas);
        }
        id
    }

    /// Records a heartbeat. Returns false for an unknown id (the router
    /// restarted; the backend should re-register).
    pub fn heartbeat(&self, id: u64, queue_depth: usize, busy: usize) -> bool {
        let mut s = self.lock();
        let Some(b) = s.backends.get_mut(&id) else {
            return false;
        };
        b.queue_depth = queue_depth;
        b.busy = busy;
        b.missed = 0;
        b.last_seen = Instant::now();
        if !b.up {
            b.up = true;
            s.ring.insert(id, self.replicas);
        }
        true
    }

    /// Records a successful health-check ping (counts as liveness).
    pub fn note_ping_ok(&self, id: u64) {
        let mut s = self.lock();
        if let Some(b) = s.backends.get_mut(&id) {
            b.missed = 0;
            b.last_seen = Instant::now();
            if !b.up {
                b.up = true;
                s.ring.insert(id, self.replicas);
            }
        }
    }

    /// Records a failed health-check ping; marks the backend down once
    /// `threshold` consecutive checks failed. Returns true iff this call
    /// transitioned the backend to down.
    pub fn note_ping_failed(&self, id: u64, threshold: u32) -> bool {
        let mut s = self.lock();
        let Some(b) = s.backends.get_mut(&id) else {
            return false;
        };
        b.missed = b.missed.saturating_add(1);
        if b.up && b.missed >= threshold.max(1) {
            b.up = false;
            s.ring.remove(id);
            return true;
        }
        false
    }

    /// Marks a backend down immediately (a dispatch to it failed).
    pub fn mark_down(&self, id: u64) {
        let mut s = self.lock();
        if let Some(b) = s.backends.get_mut(&id) {
            if b.up {
                b.up = false;
                s.ring.remove(id);
            }
        }
    }

    /// Marks every up backend whose `last_seen` is older than
    /// `timeout_ms` milliseconds down; returns the newly-down ids.
    pub fn sweep_stale(&self, timeout_ms: u64) -> Vec<u64> {
        let mut s = self.lock();
        let stale: Vec<u64> = s
            .backends
            .values()
            .filter(|b| b.up && b.last_seen.elapsed().as_millis() as u64 > timeout_ms)
            .map(|b| b.id)
            .collect();
        for &id in &stale {
            if let Some(b) = s.backends.get_mut(&id) {
                b.up = false;
            }
            s.ring.remove(id);
        }
        stale
    }

    /// Deregisters every *down* backend whose `last_seen` is older than
    /// `evict_after_ms` milliseconds; returns the evicted ids. Without
    /// this, ephemeral-port backends leak a dead registry entry (and a
    /// health probe per round, forever) on every restart — a restarted
    /// backend re-registers under a fresh address, so nothing references
    /// the old entry again.
    pub fn evict_dead(&self, evict_after_ms: u64) -> Vec<u64> {
        let mut s = self.lock();
        let dead: Vec<(u64, String)> = s
            .backends
            .values()
            .filter(|b| !b.up && b.last_seen.elapsed().as_millis() as u64 > evict_after_ms)
            .map(|b| (b.id, b.addr.clone()))
            .collect();
        for (id, addr) in &dead {
            s.backends.remove(id);
            s.by_addr.remove(addr);
            // Down backends are already off the ring; this is belt and
            // braces in case eviction policy ever changes.
            s.ring.remove(*id);
        }
        dead.into_iter().map(|(id, _)| id).collect()
    }

    /// Accounts a dispatch start (in-flight and lifetime counters).
    pub fn begin_dispatch(&self, id: u64) {
        let mut s = self.lock();
        if let Some(b) = s.backends.get_mut(&id) {
            b.in_flight += 1;
            b.jobs_routed += 1;
        }
    }

    /// Accounts a dispatch end (success or failure).
    pub fn end_dispatch(&self, id: u64) {
        let mut s = self.lock();
        if let Some(b) = s.backends.get_mut(&id) {
            b.in_flight = b.in_flight.saturating_sub(1);
        }
    }

    /// Cache-affine selection: the first up, non-excluded, non-saturated
    /// backend in the key's ring preference order (`affine` iff it is
    /// the ring primary); when every preferred backend is saturated, the
    /// least-loaded up backend. `None` when no up backend remains.
    pub fn choose(&self, hash: u64, exclude: &[u64]) -> Option<Choice> {
        let s = self.lock();
        for (rank, id) in s.ring.preference(hash).into_iter().enumerate() {
            if exclude.contains(&id) {
                continue;
            }
            let Some(b) = s.backends.get(&id) else {
                continue; // ring can briefly lag a backend removal
            };
            if !b.up {
                continue;
            }
            if b.in_flight < b.capacity * self.saturation {
                return Some(Choice {
                    id,
                    addr: b.addr.clone(),
                    affine: rank == 0,
                });
            }
        }
        // Everything preferred is saturated (or excluded): spill to the
        // least-loaded up backend so overload degrades into load
        // balancing instead of queueing behind one hot backend.
        s.backends
            .values()
            .filter(|b| b.up && !exclude.contains(&b.id))
            .min_by_key(|b| (b.in_flight, b.id))
            .map(|b| Choice {
                id: b.id,
                addr: b.addr.clone(),
                affine: false,
            })
    }

    /// Affinity-oblivious selection among up, non-excluded backends —
    /// the `random` routing policy (`pick` is a caller-supplied draw).
    /// Affinity is still *scored* against the ring so the two policies'
    /// hit rates are comparable.
    pub fn choose_random(&self, hash: u64, exclude: &[u64], pick: u64) -> Option<Choice> {
        let s = self.lock();
        let up: Vec<&Backend> = s
            .backends
            .values()
            .filter(|b| b.up && !exclude.contains(&b.id))
            .collect();
        if up.is_empty() {
            return None;
        }
        // lint: allow(no-panic-in-request-path): index is modulo the non-empty vec length
        let b = up[(pick % up.len() as u64) as usize];
        Some(Choice {
            id: b.id,
            addr: b.addr.clone(),
            affine: s.ring.primary(hash) == Some(b.id),
        })
    }

    /// All registered backends, id order.
    pub fn snapshot(&self) -> Vec<Backend> {
        self.lock().backends.values().cloned().collect()
    }

    /// Registered backends currently up.
    pub fn up_count(&self) -> usize {
        self.lock().backends.values().filter(|b| b.up).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::DEFAULT_REPLICAS;

    fn registry() -> Registry {
        Registry::new(DEFAULT_REPLICAS, 2)
    }

    #[test]
    fn registration_is_stable_per_address() {
        let r = registry();
        let a = r.register("127.0.0.1:1000", 4, 64);
        let b = r.register("127.0.0.1:2000", 4, 64);
        assert_ne!(a, b);
        assert_eq!(r.register("127.0.0.1:1000", 8, 64), a, "same addr, same id");
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].capacity, 8, "re-register refreshes capacity");
        assert_eq!(r.up_count(), 2);
    }

    #[test]
    fn missed_pings_mark_down_and_recovery_marks_up() {
        let r = registry();
        let id = r.register("127.0.0.1:1000", 2, 64);
        assert!(!r.note_ping_failed(id, 3));
        assert!(!r.note_ping_failed(id, 3));
        assert!(
            r.note_ping_failed(id, 3),
            "third miss crosses the threshold"
        );
        assert_eq!(r.up_count(), 0);
        assert_eq!(r.choose(99, &[]), None, "no up backend to choose");
        // A heartbeat brings it back.
        assert!(r.heartbeat(id, 1, 1));
        assert_eq!(r.up_count(), 1);
        assert!(r.choose(99, &[]).is_some());
        // Unknown ids are rejected so stale backends re-register.
        assert!(!r.heartbeat(id + 100, 0, 0));
    }

    #[test]
    fn sweep_marks_stale_backends_down() {
        let r = registry();
        let id = r.register("127.0.0.1:1000", 2, 64);
        assert!(r.sweep_stale(60_000).is_empty(), "fresh backend survives");
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(r.sweep_stale(10), vec![id]);
        assert_eq!(r.up_count(), 0);
    }

    #[test]
    fn long_dead_backends_are_evicted_but_fresh_down_ones_survive() {
        let r = registry();
        let dead = r.register("127.0.0.1:1000", 2, 64);
        let alive = r.register("127.0.0.1:2000", 2, 64);
        r.mark_down(dead);
        assert!(
            r.evict_dead(60_000).is_empty(),
            "a freshly-down backend stays registered (it may recover)"
        );
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert_eq!(r.evict_dead(10), vec![dead]);
        assert_eq!(r.snapshot().len(), 1, "only the live backend remains");
        assert!(!r.heartbeat(dead, 0, 0), "evicted id is unknown");
        // The evicted address re-registers as a brand-new backend.
        let again = r.register("127.0.0.1:1000", 2, 64);
        assert_ne!(again, dead);
        assert_ne!(again, alive);
        assert_eq!(r.up_count(), 2);
    }

    #[test]
    fn affine_choice_follows_the_ring_and_failover_excludes() {
        let r = registry();
        let a = r.register("127.0.0.1:1000", 2, 64);
        let b = r.register("127.0.0.1:2000", 2, 64);
        for hash in 0..100u64 {
            let h = hash.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let first = r.choose(h, &[]).unwrap();
            assert!(first.affine, "unloaded cluster always routes affine");
            // Excluding the affine target falls over to the other backend.
            let other = r.choose(h, &[first.id]).unwrap();
            assert_ne!(other.id, first.id);
            assert!(!other.affine);
            assert!([a, b].contains(&other.id));
        }
    }

    #[test]
    fn saturation_spills_to_the_least_loaded_backend() {
        let r = registry();
        let a = r.register("127.0.0.1:1000", 1, 64); // capacity 1, saturates at 2
        let b = r.register("127.0.0.1:2000", 1, 64);
        // Find a hash whose affine target is `a`.
        let hash = (0..)
            .map(|k: u64| k.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .find(|&h| r.choose(h, &[]).unwrap().id == a)
            .unwrap();
        r.begin_dispatch(a);
        r.begin_dispatch(a);
        let spilled = r.choose(hash, &[]).unwrap();
        assert_eq!(spilled.id, b, "saturated affine target spills");
        assert!(!spilled.affine);
        r.end_dispatch(a);
        let back = r.choose(hash, &[]).unwrap();
        assert_eq!(back.id, a, "draining in-flight restores affinity");
        assert!(back.affine);
    }

    #[test]
    fn random_choice_scores_affinity_against_the_ring() {
        let r = registry();
        let _ = r.register("127.0.0.1:1000", 1, 64);
        let _ = r.register("127.0.0.1:2000", 1, 64);
        let hash = 0xdead_beef_u64;
        let mut affine_seen = 0;
        for pick in 0..16u64 {
            let c = r.choose_random(hash, &[], pick).unwrap();
            if c.affine {
                affine_seen += 1;
            }
        }
        // Two backends, alternating picks: exactly half the draws land
        // on the ring primary.
        assert_eq!(affine_seen, 8);
    }
}
