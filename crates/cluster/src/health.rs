//! The router's active health checks.
//!
//! Heartbeats alone cannot distinguish "backend died" from "backend's
//! join agent died"; a router-initiated `ping` over a fresh connection
//! probes the thing that matters — whether the backend still answers the
//! frame protocol. [`health_loop`] runs three detectors every interval:
//!
//! 1. **sweep** — backends whose `last_seen` (registration, heartbeat,
//!    or successful ping) aged past the heartbeat timeout are marked
//!    down;
//! 2. **probe** — every registered backend is pinged with a short
//!    timeout; a success refreshes liveness (and revives a down
//!    backend), a failure counts toward the miss threshold;
//! 3. **evict** — backends that stayed down past the eviction grace are
//!    deregistered entirely, so ephemeral-port restarts do not leak a
//!    dead entry (and a doomed probe per round) forever.
//!
//! All timeouts are short and per-probe, so one wedged backend delays
//! the loop by at most `ping_timeout`, not forever.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use mc_serve::protocol::{read_frame, write_frame, Request, Response};

use crate::registry::Registry;

/// One bounded request/response exchange over a fresh connection:
/// connect, write, and read are each bounded by `timeout`. The shared
/// plumbing under health probes and the router's stats polling.
pub(crate) fn poll_addr(addr: &str, request: &Request, timeout: Duration) -> Option<Response> {
    let addrs = addr.to_socket_addrs().ok()?;
    for a in addrs {
        let Ok(mut stream) = TcpStream::connect_timeout(&a, timeout) else {
            continue;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        if write_frame(&mut stream, &request.to_payload()).is_err() {
            continue;
        }
        if let Ok(Some(payload)) = read_frame(&mut stream) {
            if let Ok(response) = Response::from_payload(&payload) {
                return Some(response);
            }
        }
    }
    None
}

/// Sends one `ping` frame to `addr` and waits for the `pong`, bounding
/// connect, write, and read each by `timeout`.
pub fn ping_addr(addr: &str, timeout: Duration) -> bool {
    matches!(
        poll_addr(addr, &Request::Ping, timeout),
        Some(Response::Pong)
    )
}

/// Knobs of [`health_loop`].
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Pause between check rounds.
    pub interval: Duration,
    /// Per-probe connect/read/write bound.
    pub ping_timeout: Duration,
    /// `last_seen` age past which a backend is swept down, milliseconds.
    pub heartbeat_timeout_ms: u64,
    /// Consecutive failed probes before a backend is marked down.
    pub miss_threshold: u32,
    /// How long a backend may stay down before it is deregistered,
    /// milliseconds.
    pub evict_after_ms: u64,
}

/// Runs sweep + probe + evict rounds until `shutdown` is set; `on_down`
/// fires once per backend transition to down *and* per eviction, so the
/// router can discard pooled connections. Sleeps in short slices so
/// router shutdown is never blocked on a full interval.
pub(crate) fn health_loop(
    registry: &Registry,
    shutdown: &AtomicBool,
    config: &HealthConfig,
    on_down: &dyn Fn(u64),
) {
    const POLL: Duration = Duration::from_millis(50);
    while !shutdown.load(Ordering::SeqCst) {
        let mut remaining = config.interval;
        while !shutdown.load(Ordering::SeqCst) && !remaining.is_zero() {
            let slice = remaining.min(POLL);
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        for id in registry.sweep_stale(config.heartbeat_timeout_ms) {
            on_down(id);
        }
        for backend in registry.snapshot() {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            let probe_start = std::time::Instant::now();
            if ping_addr(&backend.addr, config.ping_timeout) {
                // The probe doubles as an RTT sample: last observed
                // round trip per backend, scraped via `--metrics`.
                mc_obs::registry()
                    .gauge(&format!(
                        "cluster_backend_rtt_us{{backend=\"{}\"}}",
                        backend.addr
                    ))
                    .set(probe_start.elapsed().as_micros() as u64);
                registry.note_ping_ok(backend.id);
            } else if registry.note_ping_failed(backend.id, config.miss_threshold) {
                mc_obs::registry()
                    .counter("cluster_backend_down_total")
                    .inc();
                on_down(backend.id);
            }
        }
        for id in registry.evict_dead(config.evict_after_ms) {
            on_down(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_fails_cleanly_on_a_dead_address() {
        // A port nothing listens on: bind-then-drop reserves one.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        assert!(!ping_addr(&addr, Duration::from_millis(100)));
        assert!(!ping_addr("not an address", Duration::from_millis(100)));
    }
}
