//! The consistent-hash ring that gives the router cache affinity.
//!
//! Each backend contributes `replicas` virtual points on a `u64` ring
//! (FNV-1a of `(backend id, replica index)`); a job's canonical key
//! fingerprint is looked up clockwise to the first point, whose backend
//! is the job's **affine target** — the backend whose semantic cache the
//! key has warmed before and will warm again. Virtual points smooth the
//! load split; consistent hashing keeps the map stable under membership
//! change: removing a backend remaps only the keys that pointed at it,
//! so one crash does not cold-start every surviving cache.
//!
//! [`HashRing::preference`] yields the distinct backends in clockwise
//! order from the key's point — the natural failover order: when the
//! affine target is down or saturated, the next ring successor inherits
//! the key *deterministically*, so retries from concurrent clients
//! converge on the same fallback (which then warms instead of spraying
//! the key across the cluster).

use xag_mc::canon::fingerprint;

/// A consistent-hash ring over backend ids. Cheap to rebuild and to
/// clone; the registry rebuilds it on every membership change.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    /// `(point, backend id)`, sorted by point.
    points: Vec<(u64, u64)>,
    /// Distinct backend ids on the ring.
    members: usize,
}

/// Virtual points per backend. 32 keeps the largest/smallest arc ratio
/// low single-digit for small clusters while membership changes stay
/// O(replicas · log points).
pub const DEFAULT_REPLICAS: usize = 32;

fn point_of(id: u64, replica: usize) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&id.to_le_bytes());
    bytes[8..].copy_from_slice(&(replica as u64).to_le_bytes());
    fingerprint(&bytes)
}

impl HashRing {
    /// An empty ring.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct backends on the ring.
    pub fn len(&self) -> usize {
        self.members
    }

    /// True iff no backend is on the ring.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Adds a backend's virtual points (idempotent).
    pub fn insert(&mut self, id: u64, replicas: usize) {
        if self.points.iter().any(|&(_, b)| b == id) {
            return;
        }
        for r in 0..replicas.max(1) {
            self.points.push((point_of(id, r), id));
        }
        self.points.sort_unstable();
        self.members += 1;
    }

    /// Removes a backend's virtual points (idempotent).
    pub fn remove(&mut self, id: u64) {
        let before = self.points.len();
        self.points.retain(|&(_, b)| b != id);
        if self.points.len() != before {
            self.members -= 1;
        }
    }

    /// The affine target of a key hash: the backend owning the first
    /// point clockwise from `hash`. `None` on an empty ring.
    pub fn primary(&self, hash: u64) -> Option<u64> {
        self.successors(hash).next()
    }

    /// Distinct backends in clockwise order from `hash` — the preference
    /// (failover) order of the key.
    pub fn preference(&self, hash: u64) -> Vec<u64> {
        let mut seen = Vec::with_capacity(self.members);
        for id in self.successors(hash) {
            if !seen.contains(&id) {
                seen.push(id);
                if seen.len() == self.members {
                    break;
                }
            }
        }
        seen
    }

    /// Ring points clockwise from `hash`, wrapping once (ids repeat).
    fn successors(&self, hash: u64) -> impl Iterator<Item = u64> + '_ {
        let start = self.points.partition_point(|&(p, _)| p < hash);
        self.points[start..]
            .iter()
            .chain(self.points[..start].iter())
            .map(|&(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(ids: &[u64]) -> HashRing {
        let mut ring = HashRing::new();
        for &id in ids {
            ring.insert(id, DEFAULT_REPLICAS);
        }
        ring
    }

    #[test]
    fn empty_ring_has_no_primary() {
        let ring = HashRing::new();
        assert!(ring.is_empty());
        assert_eq!(ring.primary(42), None);
        assert!(ring.preference(42).is_empty());
    }

    #[test]
    fn insert_is_idempotent_and_remove_retracts() {
        let mut ring = ring_of(&[1, 2]);
        ring.insert(1, DEFAULT_REPLICAS);
        assert_eq!(ring.len(), 2);
        ring.remove(1);
        assert_eq!(ring.len(), 1);
        ring.remove(1);
        assert_eq!(ring.len(), 1);
        // Every key now maps to the only member.
        for k in 0..100u64 {
            assert_eq!(ring.primary(k.wrapping_mul(0x9e37_79b9_7f4a_7c15)), Some(2));
        }
    }

    #[test]
    fn preference_lists_every_member_exactly_once() {
        let ring = ring_of(&[1, 2, 3, 4]);
        for k in 0..50u64 {
            let pref = ring.preference(k.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2, 3, 4], "key {k}: {pref:?}");
            assert_eq!(
                pref[0],
                ring.primary(k.wrapping_mul(0x9e37_79b9_7f4a_7c15)).unwrap()
            );
        }
    }

    #[test]
    fn load_split_is_roughly_balanced() {
        let ring = ring_of(&[1, 2, 3, 4]);
        let mut counts = [0usize; 5];
        let keys = 4000u64;
        for k in 0..keys {
            let id = ring.primary(k.wrapping_mul(0x9e37_79b9_7f4a_7c15)).unwrap();
            counts[id as usize] += 1;
        }
        for (id, &count) in counts.iter().enumerate().skip(1) {
            let share = count as f64 / keys as f64;
            assert!(
                (0.10..=0.45).contains(&share),
                "backend {id} owns {share:.2} of the keys"
            );
        }
    }

    #[test]
    fn removal_only_remaps_keys_of_the_removed_backend() {
        let full = ring_of(&[1, 2, 3, 4]);
        let mut reduced = full.clone();
        reduced.remove(3);
        for k in 0..2000u64 {
            let hash = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let before = full.primary(hash).unwrap();
            let after = reduced.primary(hash).unwrap();
            if before != 3 {
                assert_eq!(before, after, "key {k} moved although its backend survived");
            } else {
                assert_ne!(after, 3);
            }
        }
    }

    #[test]
    fn failover_order_is_the_ring_successor() {
        let ring = ring_of(&[1, 2, 3]);
        for k in 0..200u64 {
            let hash = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let pref = ring.preference(hash);
            // Removing the primary promotes exactly the second choice.
            let mut without = ring.clone();
            without.remove(pref[0]);
            assert_eq!(without.primary(hash), Some(pref[1]), "key {k}");
        }
    }
}
