//! Composable optimization flows, ABC-script style.
//!
//! A [`Pipeline`] is an ordered list of [`Pass`]es plus a convergence
//! policy. It can run the passes once, in order ([`Pipeline::run_once`]),
//! or repeat them until the objective stops improving ([`Pipeline::run`]),
//! which subsumes the cut-size alternation schedule the optimizer used
//! before the pass refactor.
//!
//! # Examples
//!
//! The paper's flow, driving the textbook full adder to its known
//! multiplicative complexity of 1:
//!
//! ```
//! use xag_mc::{OptContext, Pipeline};
//! use xag_network::Xag;
//!
//! let mut xag = Xag::new();
//! let (a, b, cin) = (xag.input(), xag.input(), xag.input());
//! let ab = xag.and(a, b);
//! let ac = xag.and(a, cin);
//! let bc = xag.and(b, cin);
//! let t = xag.xor(ab, ac);
//! let cout = xag.xor(t, bc);
//! let axb = xag.xor(a, b);
//! let sum = xag.xor(axb, cin);
//! xag.output(sum);
//! xag.output(cout);
//!
//! let mut ctx = OptContext::new();
//! let stats = Pipeline::paper_flow().run(&mut xag, &mut ctx);
//! assert!(stats.converged);
//! assert_eq!(xag.num_ands(), 1);
//! ```
//!
//! A custom flow built pass by pass:
//!
//! ```
//! use xag_mc::{Cleanup, McRewrite, OptContext, Pipeline, XorReduce};
//! # use xag_network::Xag;
//! # let mut xag = Xag::new();
//! # let a = xag.input();
//! # let b = xag.input();
//! # let g = xag.and(a, b);
//! # xag.output(g);
//! let flow = Pipeline::new()
//!     .add(McRewrite::new())
//!     .add(XorReduce::new())
//!     .add(Cleanup::new());
//! let mut ctx = OptContext::new();
//! let stats = flow.run_once(&mut xag, &mut ctx);
//! assert_eq!(stats.passes.len(), 3);
//! ```

use std::time::Duration;

use xag_cuts::CutParams;
use xag_network::Xag;

use crate::context::OptContext;
use crate::pass::{McRewrite, Pass, PassStats, SizeRewrite, XorReduce};
use crate::stats::{RewriteStats, RoundStats};
use crate::{Objective, RewriteParams};

/// An ordered list of passes with a convergence policy.
///
/// See the [module documentation](self) for examples.
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
    metric: Objective,
    max_rounds: usize,
}

impl core::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Pipeline")
            .field("passes", &self.pass_names())
            .field("metric", &self.metric)
            .field("max_rounds", &self.max_rounds)
            .finish()
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    /// An empty pipeline minimizing multiplicative complexity, capped at
    /// 100 rounds (the paper observed convergence within 58 on all
    /// benchmarks).
    pub fn new() -> Self {
        Self {
            passes: Vec::new(),
            metric: Objective::MultiplicativeComplexity,
            max_rounds: 100,
        }
    }

    /// Appends a pass.
    #[allow(clippy::should_implement_trait)] // builder step, not arithmetic
    pub fn add(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends an already boxed pass (useful when building flows
    /// dynamically).
    pub fn add_boxed(mut self, pass: Box<dyn Pass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Sets the objective [`Pipeline::run`] measures convergence against.
    pub fn metric(mut self, metric: Objective) -> Self {
        self.metric = metric;
        self
    }

    /// Caps the total number of pass executions in [`Pipeline::run`].
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Number of passes in the flow.
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// The pass names, in flow order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// The paper's until-convergence flow: 4-feasible-cut rewriting
    /// alternated with 6-feasible-cut rewriting, smaller cuts first.
    ///
    /// For functions of up to four inputs the database is provably
    /// MC-optimal (affine + symplectic + exact MC ≤ 2 search + the
    /// three-AND worst case), so small-cut rounds establish locally
    /// optimal structures that heuristic 5-/6-input database entries
    /// would otherwise destroy, and wide-cut rounds then only fire on
    /// genuine cross-boundary gains. This compensates for substituting
    /// the paper's exact NIST database with on-demand synthesis
    /// (DESIGN.md §3).
    pub fn paper_flow() -> Self {
        Self::from_params(&RewriteParams::default())
    }

    /// A generic compression flow: unit-cost size rewriting (4-cut, then
    /// 6-cut) followed by XOR reduction, measured on total gate count —
    /// the stand-in for the ABC script the paper uses to produce its
    /// "Initial" networks.
    pub fn compress() -> Self {
        Self::new()
            .metric(Objective::Size)
            .add(SizeRewrite::with_cut_size(4))
            .add(SizeRewrite::new())
            .add(XorReduce::new())
    }

    /// Builds the flow [`crate::McOptimizer`] runs for the given
    /// parameters: the cut-size schedule of [`Pipeline::paper_flow`] under
    /// `params.objective`, honoring `params.cut_params` and
    /// `params.max_rounds`.
    pub fn from_params(params: &RewriteParams) -> Self {
        let big = params.cut_params.cut_size;
        let sizes: &[usize] = if big > 4 { &[4, big] } else { &[big] };
        let mut flow = Self::new()
            .metric(params.objective)
            .max_rounds(params.max_rounds);
        for &size in sizes {
            let cut_params = CutParams {
                cut_size: size,
                ..params.cut_params
            };
            flow = match params.objective {
                Objective::MultiplicativeComplexity => flow.add(McRewrite::with_params(cut_params)),
                Objective::Size => flow.add(SizeRewrite::with_params(cut_params)),
            };
        }
        flow
    }

    /// Runs every pass exactly once, in order.
    pub fn run_once(&self, xag: &mut Xag, ctx: &mut OptContext) -> PipelineStats {
        let passes = self
            .passes
            .iter()
            .map(|pass| {
                let _root = mc_obs::prof::phase("pipeline");
                let stats = pass.run(xag, ctx);
                crate::observe::pass_boundary(&stats);
                stats
            })
            .collect();
        PipelineStats {
            passes,
            converged: false,
        }
    }

    /// Repeats the flow until convergence: the current pass runs again
    /// while it improves the metric; once stale, the flow advances to the
    /// next pass (cyclically); once *every* pass in sequence is stale, the
    /// flow has converged. Capped at [`Pipeline::max_rounds`] total pass
    /// executions.
    ///
    /// With the [`Pipeline::paper_flow`] passes this is exactly the
    /// paper's "repeat until convergence" loop with the small-cut-first
    /// schedule.
    pub fn run(&self, xag: &mut Xag, ctx: &mut OptContext) -> PipelineStats {
        self.run_with_threads(xag, ctx, None)
    }

    /// [`Pipeline::run`] with up to `threads` worker threads per pass.
    ///
    /// Rewriting passes execute through the sharded propose/commit engine
    /// (see [`crate::shard`]); passes without a parallel implementation
    /// run sequentially. The convergence schedule is identical to
    /// [`Pipeline::run`], and the optimized network is **bit-identical for
    /// every thread count** — only wall-clock changes. Note that the
    /// parallel engine's round semantics (propose against a frozen
    /// snapshot, then commit) differ from the sequential in-place round,
    /// so `run_parallel(.., 1)` and `run(..)` may converge to different —
    /// equally valid — networks.
    pub fn run_parallel(
        &self,
        xag: &mut Xag,
        ctx: &mut OptContext,
        threads: usize,
    ) -> PipelineStats {
        self.run_with_threads(xag, ctx, Some(threads.max(1)))
    }

    fn run_with_threads(
        &self,
        xag: &mut Xag,
        ctx: &mut OptContext,
        threads: Option<usize>,
    ) -> PipelineStats {
        assert!(!self.passes.is_empty(), "cannot run an empty pipeline");
        let mut executed: Vec<PassStats> = Vec::new();
        let mut converged = false;
        let mut phase = 0usize;
        let mut stale = 0usize;
        while executed.len() < self.max_rounds {
            let pass = &self.passes[phase % self.passes.len()];
            let stats = {
                let _root = mc_obs::prof::phase("pipeline");
                match threads {
                    Some(t) => pass.run_parallel(xag, ctx, t),
                    None => pass.run(xag, ctx),
                }
            };
            crate::observe::pass_boundary(&stats);
            let improved = stats.improved(self.metric);
            executed.push(stats);
            if improved {
                stale = 0;
            } else {
                stale += 1;
                phase += 1;
                if stale >= self.passes.len() {
                    converged = true;
                    break;
                }
            }
        }
        PipelineStats {
            passes: executed,
            converged,
        }
    }
}

/// Statistics of a pipeline run: every executed pass, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineStats {
    /// Per-execution statistics, in execution order.
    pub passes: Vec<PassStats>,
    /// True iff [`Pipeline::run`] stopped because no pass improved the
    /// metric anymore (as opposed to hitting the round cap; always false
    /// for [`Pipeline::run_once`]).
    pub converged: bool,
}

impl PipelineStats {
    /// Number of pass executions.
    pub fn num_rounds(&self) -> usize {
        self.passes.len()
    }

    /// AND count before the first pass.
    pub fn ands_before(&self) -> usize {
        self.passes.first().map(|r| r.ands_before).unwrap_or(0)
    }

    /// AND count after the last pass.
    pub fn ands_after(&self) -> usize {
        self.passes.last().map(|r| r.ands_after).unwrap_or(0)
    }

    /// Total wall-clock time across passes.
    pub fn total_time(&self) -> Duration {
        self.passes.iter().map(|r| r.elapsed).sum()
    }

    /// Overall AND improvement, in percent (negative if a flow traded
    /// ANDs up, which Size-objective flows may).
    pub fn improvement_pct(&self) -> f64 {
        let before = self.ands_before();
        if before == 0 {
            0.0
        } else {
            100.0 * (before as f64 - self.ands_after() as f64) / before as f64
        }
    }

    /// Accumulates the statistics per pass name, in first-execution order
    /// — the per-pass breakdown of a flow.
    pub fn per_pass(&self) -> Vec<PassSummary> {
        let mut order: Vec<PassSummary> = Vec::new();
        for s in &self.passes {
            let entry = match order.iter_mut().find(|e| e.name == s.pass) {
                Some(entry) => entry,
                None => {
                    order.push(PassSummary {
                        name: s.pass.clone(),
                        runs: 0,
                        ands_saved: 0,
                        xors_saved: 0,
                        rewrites_applied: 0,
                        cuts_considered: 0,
                        elapsed: Duration::ZERO,
                    });
                    order.last_mut().expect("just pushed")
                }
            };
            entry.runs += 1;
            entry.ands_saved += s.ands_before as i64 - s.ands_after as i64;
            entry.xors_saved += s.xors_before as i64 - s.xors_after as i64;
            entry.rewrites_applied += s.rewrites_applied;
            entry.cuts_considered += s.cuts_considered;
            entry.elapsed += s.elapsed;
        }
        order
    }

    /// Converts into the facade's [`RewriteStats`] (pass names are
    /// dropped; each execution becomes one round).
    pub fn into_rewrite_stats(self) -> RewriteStats {
        RewriteStats {
            rounds: self.passes.into_iter().map(RoundStats::from).collect(),
            converged: self.converged,
        }
    }
}

impl core::fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} rounds, AND {} → {} ({:.1}% improvement), {:.2}s{}",
            self.num_rounds(),
            self.ands_before(),
            self.ands_after(),
            self.improvement_pct(),
            self.total_time().as_secs_f64(),
            if self.converged { "" } else { " (round limit)" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pass_stats(name: &str, before: usize, after: usize) -> PassStats {
        PassStats {
            pass: name.to_string(),
            ands_before: before,
            xors_before: 2,
            ands_after: after,
            xors_after: 2,
            rewrites_applied: 1,
            cuts_considered: 8,
            elapsed: Duration::from_millis(3),
        }
    }

    #[test]
    fn empty_pipeline_stats_aggregate_to_zero() {
        let s = PipelineStats {
            passes: Vec::new(),
            converged: false,
        };
        assert_eq!(s.num_rounds(), 0);
        assert_eq!(s.ands_before(), 0);
        assert_eq!(s.ands_after(), 0);
        assert_eq!(s.total_time(), Duration::ZERO);
        assert!((s.improvement_pct()).abs() < 1e-9);
        assert!(s.per_pass().is_empty());
        let rw = s.into_rewrite_stats();
        assert_eq!(rw.num_rounds(), 0);
        assert!(!rw.converged);
    }

    #[test]
    fn per_pass_groups_by_name_in_first_execution_order() {
        let s = PipelineStats {
            passes: vec![
                pass_stats("mc", 10, 8),
                pass_stats("xor", 8, 8),
                pass_stats("mc", 8, 7),
            ],
            converged: true,
        };
        let summary = s.per_pass();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].name, "mc");
        assert_eq!(summary[0].runs, 2);
        assert_eq!(summary[0].ands_saved, 3);
        assert_eq!(summary[0].rewrites_applied, 2);
        assert_eq!(summary[0].cuts_considered, 16);
        assert_eq!(summary[1].name, "xor");
        assert_eq!(summary[1].runs, 1);
        assert_eq!(summary[1].ands_saved, 0);
    }

    #[test]
    fn per_pass_tracks_negative_savings() {
        // A Size-objective pass may add ANDs; the summary must go
        // negative, not saturate.
        let s = PipelineStats {
            passes: vec![pass_stats("size", 5, 9)],
            converged: true,
        };
        assert_eq!(s.per_pass()[0].ands_saved, -4);
        assert!(s.improvement_pct() < 0.0);
    }

    #[test]
    fn into_rewrite_stats_preserves_rounds_and_convergence() {
        let s = PipelineStats {
            passes: vec![pass_stats("mc", 10, 8), pass_stats("mc", 8, 8)],
            converged: true,
        };
        let rw = s.clone().into_rewrite_stats();
        assert_eq!(rw.num_rounds(), 2);
        assert!(rw.converged);
        assert_eq!(rw.ands_before(), s.ands_before());
        assert_eq!(rw.ands_after(), s.ands_after());
        assert_eq!(rw.total_time(), s.total_time());
    }
}

/// Accumulated statistics of all executions of one pass in a flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassSummary {
    /// The pass name.
    pub name: String,
    /// How many times the pass executed.
    pub runs: usize,
    /// Net AND gates removed across all executions (negative if the pass
    /// added ANDs).
    pub ands_saved: i64,
    /// Net XOR gates removed across all executions.
    pub xors_saved: i64,
    /// Total applied changes.
    pub rewrites_applied: usize,
    /// Total cut candidates evaluated.
    pub cuts_considered: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
}
