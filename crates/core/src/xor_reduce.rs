//! XOR-count reduction over the linear layers of an XAG.
//!
//! The DAC'19 paper minimizes AND gates only and explicitly leaves XOR
//! optimization to prior work ("an algorithm to minimize the number of XOR
//! [gates] … can be found in [14]"). Cut rewriting indeed inflates the XOR
//! count — every affine-operation replay adds XOR gates. This module
//! implements the natural companion pass: the XOR-only sub-networks (the
//! *linear layers* between AND gates, primary inputs, and primary outputs)
//! are collected into GF(2) matrices and re-synthesized with Paar's greedy
//! common-subexpression algorithm, extracting the most frequent operand
//! pair until none repeats.
//!
//! The pass never touches AND gates, never increases the AND count or the
//! multiplicative depth, and returns the original network when no
//! improvement is found.

use std::collections::HashMap;

use xag_network::{NodeId, NodeKind, Signal, Xag};

/// Upper bounds on the matrix blocks handed to the greedy extractor;
/// larger linear clusters are processed in slices.
const MAX_COLS: usize = 192;
const MAX_ROWS: usize = 512;

/// Linear decomposition of an XOR cone: XOR of `sources` (node ids of
/// non-XOR drivers) plus a constant `parity`.
#[derive(Debug, Clone, Default)]
struct LinearForm {
    /// Sorted node ids.
    sources: Vec<NodeId>,
    parity: bool,
}

fn symmetric_difference(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Rebuilds `xag` with Paar-reduced linear layers. Returns the original
/// network (cleaned up) if the rebuild does not reduce the XOR count.
pub fn reduce_xors(xag: &Xag) -> Xag {
    let order = xag.live_gates();

    // 1. Linear decomposition of every XOR node; XOR cones wider than
    //    MAX_COLS are treated as opaque sources for their consumers.
    let mut forms: HashMap<NodeId, LinearForm> = HashMap::new();
    for &n in &order {
        if xag.kind(n) != NodeKind::Xor {
            continue;
        }
        let (f0, f1) = xag.fanins(n);
        let part = |s: Signal, forms: &HashMap<NodeId, LinearForm>| -> LinearForm {
            match forms.get(&s.node()) {
                Some(f) => LinearForm {
                    sources: f.sources.clone(),
                    parity: f.parity ^ s.is_complement(),
                },
                None => LinearForm {
                    sources: vec![s.node()],
                    parity: s.is_complement(),
                },
            }
        };
        let a = part(f0, &forms);
        let b = part(f1, &forms);
        let sources = symmetric_difference(&a.sources, &b.sources);
        if sources.len() <= MAX_COLS {
            forms.insert(
                n,
                LinearForm {
                    sources,
                    parity: a.parity ^ b.parity,
                },
            );
        }
    }

    // 2. Targets: decomposed XOR nodes consumed by an AND gate or a primary
    //    output.
    let mut is_target: HashMap<NodeId, bool> = HashMap::new();
    for &n in &order {
        if xag.kind(n) == NodeKind::And {
            let (f0, f1) = xag.fanins(n);
            for f in [f0, f1] {
                if forms.contains_key(&f.node()) {
                    is_target.insert(f.node(), true);
                }
            }
        }
    }
    for i in 0..xag.num_outputs() {
        let s = xag.output_signal(i);
        if forms.contains_key(&s.node()) {
            is_target.insert(s.node(), true);
        }
    }

    // 3. Rebuild: copy AND gates and opaque XOR gates 1:1; synthesize
    //    targets per linear block.
    let mut out = Xag::new();
    let mut map: HashMap<NodeId, Signal> = HashMap::new();
    map.insert(0, Signal::CONST0);
    for i in 0..xag.num_inputs() {
        let s = out.input();
        map.insert(xag.input_signal(i).node(), s);
    }

    // Collect targets in topological order and process them in blocks.
    let targets: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|n| is_target.contains_key(n))
        .collect();
    let mut rebuilt: HashMap<NodeId, Signal> = HashMap::new();

    let mut pending: Vec<NodeId> = Vec::new();
    let flush = |out: &mut Xag,
                 map: &HashMap<NodeId, Signal>,
                 rebuilt: &mut HashMap<NodeId, Signal>,
                 pending: &mut Vec<NodeId>| {
        if pending.is_empty() {
            return;
        }
        let block: Vec<NodeId> = std::mem::take(pending);
        let block_forms: Vec<&LinearForm> = block.iter().map(|n| &forms[n]).collect();
        let signals = paar_block(out, map, &block_forms);
        for (n, s) in block.iter().zip(signals) {
            rebuilt.insert(*n, s);
        }
    };

    let mut target_idx = 0usize;
    for &n in &order {
        // Flush any targets whose sources are all mapped before a consumer
        // needs them: process targets in topo order just before `n` if `n`
        // consumes them.
        match xag.kind(n) {
            NodeKind::And => {
                let (f0, f1) = xag.fanins(n);
                // Ensure pending targets this AND consumes are flushed.
                if [f0, f1].iter().any(|f| pending.contains(&f.node())) {
                    flush(&mut out, &map, &mut rebuilt, &mut pending);
                }
                let resolve = |f: Signal,
                               map: &HashMap<NodeId, Signal>,
                               rebuilt: &HashMap<NodeId, Signal>| {
                    let base = rebuilt
                        .get(&f.node())
                        .or_else(|| map.get(&f.node()))
                        .copied()
                        .expect("fanin mapped in topological order");
                    base ^ f.is_complement()
                };
                let a = resolve(f0, &map, &rebuilt);
                let b = resolve(f1, &map, &rebuilt);
                let s = out.and(a, b);
                map.insert(n, s);
            }
            NodeKind::Xor => {
                if is_target.contains_key(&n) {
                    pending.push(n);
                    target_idx += 1;
                    if pending.len() >= MAX_ROWS {
                        flush(&mut out, &map, &mut rebuilt, &mut pending);
                    }
                } else if !forms.contains_key(&n) {
                    // Opaque wide XOR: copy structurally.
                    let (f0, f1) = xag.fanins(n);
                    let resolve = |f: Signal| {
                        let base = rebuilt
                            .get(&f.node())
                            .or_else(|| map.get(&f.node()))
                            .copied()
                            .expect("fanin mapped");
                        base ^ f.is_complement()
                    };
                    let (a, b) = (resolve(f0), resolve(f1));
                    let s = out.xor(a, b);
                    map.insert(n, s);
                }
                // Interior decomposed XOR nodes are skipped: targets
                // re-express them.
            }
            _ => {}
        }
    }
    let _ = target_idx;
    flush(&mut out, &map, &mut rebuilt, &mut pending);

    for i in 0..xag.num_outputs() {
        let s = xag.output_signal(i);
        let base = rebuilt
            .get(&s.node())
            .or_else(|| map.get(&s.node()))
            .copied()
            .expect("output driver mapped");
        out.output(base ^ s.is_complement());
    }
    let _ = targets;

    let out = out.cleanup();
    let orig = xag.cleanup();
    if out.num_xors() < orig.num_xors() && out.num_ands() <= orig.num_ands() {
        out
    } else {
        orig
    }
}

/// Synthesizes a block of linear forms with Paar's greedy pair extraction.
/// Returns one signal per form, in order.
fn paar_block(out: &mut Xag, map: &HashMap<NodeId, Signal>, block: &[&LinearForm]) -> Vec<Signal> {
    // Column universe.
    let mut col_of: HashMap<NodeId, usize> = HashMap::new();
    let mut cols: Vec<Signal> = Vec::new();
    for form in block {
        for src in &form.sources {
            if !col_of.contains_key(src) {
                col_of.insert(*src, cols.len());
                cols.push(*map.get(src).expect("source mapped"));
            }
        }
    }
    // Row bitsets.
    let words = |n: usize| n.div_ceil(64);
    let mut rows: Vec<Vec<u64>> = block
        .iter()
        .map(|form| {
            let mut bits = vec![0u64; words(cols.len() + 64)];
            for src in &form.sources {
                let c = col_of[src];
                bits[c / 64] |= 1 << (c % 64);
            }
            bits
        })
        .collect();

    // Greedy extraction: the most frequent co-occurring column pair.
    loop {
        let ncols = cols.len();
        let mut best: Option<(usize, usize, usize)> = None; // (count, i, j)
                                                            // Count pairs via per-row set-bit scans (rows are sparse).
        let mut pair_counts: HashMap<(usize, usize), usize> = HashMap::new();
        for row in &rows {
            let set: Vec<usize> = (0..ncols)
                .filter(|&c| row[c / 64] >> (c % 64) & 1 == 1)
                .collect();
            if set.len() < 2 {
                continue;
            }
            for (ai, &a) in set.iter().enumerate() {
                for &b in &set[ai + 1..] {
                    let e = pair_counts.entry((a, b)).or_insert(0);
                    *e += 1;
                    if best.map(|(c, _, _)| *e > c).unwrap_or(*e >= 2) {
                        best = Some((*e, a, b));
                    }
                }
            }
        }
        let Some((_, i, j)) = best else { break };
        // New column = cols[i] ⊕ cols[j].
        let s = out.xor(cols[i], cols[j]);
        let c = cols.len();
        cols.push(s);
        for row in &mut rows {
            if row.len() <= c / 64 {
                row.resize(c / 64 + 1, 0);
            }
            let has_i = row[i / 64] >> (i % 64) & 1 == 1;
            let has_j = row[j / 64] >> (j % 64) & 1 == 1;
            if has_i && has_j {
                row[i / 64] &= !(1 << (i % 64));
                row[j / 64] &= !(1 << (j % 64));
                row[c / 64] |= 1 << (c % 64);
            }
        }
        if cols.len() > 4 * MAX_COLS {
            break; // safety valve
        }
    }

    // Emit chains for each row.
    block
        .iter()
        .zip(&rows)
        .map(|(form, row)| {
            let mut acc = Signal::CONST0;
            for (c, col) in cols.iter().enumerate() {
                if c / 64 < row.len() && row[c / 64] >> (c % 64) & 1 == 1 {
                    acc = out.xor(acc, *col);
                }
            }
            acc ^ form.parity
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_network::equiv_exhaustive;

    #[test]
    fn shares_common_subexpressions() {
        // y0 = a⊕b⊕c, y1 = a⊕b⊕d, y2 = a⊕b — naive: 5 XORs, shared: 3.
        let mut x = Xag::new();
        let (a, b, c, d) = (x.input(), x.input(), x.input(), x.input());
        let t0 = x.xor(a, b);
        let y0 = x.xor(t0, c);
        // Build y1 without sharing (different association).
        let t1 = x.xor(a, d);
        let y1 = x.xor(t1, b);
        let t2 = x.xor(c, d);
        let y2 = x.xor(t2, c); // = d ⊕ … folds: c⊕d⊕c = d — keep nontrivial:
        let y2 = x.xor(y2, a); // a ⊕ d
        x.output(y0);
        x.output(y1);
        x.output(!y2);
        let before = x.num_xors();
        let reduced = reduce_xors(&x);
        assert!(reduced.num_xors() <= before);
        assert!(equiv_exhaustive(&x, &reduced));
        let _ = (y0, y1);
    }

    #[test]
    fn preserves_ands_and_function() {
        let mut x = Xag::new();
        let ins: Vec<Signal> = (0..6).map(|_| x.input()).collect();
        // Linear layer into two ANDs into a linear layer.
        let l1 = x.xor(ins[0], ins[1]);
        let l2 = x.xor(l1, ins[2]);
        let l3 = x.xor(ins[1], ins[3]);
        let l4 = x.xor(l3, ins[0]);
        let g1 = x.and(l2, l4);
        let l5 = x.xor(ins[4], ins[5]);
        let g2 = x.and(g1, l5);
        let o1 = x.xor(g2, l2);
        let o2 = x.xor(g2, l4);
        x.output(o1);
        x.output(o2);
        let ands = x.num_ands();
        let depth = x.and_depth();
        let reduced = reduce_xors(&x);
        assert_eq!(reduced.num_ands(), ands);
        assert!(reduced.and_depth() <= depth);
        assert!(equiv_exhaustive(&x, &reduced));
    }

    #[test]
    fn no_regression_on_already_minimal() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let s = x.xor(a, b);
        x.output(s);
        let reduced = reduce_xors(&x);
        assert_eq!(reduced.num_xors(), 1);
        assert!(equiv_exhaustive(&x, &reduced));
    }
}
