//! Canonical structural serialization of a network — the shared cache
//! key of the service tiers.
//!
//! Two submissions should land on the same cache line (and, in a
//! cluster, on the same backend) whenever they are the *same circuit*,
//! even if their files list gates in different orders or their builders
//! allocated nodes differently. [`canonical_form`] produces that
//! equivalence-class key in two steps:
//!
//! 1. **Topological relabel** — the network is rebuilt with
//!    [`Xag::cleanup`], which re-runs every gate through the structural
//!    hashing (strash) constructors, normalizing fanin order, complement
//!    placement, and constant folding exactly like the optimizer's own
//!    view of the network.
//! 2. **Canonical numbering** — gates are then numbered by a greedy
//!    topological order that always picks the ready gate with the
//!    smallest `(kind, fanin-label, fanin-label)` key. Because strash
//!    guarantees no two gates share `(kind, fanins)`, this order is a
//!    *total* order determined by the graph alone — original node ids,
//!    construction order, and file gate order cannot leak into it.
//!
//! The serialized form (I/O counts, gates in canonical order, outputs) is
//! used directly as the map key, so equality is exact — the 64-bit
//! [`fingerprint`] is only a compact handle (the cluster router hashes it
//! onto its backend ring; the map itself compares full keys). Structural
//! identity is deliberately the *whole* key modulo nothing else: two
//! functionally equivalent but structurally different circuits are
//! different jobs (deciding functional equivalence is the expensive
//! problem the optimizer itself works on).
//!
//! This module lives in `xag-mc` rather than in the serve tier so that
//! the single-node semantic cache (`mc-serve`) and the cluster router
//! (`mc-cluster`) agree on the key **bit for bit**: the router computes
//! [`job_key`] once to pick a backend, and the backend computes the same
//! bytes to index its local cache — isomorphic resubmissions therefore
//! land on a warm backend.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use xag_network::{NodeId, NodeKind, Xag};

/// Serializes a network into its canonical structural form. Isomorphic
/// networks (same graph modulo node numbering and gate order, same PI/PO
/// order) produce identical bytes.
pub fn canonical_form(xag: &Xag) -> Vec<u8> {
    let x = xag.cleanup();
    let gates = x.live_gates();

    // Dense side-tables — `cleanup` rebuilds the network with compact
    // node ids, so `x.capacity()` is tight and Vec indexing beats any
    // hash map here.
    //
    // label[node] — inputs get 1..=n_in (const node is 0), gates are
    // numbered on assignment below.
    let mut label: Vec<u32> = vec![0; x.capacity()];
    for i in 0..x.num_inputs() {
        label[x.input_signal(i).node() as usize] = i as u32 + 1;
    }

    // Dependency counts and fanout adjacency among the live gates.
    let mut pending: Vec<u32> = vec![0; x.capacity()];
    let mut fanout: Vec<Vec<NodeId>> = vec![Vec::new(); x.capacity()];
    for &g in &gates {
        let (f0, f1) = x.fanins(g);
        let mut deps = 0;
        for f in [f0, f1] {
            if x.is_gate(f.node()) {
                deps += 1;
                fanout[f.node() as usize].push(g);
            }
        }
        pending[g as usize] = deps;
    }

    // Encoded operand: label in the high bits, complement in the low bit
    // — so ordering by the encoding orders by (label, complement).
    let op_of = |label: &[u32], s: xag_network::Signal| -> u64 {
        let l = label[s.node() as usize] as u64;
        (l << 1) | s.is_complement() as u64
    };
    let entry_of = |label: &[u32], x: &Xag, g: NodeId| -> (u8, u64, u64, NodeId) {
        let (f0, f1) = x.fanins(g);
        let (mut a, mut b) = (op_of(label, f0), op_of(label, f1));
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        let kind = match x.kind(g) {
            NodeKind::And => 0u8,
            NodeKind::Xor => 1u8,
            _ => unreachable!("live_gates yields gates only"),
        };
        (kind, a, b, g)
    };

    // Greedy canonical topological numbering: repeatedly take the ready
    // gate with the smallest (kind, op, op) key. Strash uniqueness makes
    // the key prefix unique, so the trailing NodeId never decides.
    let mut ready: BinaryHeap<Reverse<(u8, u64, u64, NodeId)>> = gates
        .iter()
        .filter(|&&g| pending[g as usize] == 0)
        .map(|&g| Reverse(entry_of(&label, &x, g)))
        .collect();
    let mut ordered: Vec<(u8, u64, u64)> = Vec::with_capacity(gates.len());
    let mut next_label = x.num_inputs() as u32 + 1;
    while let Some(Reverse((kind, a, b, g))) = ready.pop() {
        label[g as usize] = next_label;
        next_label += 1;
        ordered.push((kind, a, b));
        for &c in &fanout[g as usize] {
            let p = &mut pending[c as usize];
            *p -= 1;
            if *p == 0 {
                ready.push(Reverse(entry_of(&label, &x, c)));
            }
        }
    }
    debug_assert_eq!(ordered.len(), gates.len(), "live gates form a DAG");

    let mut bytes = Vec::with_capacity(16 + ordered.len() * 9 + x.num_outputs() * 4);
    bytes.extend_from_slice(b"XAG1");
    bytes.extend_from_slice(&(x.num_inputs() as u32).to_le_bytes());
    bytes.extend_from_slice(&(x.num_outputs() as u32).to_le_bytes());
    bytes.extend_from_slice(&(ordered.len() as u32).to_le_bytes());
    for (kind, a, b) in ordered {
        bytes.push(kind);
        bytes.extend_from_slice(&(a as u32).to_le_bytes());
        bytes.extend_from_slice(&(b as u32).to_le_bytes());
    }
    for i in 0..x.num_outputs() {
        let s = x.output_signal(i);
        bytes.extend_from_slice(&(op_of(&label, s) as u32).to_le_bytes());
    }
    bytes
}

/// The full cache key of a job: the canonical circuit plus everything
/// else that determines the optimized result (flow and round cap — the
/// thread count deliberately excluded, see [`crate::run_job`]).
///
/// The flow contributes its **normalized** bytes
/// ([`crate::FlowSpec::normalized`]), not the text the client sent: the
/// alias `paper`, its written-out expansion, and any whitespace or
/// `par{}` variant of it all fold to the same key (one warm entry
/// cluster-wide), while specs that differ semantically — `mc(cut=4)` vs
/// `mc(cut=6)` — can never collide.
pub fn job_key(xag: &Xag, flow: &crate::FlowSpec, max_rounds: usize) -> Vec<u8> {
    let mut key = canonical_form(xag);
    key.push(0xff);
    key.extend_from_slice(flow.normalized().as_bytes());
    key.extend_from_slice(&(max_rounds as u64).to_le_bytes());
    key
}

/// FNV-1a over a byte string — a compact handle for a key. The semantic
/// cache compares full keys, so collisions cannot corrupt results; the
/// cluster router uses the fingerprint of [`job_key`] as the point it
/// hashes onto the backend ring.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_network::fuzz::{random_xag, FuzzConfig};
    use xag_network::{read_bristol, write_bristol, Signal};

    /// The same function graph, built twice with permuted gate-creation
    /// order and swapped operand order.
    fn build_pair() -> (Xag, Xag) {
        // Graph: o0 = (a & b) ^ (c & !a); o1 = maj(a, b, c).
        let mut p = Xag::new();
        let (a, b, c) = (p.input(), p.input(), p.input());
        let ab = p.and(a, b);
        let ca = p.and(c, !a);
        let x = p.xor(ab, ca);
        let m = p.maj(a, b, c);
        p.output(x);
        p.output(m);

        // Same graph, different creation order and swapped operands.
        let mut q = Xag::new();
        let (a, b, c) = (q.input(), q.input(), q.input());
        let ca = q.and(!a, c);
        let m = q.maj(a, b, c);
        let ab = q.and(b, a);
        let x = q.xor(ca, ab);
        q.output(x);
        q.output(m);
        (p, q)
    }

    #[test]
    fn permuted_isomorphic_networks_share_a_canonical_form() {
        let (p, q) = build_pair();
        assert_eq!(canonical_form(&p), canonical_form(&q));
        assert_eq!(
            fingerprint(&canonical_form(&p)),
            fingerprint(&canonical_form(&q))
        );
    }

    #[test]
    fn bristol_round_trip_preserves_the_canonical_form() {
        // Export → reimport renumbers every node; the canonical form must
        // not notice.
        let cfg = FuzzConfig::default();
        for seed in 0..10u64 {
            let x = random_xag(&cfg, seed);
            let mut buf = Vec::new();
            write_bristol(&x, &mut buf).unwrap();
            let y = read_bristol(buf.as_slice()).unwrap();
            assert_eq!(canonical_form(&x), canonical_form(&y), "seed {seed}");
        }
    }

    #[test]
    fn different_structure_different_form() {
        let mut p = Xag::new();
        let (a, b) = (p.input(), p.input());
        let g = p.and(a, b);
        p.output(g);
        let mut q = Xag::new();
        let (a, b) = (q.input(), q.input());
        let g = q.xor(a, b);
        q.output(g);
        assert_ne!(canonical_form(&p), canonical_form(&q));
        // Complemented output is a different circuit, too.
        let mut r = Xag::new();
        let (a, b) = (r.input(), r.input());
        let g = r.and(a, b);
        r.output(!g);
        assert_ne!(canonical_form(&p), canonical_form(&r));
        // Constant outputs work.
        let mut s = Xag::new();
        let _ = s.input();
        s.output(Signal::CONST1);
        let mut t = Xag::new();
        let _ = t.input();
        t.output(Signal::CONST0);
        assert_ne!(canonical_form(&s), canonical_form(&t));
    }

    #[test]
    fn job_key_separates_flows_and_round_caps() {
        let spec = |text: &str| crate::FlowSpec::parse(text).expect("test specs parse");
        let (p, _) = build_pair();
        let a = job_key(&p, &spec("paper"), 100);
        assert_eq!(a, job_key(&p, &spec("paper"), 100));
        assert_ne!(a, job_key(&p, &spec("compress"), 100));
        assert_ne!(a, job_key(&p, &spec("paper"), 50));
    }

    /// Alias, expansion, whitespace variants, and `par{}` wrappers of
    /// one flow share a single cache key; semantically distinct knobs
    /// never do.
    #[test]
    fn job_key_folds_the_normalized_spec() {
        let spec = |text: &str| crate::FlowSpec::parse(text).expect("test specs parse");
        let (p, _) = build_pair();
        let paper = job_key(&p, &spec("paper"), 100);
        for equivalent in [
            "{mc(cut=4);mc(cut=6)}*",
            " { mc( cut = 4 ) ; mc( cut = 6 ) } * ",
            "par(threads=4){mc(cut=4);mc(cut=6)}*",
        ] {
            assert_eq!(paper, job_key(&p, &spec(equivalent), 100), "{equivalent}");
        }
        assert_ne!(
            job_key(&p, &spec("mc(cut=4)"), 100),
            job_key(&p, &spec("mc(cut=6)"), 100),
            "distinct cut knobs must miss each other"
        );
        assert_ne!(
            job_key(&p, &spec("mc(cut=6)*2"), 100),
            job_key(&p, &spec("mc(cut=6)*3"), 100)
        );
    }
}
