//! The parallel sharded rewriting engine.
//!
//! The paper's cut-rewriting loop is embarrassingly parallel at the cut
//! level: candidate cuts are classified, resynthesized, and evaluated
//! independently. Concurrent *mutation* of one strashed network is where
//! semantic corruption creeps in, though, so this engine splits every
//! round into three phases with very different concurrency regimes:
//!
//! 1. **Shard** — the frozen network is partitioned into disjoint
//!    fanout-free windows ([`partition_windows`]): every single-fanout gate
//!    is grouped with the gate that consumes it, so each window is an
//!    MFFC-style cluster that one rewrite is likely to touch as a whole.
//!    Windows are packed into shards balanced by estimated cut work.
//! 2. **Propose** — a worker pool on [`std::thread::scope`] claims shards
//!    off a shared queue. Each worker owns a thread-local [`OptContext`]
//!    fork and, for every root in its shards, evaluates all enumerated
//!    cuts *read-only* against the frozen network, producing the best
//!    [`Proposal`] per root. Because classification and synthesis are
//!    deterministic, a proposal depends only on the frozen network — never
//!    on which worker computed it or on cache state.
//! 3. **Commit** — back on one thread, proposals are applied in
//!    topological order with full re-validation against the live network
//!    (leaves alive, cut function unchanged, gain re-computed with exact
//!    MFFC dereferencing, acyclicity). Losers are rolled back to an arena
//!    watermark ([`xag_network::Xag::reclaim_above`]), so rejected
//!    candidates never leak.
//!
//! The commit order and every accept decision are pure functions of the
//! frozen snapshot, so the result is **bit-identical for every thread
//! count** — the property `tests/parallel.rs` pins down. The only
//! randomness is the seeded shard-claim shuffle (load balancing), which
//! affects wall-clock only; it draws from [`mc_rng`], never wall-clock.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use mc_rng::Rng;
use xag_cuts::{enumerate_cuts_for, CutParams, CutSets};
use xag_network::{ConeScratch, FragRef, NodeId, NodeKind, Signal, Xag, XagFragment};
use xag_tt::hash::{FxHashMap, FxHashSet};
use xag_tt::Tt;

use crate::context::OptContext;
use crate::pass::PassStats;
use crate::Objective;

/// How many shards to cut the work into: a few per thread, so the shared
/// queue can rebalance when windows have uneven rewrite cost.
const SHARDS_PER_THREAD: usize = 4;

/// One unit of proposal work: a topologically contiguous set of window
/// roots with their member gates.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Rewrite roots owned by this shard, in topological order.
    pub roots: Vec<NodeId>,
    /// Estimated work (total enumerated cuts over all roots).
    pub weight: usize,
}

/// A rewrite proposed against the frozen snapshot, waiting for commit.
#[derive(Debug, Clone)]
struct Proposal {
    /// The root gate the candidate replaces.
    root: NodeId,
    /// Topological position of `root` in the snapshot (commit sort key).
    pos: usize,
    /// The cut function the candidate implements over `leaves`.
    tt: Tt,
    /// The replacement circuit.
    frag: XagFragment,
    /// The cut leaves, in the order `frag` expects its inputs.
    leaves: Vec<NodeId>,
}

/// Partitions the live gates of `xag` into at most `num_shards` disjoint
/// shards of fanout-free windows.
///
/// A gate with a single reference belongs to the window of its unique
/// fanout (it is inside that gate's maximum fanout-free cone); every other
/// gate roots a window of its own. Whole windows are then packed into
/// shards by cumulative cut count, walking the windows in topological
/// order so each shard covers a contiguous slice of the network.
pub fn partition_windows(
    xag: &Xag,
    order: &[NodeId],
    sets: &CutSets,
    num_shards: usize,
) -> Vec<Shard> {
    // Window assignment, bottom-up: a single-fanout gate joins its
    // consumer's window once that consumer is seen; since `order` is
    // topological, walk it in reverse so consumers are assigned first.
    // Node ids are dense, so the assignment is a flat side table.
    const UNASSIGNED: NodeId = NodeId::MAX;
    let mut window_of: Vec<NodeId> = vec![UNASSIGNED; xag.capacity()];
    for &n in order.iter().rev() {
        if window_of[n as usize] == UNASSIGNED {
            window_of[n as usize] = n;
        }
        let root = window_of[n as usize];
        let (f0, f1) = xag.fanins(n);
        for f in [f0, f1] {
            let fi = f.node();
            if xag.is_gate(fi) && xag.nref(fi) == 1 {
                window_of[fi as usize] = root;
            }
        }
    }
    // Collect window members in topological order, keyed by window root.
    let mut members: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    let mut window_order: Vec<NodeId> = Vec::new();
    for &n in order {
        let root = window_of[n as usize];
        let entry = members.entry(root).or_default();
        if entry.is_empty() {
            window_order.push(root);
        }
        entry.push(n);
    }
    // Pack windows into shards by cumulative weight.
    let total_weight: usize = order.iter().map(|&n| sets.of(n).len().max(1)).sum();
    let num_shards = num_shards.clamp(1, window_order.len().max(1));
    let target = total_weight.div_ceil(num_shards);
    let mut shards: Vec<Shard> = Vec::with_capacity(num_shards);
    let mut current = Shard {
        roots: Vec::new(),
        weight: 0,
    };
    for w in window_order {
        let window = &members[&w];
        let weight: usize = window.iter().map(|&n| sets.of(n).len().max(1)).sum();
        if !current.roots.is_empty()
            && current.weight + weight > target
            && shards.len() + 1 < num_shards
        {
            shards.push(std::mem::replace(
                &mut current,
                Shard {
                    roots: Vec::new(),
                    weight: 0,
                },
            ));
        }
        current.roots.extend_from_slice(window);
        current.weight += weight;
    }
    if !current.roots.is_empty() {
        shards.push(current);
    }
    shards
}

/// Reusable buffers for [`frozen_mffc_with`]: one decrement map and one
/// doomed set per worker, cleared (capacity kept) per measured cut instead
/// of freshly allocated.
#[derive(Debug, Default)]
struct MffcScratch {
    dec: FxHashMap<NodeId, u32>,
    doomed: FxHashSet<NodeId>,
}

/// Read-only MFFC measurement on a frozen network: the `(AND, total)`
/// gates that removing `root` (bounded by `leaves`) would free. The member
/// set is left in `scratch.doomed`. Mirrors [`Xag::deref_cone`] with a
/// local decrement map instead of mutating reference counts, so any number
/// of workers can measure overlapping cones concurrently.
fn frozen_mffc_with(
    xag: &Xag,
    root: NodeId,
    leaves: &[NodeId],
    scratch: &mut MffcScratch,
) -> (u32, u32) {
    scratch.dec.clear();
    scratch.doomed.clear();
    scratch.doomed.insert(root);
    frozen_mffc_rec(xag, root, leaves, &mut scratch.dec, &mut scratch.doomed)
}

#[cfg(test)]
fn frozen_mffc(xag: &Xag, root: NodeId, leaves: &[NodeId]) -> (u32, u32, FxHashSet<NodeId>) {
    let mut scratch = MffcScratch::default();
    let (ands, total) = frozen_mffc_with(xag, root, leaves, &mut scratch);
    (ands, total, scratch.doomed)
}

fn frozen_mffc_rec(
    xag: &Xag,
    n: NodeId,
    leaves: &[NodeId],
    dec: &mut FxHashMap<NodeId, u32>,
    doomed: &mut FxHashSet<NodeId>,
) -> (u32, u32) {
    let mut ands = (xag.kind(n) == NodeKind::And) as u32;
    let mut total = 1u32;
    let (f0, f1) = xag.fanins(n);
    for f in [f0, f1] {
        let fi = f.node();
        let seen = {
            let d = dec.entry(fi).or_insert(0);
            *d += 1;
            *d
        };
        if xag.nref(fi) == seen && xag.is_gate(fi) && !leaves.contains(&fi) {
            doomed.insert(fi);
            let (a, t) = frozen_mffc_rec(xag, fi, leaves, dec, doomed);
            ands += a;
            total += t;
        }
    }
    (ands, total)
}

/// Read-only stand-in for [`XagFragment::count_new_gates`] on a frozen
/// network: gates that hash to live nodes outside the doomed MFFC are
/// free, everything else costs its own gate (reusing a doomed node would
/// keep it alive, cancelling the gain attributed to removing it).
fn estimate_new_gates(
    xag: &Xag,
    frag: &XagFragment,
    leaves: &[Signal],
    doomed: &FxHashSet<NodeId>,
    outs: &mut Vec<Option<Signal>>,
) -> (usize, usize) {
    outs.clear();
    outs.reserve(frag.gates().len());
    let mut added_ands = 0usize;
    let mut added_total = 0usize;
    let resolve = |r: FragRef, outs: &[Option<Signal>]| -> Option<Signal> {
        match r {
            FragRef::Const(c) => Some(Signal::CONST0 ^ c),
            FragRef::Input(i, c) => Some(leaves[i as usize] ^ c),
            FragRef::Gate(g, c) => outs[g as usize].map(|s| s ^ c),
        }
    };
    for gate in frag.gates() {
        let a = resolve(gate.a, outs);
        let b = resolve(gate.b, outs);
        let hit = match (a, b) {
            (Some(a), Some(b)) => {
                if gate.is_and {
                    xag.lookup_and(a, b)
                } else {
                    xag.lookup_xor(a, b)
                }
            }
            _ => None,
        };
        match hit {
            Some(s)
                if s.is_const()
                    || !xag.is_gate(s.node())
                    || (xag.nref(s.node()) > 0 && !doomed.contains(&s.node())) =>
            {
                outs.push(Some(s));
            }
            Some(s) => {
                if gate.is_and {
                    added_ands += 1;
                }
                added_total += 1;
                outs.push(Some(s));
            }
            None => {
                if gate.is_and {
                    added_ands += 1;
                }
                added_total += 1;
                outs.push(None);
            }
        }
    }
    (added_ands, added_total)
}

/// Evaluates every cut of every root in one shard against the frozen
/// network and returns the best proposal per root (plus the number of cut
/// candidates considered).
///
/// Cut functions come straight out of the enumeration sweep
/// ([`CutSets::functions_of`]): the snapshot is frozen for the whole
/// proposal phase, so the tables computed during enumeration are exactly
/// what a cone traversal would return — enumeration and function
/// computation are one fused pass.
fn propose_shard(
    xag: &Xag,
    ctx: &mut OptContext,
    sets: &CutSets,
    shard: &Shard,
    pos: &[usize],
    objective: Objective,
) -> (Vec<Proposal>, usize) {
    let mut proposals = Vec::new();
    let mut considered = 0usize;
    let mut mffc = MffcScratch::default();
    let mut outs: Vec<Option<Signal>> = Vec::new();
    for &root in &shard.roots {
        let mut best: Option<(i64, Proposal)> = None;
        let tts = sets.functions_of(root);
        for (ci, cut) in sets.of(root).iter().enumerate() {
            if cut.size() < 2 {
                continue; // trivial and single-leaf cuts
            }
            let tt = tts[ci];
            if tt.is_constant() {
                continue;
            }
            considered += 1;
            let candidate = ctx.candidate_for_cut(tt);
            let mut leaves = [Signal::CONST0; 6];
            for (k, &l) in cut.leaves().iter().enumerate() {
                leaves[k] = Signal::new(l, false);
            }
            let (freed_ands, freed_total) = frozen_mffc_with(xag, root, cut.leaves(), &mut mffc);
            let (added_ands, added_total) = estimate_new_gates(
                xag,
                &candidate,
                &leaves[..cut.size()],
                &mffc.doomed,
                &mut outs,
            );
            let gain = match objective {
                Objective::MultiplicativeComplexity => freed_ands as i64 - added_ands as i64,
                Objective::Size => freed_total as i64 - added_total as i64,
            };
            if gain > 0 && best.as_ref().map(|(g, _)| gain > *g).unwrap_or(true) {
                best = Some((
                    gain,
                    Proposal {
                        root,
                        pos: pos[root as usize],
                        tt,
                        frag: candidate,
                        leaves: cut.leaves().to_vec(),
                    },
                ));
            }
        }
        if let Some((_, p)) = best {
            proposals.push(p);
        }
    }
    (proposals, considered)
}

/// Applies proposals in topological order, re-validating each against the
/// live network. Returns the number of accepted rewrites.
///
/// A proposal wins iff, *on the network as left by the previous winners*:
/// its root and all leaves are still alive, the cut still computes the
/// proposed function, the exact gain (MFFC dereferencing + hash-aware
/// dry-run, identical to the sequential round) is still positive, and the
/// substitution is acyclic. Everything else is rolled back to the arena
/// watermark recorded before instantiation.
fn commit_proposals(xag: &mut Xag, mut proposals: Vec<Proposal>, objective: Objective) -> usize {
    proposals.sort_by_key(|p| p.pos);
    let mut applied = 0usize;
    let mut cone = ConeScratch::new();
    for p in proposals {
        if xag.is_dead(p.root) || !xag.is_gate(p.root) {
            continue;
        }
        if p.leaves.iter().any(|&l| xag.is_dead(l)) {
            continue;
        }
        // The cut must still compute the function the fragment implements;
        // earlier commits may have rewired the cone.
        if xag.cone_tt_with(p.root, &p.leaves, &mut cone) != Some(p.tt) {
            continue;
        }
        let leaf_signals: Vec<Signal> = p.leaves.iter().map(|&l| Signal::new(l, false)).collect();
        let (freed_ands, freed_total) = xag.deref_cone(p.root, &p.leaves);
        let (added_ands, added_total) = p.frag.count_new_gates(xag, &leaf_signals);
        xag.ref_cone(p.root, &p.leaves);
        let gain = match objective {
            Objective::MultiplicativeComplexity => freed_ands as i64 - added_ands as i64,
            Objective::Size => freed_total as i64 - added_total as i64,
        };
        if gain <= 0 {
            continue;
        }
        let watermark = xag.capacity();
        let new_sig = p.frag.instantiate(xag, &leaf_signals);
        if new_sig.node() != p.root && !xag.is_in_tfi(p.root, new_sig) {
            xag.substitute(p.root, new_sig);
            applied += 1;
        } else {
            xag.reclaim_above(watermark);
        }
    }
    applied
}

/// One parallel rewriting round: shard, propose on `threads` workers,
/// commit deterministically. With `threads <= 1` the proposal phase runs
/// inline on the caller's context; results are bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel_rewrite_round(
    xag: &mut Xag,
    ctx: &mut OptContext,
    cut_params: &CutParams,
    objective: Objective,
    threads: usize,
    seed: u64,
    pass_name: &str,
) -> PassStats {
    let _round = mc_obs::prof::phase("par_rewrite");
    // lint: allow(determinism): wall-clock feeds PassStats/metrics timing only; never branches on it
    let start = Instant::now();
    let order = xag.live_gates();
    let (ands_before, xors_before) = crate::pass::count_gates(xag, &order);

    let sets = {
        let _p = mc_obs::prof::phase("cut_enum");
        enumerate_cuts_for(xag, &order, cut_params)
    };
    let mut pos: Vec<usize> = vec![0; xag.capacity()];
    for (i, &n) in order.iter().enumerate() {
        pos[n as usize] = i;
    }

    let threads = threads.max(1);
    let num_shards = if threads == 1 {
        1
    } else {
        threads * SHARDS_PER_THREAD
    };
    let shards = partition_windows(xag, &order, &sets, num_shards);
    mc_obs::registry()
        .counter("mc_shard_windows_total")
        .add(shards.len() as u64);

    // lint: allow(determinism): wall-clock feeds PassStats/metrics timing only; never branches on it
    let propose_start = Instant::now();
    let mut propose_span = mc_obs::span("shard:propose");
    let mut proposals: Vec<Proposal> = Vec::new();
    let mut considered = 0usize;
    if threads == 1 || shards.len() <= 1 {
        for shard in &shards {
            let _p = mc_obs::prof::phase("propose");
            let (props, c) = propose_shard(xag, ctx, &sets, shard, &pos, objective);
            proposals.extend(props);
            considered += c;
        }
    } else {
        // Claim order is shuffled (seeded) so long windows spread across
        // workers; the claim order cannot affect results, only wall-clock.
        let mut claim: Vec<usize> = (0..shards.len()).collect();
        Rng::seed_from_u64(seed).shuffle(&mut claim);
        let next = AtomicUsize::new(0);
        let frozen: &Xag = xag;
        // Trace IDs live in a thread-local; carry the round's ID into the
        // scoped workers so their propose spans join the job's trace.
        let trace_id = mc_obs::current_trace_id();
        let (all, forks) = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads.min(shards.len()))
                .map(|_| {
                    let mut wctx = ctx.fork();
                    let (claim, next, shards, sets, pos) = (&claim, &next, &shards, &sets, &pos);
                    s.spawn(move || {
                        let _trace = mc_obs::trace_scope(trace_id);
                        // The worker's own phase stack roots at the round
                        // name, so its per-shard propose phases fold to the
                        // same `par_rewrite;propose` path the inline run
                        // produces — and flush once per worker, not per
                        // shard, when the root guard drops.
                        let _round = mc_obs::prof::phase("par_rewrite");
                        let mut mine: Vec<(usize, Vec<Proposal>, usize)> = Vec::new();
                        loop {
                            // Schedule-fuzz crossing: inert in production
                            // (one relaxed load), perturbs the claim race
                            // under `tests/schedule_fuzz.rs` to prove the
                            // commit is claim-order-independent.
                            mc_rng::sched::yield_point(mc_rng::sched::site::SHARD_CLAIM);
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= claim.len() {
                                break;
                            }
                            let si = claim[k];
                            let _p = mc_obs::prof::phase("propose");
                            let (props, c) =
                                propose_shard(frozen, &mut wctx, sets, &shards[si], pos, objective);
                            drop(_p);
                            mc_rng::sched::yield_point(mc_rng::sched::site::SHARD_PROPOSE);
                            mine.push((si, props, c));
                        }
                        (mine, wctx)
                    })
                })
                .collect();
            let mut all: Vec<(usize, Vec<Proposal>, usize)> = Vec::new();
            let mut forks: Vec<OptContext> = Vec::new();
            for h in handles {
                let (mine, wctx) = h.join().expect("rewrite worker panicked");
                all.extend(mine);
                forks.push(wctx);
            }
            (all, forks)
        });
        for fork in forks {
            ctx.absorb(fork);
        }
        // Deterministic aggregation: shard index order, not completion
        // order.
        let mut all = all;
        all.sort_by_key(|(si, _, _)| *si);
        for (_, props, c) in all {
            proposals.extend(props);
            considered += c;
        }
    }

    propose_span.detail(format!(
        "windows={} proposals={} considered={considered}",
        shards.len(),
        proposals.len()
    ));
    drop(propose_span);
    mc_obs::registry()
        .histogram("mc_shard_propose_us")
        .record(propose_start.elapsed().as_micros() as u64);

    // lint: allow(determinism): wall-clock feeds PassStats/metrics timing only; never branches on it
    let commit_start = Instant::now();
    let num_proposals = proposals.len();
    let applied = {
        let _p = mc_obs::prof::phase("commit_validate");
        commit_proposals(xag, proposals, objective)
    };
    let reg = mc_obs::registry();
    reg.histogram("mc_shard_commit_us")
        .record(commit_start.elapsed().as_micros() as u64);
    reg.counter("mc_shard_proposals_total")
        .add(num_proposals as u64);
    reg.counter("mc_shard_commits_total").add(applied as u64);
    mc_obs::record(
        "shard:commit",
        mc_obs::epoch_us().saturating_sub(commit_start.elapsed().as_micros() as u64),
        commit_start.elapsed().as_micros() as u64,
        format!("proposals={num_proposals} applied={applied}"),
    );

    PassStats {
        pass: pass_name.to_string(),
        ands_before,
        xors_before,
        ands_after: xag.num_ands(),
        xors_after: xag.num_xors(),
        rewrites_applied: applied,
        cuts_considered: considered,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_cuts::enumerate_cuts;
    use xag_network::equiv_exhaustive;

    fn textbook_full_adder() -> Xag {
        let mut xag = Xag::new();
        let (a, b, cin) = (xag.input(), xag.input(), xag.input());
        let ab = xag.and(a, b);
        let ac = xag.and(a, cin);
        let bc = xag.and(b, cin);
        let t = xag.xor(ab, ac);
        let cout = xag.xor(t, bc);
        let axb = xag.xor(a, b);
        let sum = xag.xor(axb, cin);
        xag.output(sum);
        xag.output(cout);
        xag
    }

    fn random_mixed_network(seed: u64) -> Xag {
        let mut xag = Xag::new();
        let ins: Vec<Signal> = (0..6).map(|_| xag.input()).collect();
        let mut pool = ins.clone();
        let mut rng = Rng::seed_from_u64(seed);
        for k in 0..40 {
            let a = pool[rng.gen_range(0..pool.len())] ^ rng.gen();
            let b = pool[rng.gen_range(0..pool.len())] ^ rng.gen();
            let s = if k % 3 == 0 {
                xag.xor(a, b)
            } else {
                xag.and(a, b)
            };
            pool.push(s);
        }
        for s in pool.iter().rev().take(4) {
            xag.output(*s);
        }
        xag
    }

    #[test]
    fn windows_partition_all_live_gates() {
        let xag = random_mixed_network(11);
        let sets = enumerate_cuts(&xag, &CutParams::default());
        let order = xag.live_gates();
        for shards in [
            partition_windows(&xag, &order, &sets, 1),
            partition_windows(&xag, &order, &sets, 3),
            partition_windows(&xag, &order, &sets, 64),
        ] {
            let mut covered: Vec<NodeId> = shards.iter().flat_map(|s| s.roots.clone()).collect();
            covered.sort_unstable();
            let mut expected = order.clone();
            expected.sort_unstable();
            assert_eq!(covered, expected, "every live gate in exactly one shard");
        }
    }

    #[test]
    fn single_fanout_gates_share_a_shard_with_their_consumer() {
        let xag = textbook_full_adder();
        let sets = enumerate_cuts(&xag, &CutParams::default());
        let order = xag.live_gates();
        // Ask for more shards than windows: splits happen only at window
        // boundaries, so every single-fanout gate stays with its consumer.
        let shards = partition_windows(&xag, &order, &sets, 64);
        for shard in &shards {
            for &n in &shard.roots {
                if xag.nref(n) == 1 {
                    let consumer_shard = shards
                        .iter()
                        .position(|s| {
                            s.roots.iter().any(|&m| {
                                m != n
                                    && xag.is_gate(m)
                                    && (xag.fanins(m).0.node() == n || xag.fanins(m).1.node() == n)
                            })
                        })
                        .or_else(|| shards.iter().position(|s| s.roots.contains(&n)));
                    assert_eq!(
                        consumer_shard,
                        shards.iter().position(|s| s.roots.contains(&n)),
                        "gate {n} separated from its single consumer"
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_mffc_matches_deref_cone() {
        let mut xag = random_mixed_network(5);
        let order = xag.live_gates();
        let sets = enumerate_cuts(&xag, &CutParams::default());
        for &root in &order {
            for cut in sets.of(root) {
                if cut.size() < 2 {
                    continue;
                }
                let (fa, ft, _) = frozen_mffc(&xag, root, cut.leaves());
                let (da, dt) = xag.deref_cone(root, cut.leaves());
                xag.ref_cone(root, cut.leaves());
                assert_eq!((fa, ft), (da, dt), "root {root} cut {:?}", cut.leaves());
            }
        }
    }

    #[test]
    fn parallel_round_preserves_function_and_reduces_ands() {
        for seed in [1u64, 2, 3, 4] {
            let mut xag = random_mixed_network(seed);
            let reference = xag.cleanup();
            let before = xag.num_ands();
            let mut ctx = OptContext::new();
            let stats = parallel_rewrite_round(
                &mut xag,
                &mut ctx,
                &CutParams::default(),
                Objective::MultiplicativeComplexity,
                2,
                0xDAC19,
                "par-test",
            );
            assert!(xag.num_ands() <= before);
            assert_eq!(stats.ands_after, xag.num_ands());
            assert!(equiv_exhaustive(&reference, &xag.cleanup()), "seed {seed}");
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        for seed in [7u64, 8, 9] {
            let base = random_mixed_network(seed);
            let mut results = Vec::new();
            for threads in [1usize, 2, 4] {
                let mut xag = base.cleanup();
                let mut ctx = OptContext::new();
                parallel_rewrite_round(
                    &mut xag,
                    &mut ctx,
                    &CutParams::default(),
                    Objective::MultiplicativeComplexity,
                    threads,
                    0xDAC19,
                    "par-test",
                );
                let clean = xag.cleanup();
                results.push((clean.num_ands(), clean.num_xors()));
            }
            assert_eq!(results[0], results[1], "seed {seed}: 1 vs 2 threads");
            assert_eq!(results[0], results[2], "seed {seed}: 1 vs 4 threads");
        }
    }
}
