//! Protocol-level cost models from the paper's §1 motivation.
//!
//! The paper motivates AND minimization through three application domains;
//! this module turns a network's gate counts into those domain costs so
//! users can see what a rewrite is worth in protocol terms:
//!
//! * **MPC over garbled circuits with free XOR** — the garbler transmits
//!   ciphertexts per AND gate only (two with the half-gates optimization);
//! * **FHE** — XOR is noise-free, AND consumes noise: the *multiplicative
//!   depth* bounds the required ciphertext modulus/levels;
//! * **Post-quantum signatures from MPC-in-the-head (Picnic-style)** — the
//!   paper cites that the signature size is proportional to the AND count
//!   of the underlying block cipher.

use xag_network::Xag;

/// Cost summary of a network under the paper's three application models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolCosts {
    /// Number of AND gates (the multiplicative complexity of the circuit).
    pub ands: usize,
    /// Number of XOR gates (free in all three models).
    pub xors: usize,
    /// Multiplicative depth (FHE levels).
    pub and_depth: usize,
    /// Bytes the garbler transmits under half-gates garbling
    /// (2 ciphertexts of 16 bytes per AND; XOR free).
    pub garbled_bytes: usize,
    /// Per-AND contribution to an MPC-in-the-head signature, in bits,
    /// using the ZKB++/Picnic accounting of roughly three bits of view per
    /// AND per parallel repetition, at 219 repetitions for 128-bit
    /// security.
    pub signature_bits: usize,
}

/// Half-gates garbling: ciphertexts per AND gate.
const HALF_GATES_CIPHERTEXTS: usize = 2;
/// AES-128-based ciphertext size in bytes.
const CIPHERTEXT_BYTES: usize = 16;
/// ZKB++ parallel repetitions for 128-bit security (Picnic-L1).
const MPC_ITH_REPETITIONS: usize = 219;
/// Bits of view revealed per AND gate per repetition in ZKB++.
const BITS_PER_AND_PER_REP: usize = 3;

/// Evaluates the three cost models on a network.
///
/// # Examples
///
/// ```
/// use xag_mc::{protocol_costs, McOptimizer};
/// use xag_network::Xag;
///
/// let mut xag = Xag::new();
/// let (a, b, c) = (xag.input(), xag.input(), xag.input());
/// let ab = xag.and(a, b);
/// let ac = xag.and(a, c);
/// let t = xag.xor(ab, ac);
/// xag.output(t);
/// let before = protocol_costs(&xag);
/// McOptimizer::new().run_to_convergence(&mut xag);
/// let after = protocol_costs(&xag);
/// assert!(after.garbled_bytes < before.garbled_bytes);
/// ```
pub fn protocol_costs(xag: &Xag) -> ProtocolCosts {
    let ands = xag.num_ands();
    ProtocolCosts {
        ands,
        xors: xag.num_xors(),
        and_depth: xag.and_depth(),
        garbled_bytes: ands * HALF_GATES_CIPHERTEXTS * CIPHERTEXT_BYTES,
        signature_bits: ands * BITS_PER_AND_PER_REP * MPC_ITH_REPETITIONS,
    }
}

impl core::fmt::Display for ProtocolCosts {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} AND / {} XOR | depth {} | garbling {} B | MPC-in-the-head ≈ {} KiB/signature",
            self.ands,
            self.xors,
            self.and_depth,
            self.garbled_bytes,
            self.signature_bits / 8 / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_ands_only() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let g = x.and(a, b);
        let h = x.xor(g, a);
        x.output(h);
        let c = protocol_costs(&x);
        assert_eq!(c.ands, 1);
        assert_eq!(c.xors, 1);
        assert_eq!(c.and_depth, 1);
        assert_eq!(c.garbled_bytes, 32);
        assert_eq!(c.signature_bits, 3 * 219);

        // Adding XORs must not change AND-driven costs.
        let mut y = Xag::new();
        let a = y.input();
        let b = y.input();
        let g = y.and(a, b);
        let t1 = y.xor(g, a);
        let t2 = y.xor(t1, b);
        y.output(t2);
        let c2 = protocol_costs(&y);
        assert_eq!(c2.garbled_bytes, c.garbled_bytes);
        assert_eq!(c2.signature_bits, c.signature_bits);
    }

    #[test]
    fn display_is_informative() {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let g = x.and(a, b);
        x.output(g);
        let text = format!("{}", protocol_costs(&x));
        assert!(text.contains("1 AND"));
        assert!(text.contains("depth 1"));
    }
}
