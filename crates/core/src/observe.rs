//! The optimizer's instrumentation boundary.
//!
//! Every pass execution funnels through [`pass_boundary`], which fans one
//! `PassStats` out to the three observability surfaces: the metric
//! registry (aggregate histogram + per-pass labeled counters), the trace
//! ring (one `pass:<name>` span under the job's trace ID), and the job
//! progress board (so `Status` can report where a running job is).
//!
//! This is where the optimizer's *metrics and traces* touch `mc_obs`,
//! and it runs once per pass — never per node or per cut — so the
//! overhead is a few relaxed atomics and one ring push per round,
//! invisible next to a rewriting round's millions of cut evaluations.
//! The phase profiler (`mc_obs::prof`) is the other instrumentation
//! surface: passes and the shard engine enter phases directly at pass,
//! round, shard, and node granularity.

use crate::pass::PassStats;

/// Records one executed pass: metrics, a trace span, and a progress
/// update. Called by the pipeline convergence loop, `run_once`, and the
/// flow interpreter's direct pass execution.
pub(crate) fn pass_boundary(stats: &PassStats) {
    let elapsed_us = stats.elapsed.as_micros() as u64;
    let reg = mc_obs::registry();
    reg.histogram("mc_pass_elapsed_us").record(elapsed_us);
    reg.counter(&format!("mc_pass_runs_total{{pass=\"{}\"}}", stats.pass))
        .inc();
    reg.counter(&format!(
        "mc_pass_elapsed_us_total{{pass=\"{}\"}}",
        stats.pass
    ))
    .add(elapsed_us);
    reg.counter("mc_rewrites_applied_total")
        .add(stats.rewrites_applied as u64);
    reg.counter("mc_cuts_considered_total")
        .add(stats.cuts_considered as u64);
    mc_obs::record(
        &format!("pass:{}", stats.pass),
        mc_obs::epoch_us().saturating_sub(elapsed_us),
        elapsed_us,
        format!(
            "rewrites={} cuts={} ands={}->{}",
            stats.rewrites_applied, stats.cuts_considered, stats.ands_before, stats.ands_after
        ),
    );
    mc_obs::update_current(&stats.pass);
}
