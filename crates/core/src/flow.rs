//! FlowSpec — a small textual DSL and typed AST for optimization flows.
//!
//! The service tiers used to expose exactly three hardcoded flows
//! through a closed enum. A [`FlowSpec`] replaces that with a
//! *description* of a flow that can be parsed from a string, validated,
//! normalized to canonical bytes (the cache-key contribution), and
//! executed through the existing [`Pipeline`] machinery — so arbitrary
//! client-defined flows travel over the wire, ABC-script style.
//!
//! # Grammar
//!
//! ```text
//! spec   := seq
//! seq    := item ( ';' item )* ( ';' )?
//! item   := unit repeat?
//! unit   := atom | group | par | alias
//! atom   := 'mc'   ( '(' 'cut' '=' INT ')' )?      # MC-objective cut rewriting
//!         | 'size' ( '(' 'cut' '=' INT ')' )?      # unit-cost cut rewriting
//!         | 'xor'                                  # Paar linear-layer reduction
//!         | 'cleanup'                              # arena compaction
//! group  := '{' seq '}'
//! par    := 'par' '(' 'threads' '=' INT ')' '{' seq '}'
//! alias  := 'paper' | 'paper_flow' | 'compress' | 'from_params'
//! repeat := '*' INT?                               # '*k' bounded, bare '*' until convergence
//! ```
//!
//! Whitespace is insignificant. The default cut size is 6 (the paper's
//! setting), so `mc` ≡ `mc(cut=6)`. The canonical aliases expand to
//! specs (see [`FlowSpec::aliases`]); because an alias already carries
//! its own until-convergence repetition, `paper*3` is rejected — wrap it
//! in braces to repeat it.
//!
//! # Semantics
//!
//! * A bare item runs once; `*k` runs it `k` times.
//! * `unit*` repeats the unit's passes **until convergence** with the
//!   exact schedule of [`Pipeline::run`]: the current pass repeats while
//!   it improves the metric, then the flow advances cyclically, and the
//!   group has converged once every pass is stale in sequence. The
//!   metric is [`Objective::Size`] when the unit contains a `size` atom
//!   and [`Objective::MultiplicativeComplexity`] otherwise. Nesting a
//!   `*` inside another `*` group is rejected.
//! * `par(threads=N){…}` runs its body with `N` worker threads through
//!   the sharded engine. Thread counts **never change the result**
//!   (bit-identical, see [`crate::shard`]) — which is why
//!   [`FlowSpec::normalize`] erases `par` wrappers entirely.
//! * The whole run is capped at `max_rounds` total pass executions,
//!   shared across the spec; a spec cut off by the cap reports
//!   `converged = false`.
//!
//! # Normalization
//!
//! [`FlowSpec::normalize`] maps every spec to a canonical representative
//! of its semantic class: aliases are already expanded by the parser,
//! knobs are explicit, `*1` becomes a plain item, unrepeated groups are
//! spliced into their parent, single-item groups are hoisted through
//! their repeat, and `par` wrappers are dropped. [`FlowSpec::normalized`]
//! renders that representative without whitespace — the **canonical
//! bytes** that [`crate::canon::job_key`] folds into the semantic-cache
//! key, so `paper`, its expansion, and any whitespace or `par` variant
//! of it share one warm cache entry, while `mc(cut=4)` and `mc(cut=6)`
//! provably miss each other.
//!
//! # Resource guard
//!
//! [`FlowSpec::parse`] rejects hostile specs *before* anything is
//! queued: inputs longer than [`MAX_SPEC_LEN`], nesting beyond
//! [`MAX_SPEC_DEPTH`], repetition counts above [`MAX_SPEC_REPEAT`], and
//! specs whose worst-case pass count ([`FlowSpec::worst_case_passes`])
//! exceeds [`MAX_SPEC_PASSES`]. A `cleanup*9999999` therefore comes back
//! as a structured [`FlowError`] — a protocol error at the service edge,
//! never a pinned worker.
//!
//! # Examples
//!
//! ```
//! use xag_mc::{FlowSpec, OptContext};
//! use xag_network::Xag;
//!
//! let spec = FlowSpec::parse("mc(cut=6);xor;cleanup*").unwrap();
//! assert_eq!(spec.normalized(), "mc(cut=6);xor;cleanup*");
//!
//! // `paper` is an alias for the until-convergence paper flow.
//! let paper = FlowSpec::parse("paper").unwrap();
//! assert_eq!(paper.normalized(), "{mc(cut=4);mc(cut=6)}*");
//!
//! let mut xag = Xag::new();
//! let (a, b) = (xag.input(), xag.input());
//! let g = xag.and(a, b);
//! xag.output(g);
//! let mut ctx = OptContext::new();
//! let stats = spec.run(&mut xag, &mut ctx, 1, 100);
//! assert!(stats.num_rounds() > 0);
//! ```

use xag_network::Xag;

use crate::context::OptContext;
use crate::pass::{Cleanup, McRewrite, Pass, PassStats, SizeRewrite, XorReduce};
use crate::pipeline::{Pipeline, PipelineStats};
use crate::Objective;

/// Longest accepted spec text, in bytes — enforced on the raw input
/// (before tokenizing) *and* on the canonical knob-explicit rendering
/// ([`FlowSpec::validate`]), so any accepted spec still parses after
/// `to_string()` expansion puts it on the wire (`mc` → `mc(cut=6)`,
/// `paper` → its expansion).
pub const MAX_SPEC_LEN: usize = 4096;

/// Deepest accepted `{}`/`par{}` nesting.
pub const MAX_SPEC_DEPTH: usize = 8;

/// Largest accepted bounded repetition count (`*k`).
pub const MAX_SPEC_REPEAT: usize = 1000;

/// Largest accepted worst-case pass count of a whole spec (bounded
/// repetitions multiplied out; until-convergence groups count their body
/// once, because the runtime round cap bounds them).
pub const MAX_SPEC_PASSES: u64 = 10_000;

/// Largest accepted `par(threads=…)` worker count (aligned with the
/// serve tier's per-job thread clamp).
pub const MAX_PAR_THREADS: usize = 8;

/// Smallest accepted `cut=` knob (a 1-cut is trivial).
pub const MIN_SPEC_CUT: usize = 2;

/// Largest accepted `cut=` knob (cut functions must fit one 64-bit truth
/// table — the same bound `xag_cuts` enforces).
pub const MAX_SPEC_CUT: usize = 6;

/// Why a spec was rejected. Rendered messages are sent to remote clients
/// verbatim as protocol errors, so they name the violated limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// The spec contains no items.
    Empty,
    /// The spec text exceeds [`MAX_SPEC_LEN`].
    TooLong {
        /// Length of the rejected input.
        len: usize,
    },
    /// Brace nesting exceeds [`MAX_SPEC_DEPTH`].
    TooDeep,
    /// A `*k` count exceeds [`MAX_SPEC_REPEAT`].
    RepeatTooLarge {
        /// The rejected count.
        count: u64,
    },
    /// The worst-case pass count exceeds [`MAX_SPEC_PASSES`].
    BudgetExceeded {
        /// The computed worst-case pass count.
        passes: u64,
    },
    /// An until-convergence `*` nested inside another `*` group.
    NestedConvergence,
    /// Any other malformed input, with a byte position.
    Syntax {
        /// Byte offset of the offending token.
        pos: usize,
        /// Human-readable description.
        message: String,
    },
}

impl core::fmt::Display for FlowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FlowError::Empty => write!(f, "flow spec is empty"),
            FlowError::TooLong { len } => {
                write!(f, "flow spec is {len} bytes (limit {MAX_SPEC_LEN})")
            }
            FlowError::TooDeep => {
                write!(f, "flow spec nests deeper than {MAX_SPEC_DEPTH} levels")
            }
            FlowError::RepeatTooLarge { count } => {
                write!(f, "repetition *{count} exceeds the limit {MAX_SPEC_REPEAT}")
            }
            FlowError::BudgetExceeded { passes } => write!(
                f,
                "flow spec requests {passes} worst-case passes (budget {MAX_SPEC_PASSES})"
            ),
            FlowError::NestedConvergence => write!(
                f,
                "until-convergence `*` cannot nest inside another `*` group"
            ),
            FlowError::Syntax { pos, message } => {
                write!(f, "flow spec syntax error at byte {pos}: {message}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// How often a [`FlowItem`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Repeat {
    /// Exactly once (no suffix).
    #[default]
    Once,
    /// A fixed number of times (`*k`).
    Times(usize),
    /// Until convergence (bare `*`), under the [`Pipeline::run`]
    /// schedule.
    Converge,
}

/// One unit of a flow: a pass atom or a bracketed sub-flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowUnit {
    /// `mc(cut=N)` — cut rewriting minimizing multiplicative complexity
    /// ([`McRewrite`]).
    Mc {
        /// Cut size, within [`MIN_SPEC_CUT`]..=[`MAX_SPEC_CUT`].
        cut: usize,
    },
    /// `size(cut=N)` — unit-cost cut rewriting ([`SizeRewrite`]).
    Size {
        /// Cut size, within [`MIN_SPEC_CUT`]..=[`MAX_SPEC_CUT`].
        cut: usize,
    },
    /// `xor` — Paar linear-layer reduction ([`XorReduce`]).
    Xor,
    /// `cleanup` — arena compaction ([`Cleanup`]).
    Cleanup,
    /// `{…}` — a sequenced sub-flow.
    Group(Vec<FlowItem>),
    /// `par(threads=N){…}` — a sub-flow run with its own worker count
    /// (scheduling only; results are thread-count independent).
    Par {
        /// Worker threads, within 1..=[`MAX_PAR_THREADS`].
        threads: usize,
        /// The wrapped sub-flow.
        body: Vec<FlowItem>,
    },
}

/// One step of a flow: a unit plus its repetition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowItem {
    /// What runs.
    pub unit: FlowUnit,
    /// How often it runs.
    pub repeat: Repeat,
}

/// A parsed, validated optimization flow. See the
/// [module documentation](self) for grammar and semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowSpec {
    /// The top-level sequence, in execution order. Non-empty.
    pub items: Vec<FlowItem>,
}

impl Default for FlowSpec {
    /// The `paper` flow — the DAC'19 until-convergence schedule.
    fn default() -> Self {
        alias_spec("paper").expect("the paper alias always exists")
    }
}

impl core::str::FromStr for FlowSpec {
    type Err = FlowError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FlowSpec::parse(s)
    }
}

/// The canonical named flows, as `(alias, expansion)` pairs in wire-name
/// order. `paper_flow` is accepted as a historical spelling of `paper`
/// but not listed.
pub const ALIASES: [(&str, &str); 3] = [
    ("paper", "{mc(cut=4);mc(cut=6)}*"),
    ("compress", "{size(cut=4);size(cut=6);xor}*"),
    ("from_params", "{mc(cut=4)}*"),
];

fn alias_item(name: &str) -> Option<FlowItem> {
    let converge_group = |units: &[FlowUnit]| FlowItem {
        unit: FlowUnit::Group(
            units
                .iter()
                .map(|u| FlowItem {
                    unit: u.clone(),
                    repeat: Repeat::Once,
                })
                .collect(),
        ),
        repeat: Repeat::Converge,
    };
    match name {
        "paper" | "paper_flow" => Some(converge_group(&[
            FlowUnit::Mc { cut: 4 },
            FlowUnit::Mc { cut: 6 },
        ])),
        "compress" => Some(converge_group(&[
            FlowUnit::Size { cut: 4 },
            FlowUnit::Size { cut: 6 },
            FlowUnit::Xor,
        ])),
        "from_params" => Some(converge_group(&[FlowUnit::Mc { cut: 4 }])),
        _ => None,
    }
}

fn alias_spec(name: &str) -> Option<FlowSpec> {
    alias_item(name).map(|item| FlowSpec { items: vec![item] })
}

impl FlowSpec {
    /// Parses and validates a spec (aliases accepted). See the
    /// [module documentation](self) for the grammar.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] describing the first violation — a syntax
    /// problem or a resource-guard limit.
    pub fn parse(text: &str) -> Result<FlowSpec, FlowError> {
        if text.len() > MAX_SPEC_LEN {
            return Err(FlowError::TooLong { len: text.len() });
        }
        let toks = tokenize(text)?;
        if toks.is_empty() {
            return Err(FlowError::Empty);
        }
        let mut parser = Parser {
            toks,
            i: 0,
            end: text.len(),
        };
        let items = parser.parse_seq(0)?;
        if let Some((_, pos)) = parser.current() {
            return Err(FlowError::Syntax {
                pos,
                message: "unexpected trailing input".to_string(),
            });
        }
        if items.is_empty() {
            return Err(FlowError::Empty);
        }
        let spec = FlowSpec { items };
        spec.validate()?;
        Ok(spec)
    }

    /// Looks a canonical flow up by its alias ([`ALIASES`], plus the
    /// historical `paper_flow` spelling).
    pub fn named(alias: &str) -> Option<FlowSpec> {
        alias_spec(alias)
    }

    /// The canonical named flows: `(alias, expansion text)` pairs.
    pub fn aliases() -> &'static [(&'static str, &'static str)] {
        &ALIASES
    }

    /// Worst-case total pass executions: bounded repetitions multiplied
    /// out; until-convergence groups count their body once (the runtime
    /// round cap bounds their actual repetition). Saturating.
    pub fn worst_case_passes(&self) -> u64 {
        cost_items(&self.items)
    }

    /// Re-checks the resource-guard limits and structural rules
    /// ([`FlowSpec::parse`] already ran this; hand-built ASTs should call
    /// it before hitting the wire).
    ///
    /// # Errors
    ///
    /// See [`FlowError`].
    pub fn validate(&self) -> Result<(), FlowError> {
        if self.items.is_empty() {
            return Err(FlowError::Empty);
        }
        let passes = self.worst_case_passes();
        if passes > MAX_SPEC_PASSES {
            return Err(FlowError::BudgetExceeded { passes });
        }
        validate_items(&self.items, false)?;
        // The wire carries the knob-explicit rendering, which can be
        // longer than the shorthand a client typed — bound that form
        // too, so an accepted spec always re-parses at the service edge.
        let rendered = self.to_string().len();
        if rendered > MAX_SPEC_LEN {
            return Err(FlowError::TooLong { len: rendered });
        }
        Ok(())
    }

    /// The canonical representative of this spec's semantic class:
    /// `*1` → plain, unrepeated groups spliced, single-item groups
    /// hoisted, `par` wrappers erased (thread counts cannot change
    /// results). Idempotent.
    pub fn normalize(&self) -> FlowSpec {
        FlowSpec {
            items: normalize_items(&self.items),
        }
    }

    /// The canonical bytes of this spec — [`FlowSpec::normalize`]
    /// rendered without whitespace. This string is what
    /// [`crate::canon::job_key`] folds into the semantic-cache key and
    /// what per-flow statistics rows are keyed by.
    pub fn normalized(&self) -> String {
        self.normalize().to_string()
    }

    /// Lowers the spec into a single flat [`Pipeline`]: every pass atom
    /// in order (bounded repetitions expanded, `par` erased), measured on
    /// [`Objective::Size`] iff the spec contains a `size` atom, capped at
    /// `max_rounds`.
    ///
    /// For a spec that is one until-convergence group — every alias is —
    /// this is exactly the pipeline [`FlowSpec::run`] executes, which is
    /// how alias specs stay byte-identical to the historical
    /// [`crate::FlowKind`] flows. Specs with richer structure (bounded
    /// repetition, sequenced convergence groups) need [`FlowSpec::run`],
    /// which honors per-item repetition; this lowering only preserves
    /// their pass multiset.
    pub fn to_pipeline(&self, max_rounds: usize) -> Pipeline {
        let mut passes = Vec::new();
        collect_passes(&self.items, None, &mut passes);
        let mut flow = Pipeline::new()
            .metric(items_metric(&self.items))
            .max_rounds(max_rounds.max(1));
        for pass in passes {
            flow = flow.add_boxed(pass);
        }
        flow
    }

    /// Executes the spec on `xag` with up to `threads` workers (`par`
    /// blocks override locally) and at most `max_rounds` total pass
    /// executions.
    ///
    /// The optimized network depends only on `(xag, self.normalized(),
    /// max_rounds)` — never on any thread count — because every pass runs
    /// through [`Pass::run_parallel`] and the sharded engine is
    /// bit-identical across worker counts.
    pub fn run(
        &self,
        xag: &mut Xag,
        ctx: &mut OptContext,
        threads: usize,
        max_rounds: usize,
    ) -> PipelineStats {
        let budget = max_rounds.max(1);
        let mut executed: Vec<PassStats> = Vec::new();
        let mut converged = true;
        run_items(
            &self.items,
            xag,
            ctx,
            threads.max(1),
            budget,
            &mut executed,
            &mut converged,
        );
        PipelineStats {
            passes: executed,
            converged,
        }
    }
}

impl core::fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write_items(f, &self.items)
    }
}

fn write_items(f: &mut core::fmt::Formatter<'_>, items: &[FlowItem]) -> core::fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(";")?;
        }
        match &item.unit {
            FlowUnit::Mc { cut } => write!(f, "mc(cut={cut})")?,
            FlowUnit::Size { cut } => write!(f, "size(cut={cut})")?,
            FlowUnit::Xor => f.write_str("xor")?,
            FlowUnit::Cleanup => f.write_str("cleanup")?,
            FlowUnit::Group(body) => {
                f.write_str("{")?;
                write_items(f, body)?;
                f.write_str("}")?;
            }
            FlowUnit::Par { threads, body } => {
                write!(f, "par(threads={threads}){{")?;
                write_items(f, body)?;
                f.write_str("}")?;
            }
        }
        match item.repeat {
            Repeat::Once => {}
            Repeat::Times(k) => write!(f, "*{k}")?,
            Repeat::Converge => f.write_str("*")?,
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Validation helpers

fn cost_items(items: &[FlowItem]) -> u64 {
    items
        .iter()
        .map(|item| {
            let unit = match &item.unit {
                FlowUnit::Group(body) | FlowUnit::Par { body, .. } => cost_items(body),
                _ => 1,
            };
            let times = match item.repeat {
                Repeat::Once | Repeat::Converge => 1,
                Repeat::Times(k) => k as u64,
            };
            unit.saturating_mul(times)
        })
        .fold(0u64, u64::saturating_add)
}

fn validate_items(items: &[FlowItem], in_converge: bool) -> Result<(), FlowError> {
    for item in items {
        let converging = matches!(item.repeat, Repeat::Converge);
        if converging && in_converge {
            return Err(FlowError::NestedConvergence);
        }
        match &item.unit {
            FlowUnit::Group(body) | FlowUnit::Par { body, .. } => {
                // The parser cannot produce empty bodies, but hand-built
                // ASTs can — and they would render as `{}`, which the
                // service edge refuses.
                if body.is_empty() {
                    return Err(FlowError::Empty);
                }
                validate_items(body, in_converge || converging)?;
            }
            _ => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Normalization

fn normalize_items(items: &[FlowItem]) -> Vec<FlowItem> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        // `par` is a scheduling hint with no semantic content — erase it.
        let unit = match &item.unit {
            FlowUnit::Group(body) | FlowUnit::Par { body, .. } => {
                FlowUnit::Group(normalize_items(body))
            }
            atom => atom.clone(),
        };
        let repeat = match item.repeat {
            Repeat::Times(1) => Repeat::Once,
            other => other,
        };
        match (unit, repeat) {
            // An unrepeated group is pure sequencing — splice it.
            (FlowUnit::Group(body), Repeat::Once) => out.extend(body),
            // A repeated single-pass group is the repeated pass.
            (FlowUnit::Group(body), rep) if body.len() == 1 && body[0].repeat == Repeat::Once => {
                let inner = body.into_iter().next().expect("len checked");
                out.push(FlowItem {
                    unit: inner.unit,
                    repeat: rep,
                });
            }
            (unit, repeat) => out.push(FlowItem { unit, repeat }),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Lowering and execution

fn atom_pass(unit: &FlowUnit) -> Option<Box<dyn Pass>> {
    match unit {
        FlowUnit::Mc { cut } => Some(Box::new(McRewrite::with_cut_size(*cut))),
        FlowUnit::Size { cut } => Some(Box::new(SizeRewrite::with_cut_size(*cut))),
        FlowUnit::Xor => Some(Box::new(XorReduce::new())),
        FlowUnit::Cleanup => Some(Box::new(Cleanup::new())),
        FlowUnit::Group(_) | FlowUnit::Par { .. } => None,
    }
}

/// A pass that always runs with its own worker count, ignoring the
/// pipeline-level thread count — how a `par{}` block keeps its override
/// when its body is flattened into a [`Pipeline`] (e.g. inside an
/// until-convergence group). Purely a scheduling wrapper: results stay
/// bit-identical (see [`crate::shard`]), and the pass name is unchanged
/// so statistics rows are unaffected.
struct PinnedThreads {
    pass: Box<dyn Pass>,
    threads: usize,
}

impl Pass for PinnedThreads {
    fn name(&self) -> &str {
        self.pass.name()
    }

    fn run(&self, xag: &mut Xag, ctx: &mut OptContext) -> PassStats {
        self.pass.run_parallel(xag, ctx, self.threads)
    }

    fn run_parallel(&self, xag: &mut Xag, ctx: &mut OptContext, _threads: usize) -> PassStats {
        self.pass.run_parallel(xag, ctx, self.threads)
    }
}

/// Flattens `items` into pass objects, expanding bounded repetitions.
/// `pin` carries the innermost enclosing `par{}` thread count, so a
/// `par` block nested anywhere — including inside a convergence group —
/// keeps its worker-count override through the flattening.
fn collect_passes(items: &[FlowItem], pin: Option<usize>, out: &mut Vec<Box<dyn Pass>>) {
    for item in items {
        let times = match item.repeat {
            Repeat::Once | Repeat::Converge => 1,
            Repeat::Times(k) => k,
        };
        for _ in 0..times {
            match &item.unit {
                FlowUnit::Group(body) => collect_passes(body, pin, out),
                FlowUnit::Par { threads, body } => collect_passes(body, Some(*threads), out),
                atom => {
                    let pass = atom_pass(atom).expect("atoms lower to passes");
                    out.push(match pin {
                        Some(threads) => Box::new(PinnedThreads { pass, threads }),
                        None => pass,
                    });
                }
            }
        }
    }
}

fn items_metric(items: &[FlowItem]) -> Objective {
    fn has_size(items: &[FlowItem]) -> bool {
        items.iter().any(|item| match &item.unit {
            FlowUnit::Size { .. } => true,
            FlowUnit::Group(body) | FlowUnit::Par { body, .. } => has_size(body),
            _ => false,
        })
    }
    if has_size(items) {
        Objective::Size
    } else {
        Objective::MultiplicativeComplexity
    }
}

fn unit_metric(unit: &FlowUnit) -> Objective {
    items_metric(core::slice::from_ref(&FlowItem {
        unit: unit.clone(),
        repeat: Repeat::Once,
    }))
}

fn run_items(
    items: &[FlowItem],
    xag: &mut Xag,
    ctx: &mut OptContext,
    threads: usize,
    budget: usize,
    executed: &mut Vec<PassStats>,
    converged: &mut bool,
) {
    for item in items {
        match item.repeat {
            Repeat::Once => run_unit(&item.unit, xag, ctx, threads, budget, executed, converged),
            Repeat::Times(k) => {
                for _ in 0..k {
                    run_unit(&item.unit, xag, ctx, threads, budget, executed, converged);
                }
            }
            Repeat::Converge => {
                if executed.len() >= budget {
                    *converged = false;
                    continue;
                }
                // Reuse the Pipeline convergence schedule verbatim: this
                // is what keeps alias specs byte-identical to the
                // historical FlowKind flows.
                let remaining = budget - executed.len();
                let mut flow = Pipeline::new()
                    .metric(unit_metric(&item.unit))
                    .max_rounds(remaining);
                let mut passes = Vec::new();
                collect_passes(core::slice::from_ref(item), None, &mut passes);
                for pass in passes {
                    flow = flow.add_boxed(pass);
                }
                let stats = flow.run_parallel(xag, ctx, threads);
                *converged &= stats.converged;
                executed.extend(stats.passes);
            }
        }
    }
}

fn run_unit(
    unit: &FlowUnit,
    xag: &mut Xag,
    ctx: &mut OptContext,
    threads: usize,
    budget: usize,
    executed: &mut Vec<PassStats>,
    converged: &mut bool,
) {
    match unit {
        FlowUnit::Group(body) => run_items(body, xag, ctx, threads, budget, executed, converged),
        FlowUnit::Par { threads: t, body } => {
            run_items(body, xag, ctx, *t, budget, executed, converged);
        }
        atom => {
            if executed.len() >= budget {
                *converged = false;
                return;
            }
            let pass = atom_pass(atom).expect("atoms lower to passes");
            let stats = pass.run_parallel(xag, ctx, threads);
            crate::observe::pass_boundary(&stats);
            executed.push(stats);
        }
    }
}

// ---------------------------------------------------------------------
// Spec sampling

/// Samples a random, syntactically valid spec text from a seeded RNG —
/// the shared generator behind the parser fuzz-smoke (this module's
/// tests) and the sampled-spec differential suite
/// (`tests/fuzz_equiv.rs`), kept in one place so the two suites always
/// fuzz the same language. Until-convergence `*` is emitted only at the
/// top level and only when `allow_converge`, so sampled specs never
/// nest convergence groups (which [`FlowSpec::parse`] rejects).
pub fn sample_spec_text(rng: &mut mc_rng::Rng, allow_converge: bool) -> String {
    sample_items(rng, if allow_converge { 0 } else { 1 })
}

fn sample_items(rng: &mut mc_rng::Rng, depth: usize) -> String {
    let items = rng.gen_range(1..4);
    let mut parts = Vec::with_capacity(items);
    for _ in 0..items {
        let unit = match rng.gen_range(0..if depth < 2 { 6 } else { 4 }) {
            0 => format!("mc(cut={})", rng.gen_range(2..7)),
            1 => format!("size(cut={})", rng.gen_range(2..7)),
            2 => "xor".to_string(),
            3 => "cleanup".to_string(),
            4 => format!("{{{}}}", sample_items(rng, depth + 1)),
            _ => format!(
                "par(threads={}){{{}}}",
                rng.gen_range(1..5),
                sample_items(rng, depth + 1)
            ),
        };
        let repeat = match rng.gen_range(0..4) {
            0 if depth == 0 => "*".to_string(),
            1 => format!("*{}", rng.gen_range(1..4)),
            _ => String::new(),
        };
        parts.push(format!("{unit}{repeat}"));
    }
    parts.join(";")
}

// ---------------------------------------------------------------------
// Tokenizer and parser

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Star,
    Eq,
}

impl core::fmt::Display for Tok {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Eq => f.write_str("`=`"),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<(Tok, usize)>, FlowError> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let simple = match c {
            b'(' => Some(Tok::LParen),
            b')' => Some(Tok::RParen),
            b'{' => Some(Tok::LBrace),
            b'}' => Some(Tok::RBrace),
            b';' => Some(Tok::Semi),
            b'*' => Some(Tok::Star),
            b'=' => Some(Tok::Eq),
            _ => None,
        };
        if let Some(tok) = simple {
            toks.push((tok, i));
            i += 1;
        } else if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            let n: u64 = text[start..i].parse().map_err(|_| FlowError::Syntax {
                pos: start,
                message: "number is too large".to_string(),
            })?;
            toks.push((Tok::Int(n), start));
        } else if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push((Tok::Ident(text[start..i].to_string()), start));
        } else {
            return Err(FlowError::Syntax {
                pos: i,
                message: format!("unexpected character `{}`", c as char),
            });
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    i: usize,
    end: usize,
}

/// What `parse_unit` produced: a plain unit awaiting its repeat suffix,
/// or an alias expansion that already carries one.
enum UnitParse {
    Unit(FlowUnit),
    Alias(FlowItem, String),
}

impl Parser {
    fn current(&self) -> Option<(&Tok, usize)> {
        self.toks.get(self.i).map(|(t, p)| (t, *p))
    }

    fn pos(&self) -> usize {
        self.current().map(|(_, p)| p).unwrap_or(self.end)
    }

    fn bump(&mut self) -> Option<(Tok, usize)> {
        let tok = self.toks.get(self.i).cloned();
        if tok.is_some() {
            self.i += 1;
        }
        tok
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.current().map(|(t, _)| t) == Some(tok) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, context: &str) -> Result<(), FlowError> {
        let pos = self.pos();
        match self.bump() {
            Some((t, _)) if t == tok => Ok(()),
            Some((t, p)) => Err(FlowError::Syntax {
                pos: p,
                message: format!("expected {tok} {context}, found {t}"),
            }),
            None => Err(FlowError::Syntax {
                pos,
                message: format!("expected {tok} {context}, found end of spec"),
            }),
        }
    }

    fn parse_seq(&mut self, depth: usize) -> Result<Vec<FlowItem>, FlowError> {
        let mut items = vec![self.parse_item(depth)?];
        while self.eat(&Tok::Semi) {
            // A trailing `;` before `}` or the end of the spec is allowed.
            match self.current() {
                None | Some((Tok::RBrace, _)) => break,
                _ => items.push(self.parse_item(depth)?),
            }
        }
        Ok(items)
    }

    fn parse_item(&mut self, depth: usize) -> Result<FlowItem, FlowError> {
        match self.parse_unit(depth)? {
            UnitParse::Alias(item, name) => {
                if let Some((Tok::Star, pos)) = self.current() {
                    return Err(FlowError::Syntax {
                        pos,
                        message: format!(
                            "alias `{name}` already carries its repetition; \
                             wrap it in `{{…}}` to repeat it"
                        ),
                    });
                }
                Ok(item)
            }
            UnitParse::Unit(unit) => {
                let repeat = self.parse_repeat()?;
                Ok(FlowItem { unit, repeat })
            }
        }
    }

    fn parse_repeat(&mut self) -> Result<Repeat, FlowError> {
        if !self.eat(&Tok::Star) {
            return Ok(Repeat::Once);
        }
        if let Some((Tok::Int(n), pos)) = self.current() {
            let (n, pos) = (*n, pos);
            self.i += 1;
            if n == 0 {
                return Err(FlowError::Syntax {
                    pos,
                    message: "repetition count must be at least 1".to_string(),
                });
            }
            if n > MAX_SPEC_REPEAT as u64 {
                return Err(FlowError::RepeatTooLarge { count: n });
            }
            Ok(Repeat::Times(n as usize))
        } else {
            Ok(Repeat::Converge)
        }
    }

    fn parse_unit(&mut self, depth: usize) -> Result<UnitParse, FlowError> {
        let pos = self.pos();
        match self.bump() {
            Some((Tok::LBrace, _)) => {
                if depth >= MAX_SPEC_DEPTH {
                    return Err(FlowError::TooDeep);
                }
                let body = self.parse_seq(depth + 1)?;
                self.expect(Tok::RBrace, "to close the group")?;
                Ok(UnitParse::Unit(FlowUnit::Group(body)))
            }
            Some((Tok::Ident(name), pos)) => match name.as_str() {
                "mc" | "size" => {
                    let cut = match self.parse_knob(&name, "cut")? {
                        None => MAX_SPEC_CUT,
                        Some((n, knob_pos)) => {
                            if !(MIN_SPEC_CUT as u64..=MAX_SPEC_CUT as u64).contains(&n) {
                                return Err(FlowError::Syntax {
                                    pos: knob_pos,
                                    message: format!(
                                        "`{name}` cut size must be within \
                                         {MIN_SPEC_CUT}..={MAX_SPEC_CUT} (got {n})"
                                    ),
                                });
                            }
                            n as usize
                        }
                    };
                    Ok(UnitParse::Unit(if name == "mc" {
                        FlowUnit::Mc { cut }
                    } else {
                        FlowUnit::Size { cut }
                    }))
                }
                "xor" => Ok(UnitParse::Unit(FlowUnit::Xor)),
                "cleanup" => Ok(UnitParse::Unit(FlowUnit::Cleanup)),
                "par" => {
                    let threads = match self.parse_knob("par", "threads")? {
                        None => {
                            return Err(FlowError::Syntax {
                                pos,
                                message: "`par` requires `(threads=N)`".to_string(),
                            });
                        }
                        Some((n, knob_pos)) => {
                            if !(1..=MAX_PAR_THREADS as u64).contains(&n) {
                                return Err(FlowError::Syntax {
                                    pos: knob_pos,
                                    message: format!(
                                        "`par` thread count must be within \
                                         1..={MAX_PAR_THREADS} (got {n})"
                                    ),
                                });
                            }
                            n as usize
                        }
                    };
                    if depth >= MAX_SPEC_DEPTH {
                        return Err(FlowError::TooDeep);
                    }
                    self.expect(Tok::LBrace, "to open the `par` body")?;
                    let body = self.parse_seq(depth + 1)?;
                    self.expect(Tok::RBrace, "to close the `par` body")?;
                    Ok(UnitParse::Unit(FlowUnit::Par { threads, body }))
                }
                alias => match alias_item(alias) {
                    Some(item) => Ok(UnitParse::Alias(item, alias.to_string())),
                    None => Err(FlowError::Syntax {
                        pos,
                        message: format!(
                            "unknown pass atom `{name}` (expected mc, size, xor, cleanup, \
                             par, or an alias: paper, compress, from_params)"
                        ),
                    }),
                },
            },
            Some((tok, pos)) => Err(FlowError::Syntax {
                pos,
                message: format!("expected a pass atom or `{{`, found {tok}"),
            }),
            None => Err(FlowError::Syntax {
                pos,
                message: "expected a pass atom, found end of spec".to_string(),
            }),
        }
    }

    /// Parses an optional `(key=INT)` knob list; returns the value and
    /// its position. `None` when no `(` follows.
    fn parse_knob(&mut self, atom: &str, key: &str) -> Result<Option<(u64, usize)>, FlowError> {
        if !self.eat(&Tok::LParen) {
            return Ok(None);
        }
        let pos = self.pos();
        match self.bump() {
            Some((Tok::Ident(k), _)) if k == key => {}
            found => {
                let (message, pos) = match found {
                    Some((t, p)) => (format!("expected `{key}=` in `{atom}(…)`, found {t}"), p),
                    None => (format!("expected `{key}=` in `{atom}(…)`"), pos),
                };
                return Err(FlowError::Syntax { pos, message });
            }
        }
        self.expect(Tok::Eq, &format!("after `{key}`"))?;
        let value_pos = self.pos();
        let value = match self.bump() {
            Some((Tok::Int(n), _)) => n,
            Some((t, p)) => {
                return Err(FlowError::Syntax {
                    pos: p,
                    message: format!("expected an integer value for `{key}`, found {t}"),
                });
            }
            None => {
                return Err(FlowError::Syntax {
                    pos: value_pos,
                    message: format!("expected an integer value for `{key}`"),
                });
            }
        };
        self.expect(Tok::RParen, &format!("to close `{atom}(…)`"))?;
        Ok(Some((value, value_pos)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_network::{equiv_exhaustive, write_verilog};

    fn full_adder() -> Xag {
        let mut xag = Xag::new();
        let (a, b, cin) = (xag.input(), xag.input(), xag.input());
        let ab = xag.and(a, b);
        let ac = xag.and(a, cin);
        let bc = xag.and(b, cin);
        let t = xag.xor(ab, ac);
        let cout = xag.xor(t, bc);
        let axb = xag.xor(a, b);
        let sum = xag.xor(axb, cin);
        xag.output(sum);
        xag.output(cout);
        xag
    }

    #[test]
    fn display_parse_round_trips() {
        for text in [
            "mc(cut=6)",
            "mc(cut=4);size(cut=5);xor;cleanup",
            "mc(cut=6)*3",
            "{mc(cut=4);mc(cut=6)}*",
            "par(threads=2){mc(cut=6);xor}",
            "par(threads=4){mc(cut=4)*2}*5;cleanup",
            "{mc(cut=6);{xor;cleanup}*2}*3",
        ] {
            let spec = FlowSpec::parse(text).unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(FlowSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn whitespace_and_defaults_are_insignificant() {
        let canonical = FlowSpec::parse("mc(cut=6);xor;cleanup*").unwrap();
        for variant in [
            " mc( cut = 6 ) ; xor ; cleanup * ",
            "mc;xor;cleanup*",
            "mc ;\txor;\n cleanup*;",
        ] {
            assert_eq!(FlowSpec::parse(variant).unwrap(), canonical, "{variant:?}");
        }
    }

    #[test]
    fn aliases_expand_to_their_documented_specs() {
        for (alias, expansion) in FlowSpec::aliases() {
            let via_alias = FlowSpec::parse(alias).unwrap();
            let via_expansion = FlowSpec::parse(expansion).unwrap();
            assert_eq!(via_alias, via_expansion, "{alias}");
            assert_eq!(via_alias.normalized(), via_expansion.normalized());
        }
        assert_eq!(
            FlowSpec::parse("paper_flow").unwrap(),
            FlowSpec::parse("paper").unwrap()
        );
        assert_eq!(FlowSpec::default(), FlowSpec::parse("paper").unwrap());
    }

    #[test]
    fn normalization_erases_par_and_flattens_groups() {
        let cases = [
            ("par(threads=4){mc(cut=6)}", "mc(cut=6)"),
            ("{mc(cut=6);xor};cleanup", "mc(cut=6);xor;cleanup"),
            ("{mc(cut=6)}*", "mc(cut=6)*"),
            ("{mc}*3", "mc(cut=6)*3"),
            ("mc*1", "mc(cut=6)"),
            ("par(threads=2){xor;cleanup}*", "{xor;cleanup}*"),
            ("{{mc(cut=4)};{mc}}", "mc(cut=4);mc(cut=6)"),
            ("from_params", "mc(cut=4)*"),
        ];
        for (text, want) in cases {
            let spec = FlowSpec::parse(text).unwrap();
            assert_eq!(spec.normalized(), want, "{text}");
            // Idempotence: normalizing the normal form is the identity.
            assert_eq!(spec.normalize().normalize(), spec.normalize(), "{text}");
            assert_eq!(
                FlowSpec::parse(&spec.normalized()).unwrap().normalized(),
                want,
                "{text}"
            );
        }
    }

    #[test]
    fn distinct_knobs_have_distinct_canonical_bytes() {
        let four = FlowSpec::parse("mc(cut=4)").unwrap();
        let six = FlowSpec::parse("mc(cut=6)").unwrap();
        assert_ne!(four.normalized(), six.normalized());
        assert_ne!(
            FlowSpec::parse("mc(cut=6)*2").unwrap().normalized(),
            FlowSpec::parse("mc(cut=6)*3").unwrap().normalized()
        );
        assert_ne!(
            FlowSpec::parse("mc(cut=6)*").unwrap().normalized(),
            FlowSpec::parse("mc(cut=6)").unwrap().normalized()
        );
    }

    #[test]
    fn resource_guard_rejects_hostile_specs() {
        assert_eq!(
            FlowSpec::parse("cleanup*9999999"),
            Err(FlowError::RepeatTooLarge { count: 9_999_999 })
        );
        // Multiplied-out bounded repetition busts the pass budget.
        assert_eq!(
            FlowSpec::parse("{cleanup*1000}*1000"),
            Err(FlowError::BudgetExceeded { passes: 1_000_000 })
        );
        assert_eq!(FlowSpec::parse(""), Err(FlowError::Empty));
        let long = "cleanup;".repeat(MAX_SPEC_LEN / 8 + 1);
        assert!(matches!(
            FlowSpec::parse(&long),
            Err(FlowError::TooLong { .. })
        ));
        let deep = format!("{}cleanup{}", "{".repeat(9), "}".repeat(9));
        assert_eq!(FlowSpec::parse(&deep), Err(FlowError::TooDeep));
        assert_eq!(
            FlowSpec::parse("{mc(cut=4)*;xor}*"),
            Err(FlowError::NestedConvergence)
        );
        // Guard messages name the limit, so remote clients see why.
        let msg = FlowError::RepeatTooLarge { count: 9_999_999 }.to_string();
        assert!(msg.contains("1000"), "{msg}");
        // A shorthand input whose knob-explicit rendering exceeds the
        // limit is rejected up front — otherwise the client would accept
        // a spec the service edge later refuses.
        let shorthand = "mc;".repeat(MAX_SPEC_LEN / 6);
        assert!(
            matches!(FlowSpec::parse(&shorthand), Err(FlowError::TooLong { .. })),
            "expanded rendering must be bounded too"
        );
        // Hand-built ASTs with empty bodies fail validate(), as its doc
        // promises (the parser cannot produce them).
        let bad = FlowSpec {
            items: vec![FlowItem {
                unit: FlowUnit::Group(Vec::new()),
                repeat: Repeat::Once,
            }],
        };
        assert_eq!(bad.validate(), Err(FlowError::Empty));
    }

    #[test]
    fn syntax_errors_are_reported_with_positions() {
        for (text, needle) in [
            ("mc(cut=9)", "cut size"),
            ("mc(cut=1)", "cut size"),
            ("par(threads=99){xor}", "thread count"),
            ("par{xor}", "requires"),
            ("resub", "unknown pass atom"),
            ("mc(limit=4)", "expected `cut"),
            ("xor)", "trailing"),
            ("mc;;xor", "expected a pass atom"),
            ("{mc", "close the group"),
            ("cleanup*0", "at least 1"),
            ("paper*3", "wrap it in"),
            ("mc@", "unexpected character"),
        ] {
            let err = FlowSpec::parse(text).expect_err(text).to_string();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn worst_case_passes_multiplies_bounded_repetition() {
        let spec = FlowSpec::parse("{mc(cut=4)*2;xor}*3;cleanup").unwrap();
        assert_eq!(spec.worst_case_passes(), 10);
        // Converge groups count their body once — the runtime cap bounds
        // their actual repetition.
        let spec = FlowSpec::parse("{mc(cut=4);mc(cut=6)}*").unwrap();
        assert_eq!(spec.worst_case_passes(), 2);
    }

    #[test]
    fn alias_pipelines_match_the_flowkind_flows() {
        use crate::FlowKind;
        for kind in FlowKind::ALL {
            let spec = FlowSpec::named(kind.name()).unwrap();
            let ours = spec.to_pipeline(100);
            let theirs = kind.pipeline(100);
            assert_eq!(ours.pass_names(), theirs.pass_names(), "{kind}");
        }
    }

    #[test]
    fn execution_preserves_function_and_honors_the_round_budget() {
        for text in [
            "paper",
            "compress",
            "mc(cut=6);xor;cleanup*",
            "par(threads=2){mc(cut=4)*2};xor",
            "{size(cut=4);xor}*2;cleanup",
        ] {
            let spec = FlowSpec::parse(text).unwrap();
            let mut xag = full_adder();
            let reference = xag.cleanup();
            let mut ctx = OptContext::new();
            let stats = spec.run(&mut xag, &mut ctx, 1, 100);
            assert!(stats.num_rounds() <= 100);
            assert!(
                equiv_exhaustive(&reference, &xag.cleanup()),
                "{text} broke equivalence"
            );
        }
        // A budget of 1 cuts any multi-pass spec short.
        let spec = FlowSpec::parse("mc(cut=4);mc(cut=6);xor").unwrap();
        let mut xag = full_adder();
        let mut ctx = OptContext::new();
        let stats = spec.run(&mut xag, &mut ctx, 1, 1);
        assert_eq!(stats.num_rounds(), 1);
        assert!(
            !stats.converged,
            "truncated specs must not claim convergence"
        );
    }

    #[test]
    fn par_variants_produce_identical_netlists() {
        let plain = FlowSpec::parse("mc(cut=6);xor;cleanup").unwrap();
        let wrapped = FlowSpec::parse("par(threads=4){mc(cut=6);xor;cleanup}").unwrap();
        assert_eq!(plain.normalized(), wrapped.normalized());
        let netlist = |spec: &FlowSpec, threads: usize| {
            let mut xag = full_adder();
            let mut ctx = OptContext::new();
            spec.run(&mut xag, &mut ctx, threads, 100);
            let mut buf = Vec::new();
            write_verilog(&xag.cleanup(), "m", &mut buf).expect("in-memory write");
            buf
        };
        let reference = netlist(&plain, 1);
        assert_eq!(reference, netlist(&plain, 4));
        assert_eq!(reference, netlist(&wrapped, 1));
        assert_eq!(reference, netlist(&wrapped, 4));
    }

    #[test]
    fn seeded_random_specs_parse_and_round_trip() {
        // A miniature parser fuzzer: generate syntactically valid specs
        // from the shared seeded sampler, then check parse → display →
        // parse is the identity and normalization is idempotent.
        let mut rng = mc_rng::Rng::seed_from_u64(0xF10E);
        for _ in 0..200 {
            let text = sample_spec_text(&mut rng, true);
            let spec = FlowSpec::parse(&text)
                .unwrap_or_else(|e| panic!("generated spec {text:?} failed to parse: {e}"));
            assert_eq!(FlowSpec::parse(&spec.to_string()).unwrap(), spec, "{text}");
            assert_eq!(spec.normalize().normalize(), spec.normalize(), "{text}");
        }
    }

    /// A `par{}` nested inside a convergence group keeps its worker
    /// override through the pipeline flattening (the PinnedThreads
    /// wrapper) without changing names, results, or the normalized key.
    #[test]
    fn nested_par_in_convergence_group_runs_and_stays_canonical() {
        let nested = FlowSpec::parse("{par(threads=4){mc(cut=4)};mc(cut=6)}*").unwrap();
        assert_eq!(nested.normalized(), "{mc(cut=4);mc(cut=6)}*");
        assert_eq!(
            nested.to_pipeline(100).pass_names(),
            FlowSpec::parse("paper")
                .unwrap()
                .to_pipeline(100)
                .pass_names(),
            "the pinning wrapper must not rename passes"
        );
        let netlist = |spec: &FlowSpec| {
            let mut xag = full_adder();
            let mut ctx = OptContext::new();
            let stats = spec.run(&mut xag, &mut ctx, 1, 100);
            assert!(stats.converged);
            let mut buf = Vec::new();
            write_verilog(&xag.cleanup(), "m", &mut buf).expect("in-memory write");
            buf
        };
        assert_eq!(
            netlist(&nested),
            netlist(&FlowSpec::parse("paper").unwrap()),
            "nested par is scheduling only — results stay byte-identical"
        );
    }
}
