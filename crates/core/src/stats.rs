use std::time::Duration;

/// Statistics of one rewriting round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats {
    /// AND gates before the round.
    pub ands_before: usize,
    /// XOR gates before the round.
    pub xors_before: usize,
    /// AND gates after the round.
    pub ands_after: usize,
    /// XOR gates after the round.
    pub xors_after: usize,
    /// Number of accepted rewrites.
    pub rewrites_applied: usize,
    /// Number of (node, cut) candidates evaluated.
    pub cuts_considered: usize,
    /// Wall-clock time of the round.
    pub elapsed: Duration,
}

impl RoundStats {
    /// Relative AND improvement of this round, in percent (negative if
    /// the round traded ANDs up, which Size-objective rounds may).
    pub fn improvement_pct(&self) -> f64 {
        if self.ands_before == 0 {
            0.0
        } else {
            100.0 * (self.ands_before as f64 - self.ands_after as f64) / self.ands_before as f64
        }
    }
}

impl core::fmt::Display for RoundStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "AND {} → {} | XOR {} → {} | {} rewrites / {} cuts | {:.2}s",
            self.ands_before,
            self.ands_after,
            self.xors_before,
            self.xors_after,
            self.rewrites_applied,
            self.cuts_considered,
            self.elapsed.as_secs_f64()
        )
    }
}

/// Statistics of a full until-convergence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteStats {
    /// Per-round statistics, in order.
    pub rounds: Vec<RoundStats>,
    /// True iff the loop stopped because no further improvement was found
    /// (as opposed to hitting the round limit).
    pub converged: bool,
}

impl RewriteStats {
    /// Number of rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// AND count before the first round.
    pub fn ands_before(&self) -> usize {
        self.rounds.first().map(|r| r.ands_before).unwrap_or(0)
    }

    /// AND count after the last round.
    pub fn ands_after(&self) -> usize {
        self.rounds.last().map(|r| r.ands_after).unwrap_or(0)
    }

    /// Total wall-clock time across rounds.
    pub fn total_time(&self) -> Duration {
        self.rounds.iter().map(|r| r.elapsed).sum()
    }

    /// Overall AND improvement, in percent.
    pub fn improvement_pct(&self) -> f64 {
        let before = self.ands_before();
        if before == 0 {
            0.0
        } else {
            100.0 * (before as f64 - self.ands_after() as f64) / before as f64
        }
    }
}

impl core::fmt::Display for RewriteStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} rounds, AND {} → {} ({:.1}% improvement), {:.2}s{}",
            self.num_rounds(),
            self.ands_before(),
            self.ands_after(),
            self.improvement_pct(),
            self.total_time().as_secs_f64(),
            if self.converged { "" } else { " (round limit)" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(before: usize, after: usize) -> RoundStats {
        RoundStats {
            ands_before: before,
            xors_before: 0,
            ands_after: after,
            xors_after: 0,
            rewrites_applied: 1,
            cuts_considered: 10,
            elapsed: Duration::from_millis(5),
        }
    }

    #[test]
    fn improvement_percentages() {
        let r = round(100, 66);
        assert!((r.improvement_pct() - 34.0).abs() < 1e-9);
        let s = RewriteStats {
            rounds: vec![round(100, 80), round(80, 50)],
            converged: true,
        };
        assert_eq!(s.ands_before(), 100);
        assert_eq!(s.ands_after(), 50);
        assert!((s.improvement_pct() - 50.0).abs() < 1e-9);
        assert_eq!(s.num_rounds(), 2);
    }

    #[test]
    fn negative_improvement_does_not_underflow() {
        // Size-objective rounds may trade ANDs up; formatting the stats
        // must yield a negative percentage, not an underflow panic.
        let r = round(5, 8);
        assert!((r.improvement_pct() + 60.0).abs() < 1e-9);
        let s = RewriteStats {
            rounds: vec![round(5, 8)],
            converged: true,
        };
        assert!(s.improvement_pct() < 0.0);
        assert!(format!("{s}").contains("-60.0%"));
    }

    #[test]
    fn empty_stats_are_all_zero() {
        // A run with no rounds (e.g. a zero-round budget) must aggregate
        // to zeros, not panic on first()/last().
        let s = RewriteStats {
            rounds: Vec::new(),
            converged: true,
        };
        assert_eq!(s.num_rounds(), 0);
        assert_eq!(s.ands_before(), 0);
        assert_eq!(s.ands_after(), 0);
        assert_eq!(s.total_time(), Duration::ZERO);
        assert!((s.improvement_pct()).abs() < 1e-9);
        // And an AND-free round (pure linear layer) divides by zero ANDs.
        assert!((round(0, 0).improvement_pct()).abs() < 1e-9);
    }

    #[test]
    fn single_round_aggregation_uses_that_round_twice() {
        let s = RewriteStats {
            rounds: vec![round(7, 7)],
            converged: true,
        };
        // first() and last() are the same round: before/after both read it.
        assert_eq!(s.ands_before(), 7);
        assert_eq!(s.ands_after(), 7);
        assert!((s.improvement_pct()).abs() < 1e-9);
        assert_eq!(s.total_time(), Duration::from_millis(5));
    }

    #[test]
    fn display_is_informative() {
        let s = RewriteStats {
            rounds: vec![round(10, 5)],
            converged: false,
        };
        let text = format!("{s}");
        assert!(text.contains("10 → 5"));
        assert!(text.contains("round limit"));
    }
}
