//! Shared optimization state: the classifier, the synthesizer, and the
//! on-demand representative database.

use xag_affine::{AffineClassifier, ClassifyConfig};
use xag_network::XagFragment;
use xag_synth::{SynthConfig, Synthesizer};
use xag_tt::hash::FxHashMap;
use xag_tt::Tt;

/// The state every optimization pass shares: the affine classifier, the
/// synthesis engine, and the `XAG_DB` of the paper (representative truth
/// table → low-AND circuit), synthesized on demand and cached.
///
/// One context is meant to outlive many passes *and many networks*: a
/// representative synthesized while rewriting one benchmark is reused by
/// every later pass and benchmark, so the database amortizes exactly like
/// the paper's precomputed one (DESIGN.md §3).
///
/// # Examples
///
/// ```
/// use xag_mc::OptContext;
/// use xag_tt::Tt;
///
/// let mut ctx = OptContext::new();
/// let maj = Tt::from_bits(0xe8, 3); // majority: MC 1
/// let frag = ctx.candidate_for_cut(maj);
/// assert_eq!(frag.num_ands(), 1);
/// assert_eq!(frag.eval_tt(), maj);
/// assert_eq!(ctx.db_size(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OptContext {
    classifier: AffineClassifier,
    synth: Synthesizer,
    /// The `XAG_DB` of the paper: representative truth table → circuit.
    db: FxHashMap<Tt, XagFragment>,
}

impl OptContext {
    /// Creates a context with default (paper) parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a context with custom classifier and synthesizer
    /// configurations.
    pub fn with_config(classify: ClassifyConfig, synth: SynthConfig) -> Self {
        Self {
            classifier: AffineClassifier::with_config(classify),
            synth: Synthesizer::with_config(synth),
            db: FxHashMap::default(),
        }
    }

    /// Number of distinct representatives currently in the database.
    pub fn db_size(&self) -> usize {
        self.db.len()
    }

    /// Clones the context for a worker thread: the fork starts with all of
    /// this context's memoized state, so representatives synthesized before
    /// the parallel region stay amortized inside it.
    ///
    /// Classification and synthesis are deterministic, so a fork produces
    /// the same candidate for the same cut function as its parent — cache
    /// state only affects speed, never results (the invariant the
    /// determinism tests pin down). Cache-hit statistics start at zero in
    /// the fork, so absorbing it back adds only the fork's own work.
    pub fn fork(&self) -> OptContext {
        OptContext {
            classifier: self.classifier.fork(),
            synth: self.synth.fork(),
            db: self.db.clone(),
        }
    }

    /// Merges a fork's state back: database entries, classification cache,
    /// and synthesis cache discovered by the worker are kept; entries the
    /// parent already has win ties (they are equal anyway, by determinism).
    pub fn absorb(&mut self, fork: OptContext) {
        for (tt, frag) in fork.db {
            self.db.entry(tt).or_insert(frag);
        }
        self.classifier.absorb(fork.classifier);
        self.synth.absorb(fork.synth);
    }

    /// AND-gate counts of the database entries, as `(ands, entries)` pairs
    /// sorted by AND count — the shape the paper reports for `XAG_DB`.
    pub fn db_histogram(&self) -> Vec<(usize, usize)> {
        let mut hist = std::collections::BTreeMap::new();
        for frag in self.db.values() {
            *hist.entry(frag.num_ands()).or_insert(0usize) += 1;
        }
        hist.into_iter().collect()
    }

    /// Algorithm 1 of the paper: build the replacement circuit for a cut
    /// function — classify, look the representative up in the database
    /// (synthesizing on a miss), then replay the affine operations.
    pub fn candidate_for_cut(&mut self, tt: Tt) -> XagFragment {
        // Reduce to the support first: classification and the database work
        // on the compacted function.
        let (g, map) = tt.shrink_to_support();
        if g.vars() != tt.vars() {
            let inner = self.candidate_for_cut_reduced(g);
            let lifted = inner.with_inputs(tt.vars(), &map);
            debug_assert_eq!(lifted.eval_tt(), tt);
            return lifted;
        }
        let frag = self.candidate_for_cut_reduced(tt);
        debug_assert_eq!(frag.eval_tt(), tt);
        frag
    }

    fn candidate_for_cut_reduced(&mut self, tt: Tt) -> XagFragment {
        if tt.is_constant() || tt.vars() == 0 {
            return XagFragment::constant(tt.vars(), tt.is_one());
        }
        let classification = self.classifier.classify(tt);
        let rep = classification.representative;
        let rep_frag = match self.db.get(&rep) {
            Some(frag) => frag.clone(),
            None => {
                let frag = self.synth.synthesize(rep);
                self.db.insert(rep, frag.clone());
                frag
            }
        };
        rep_frag.undo_affine_ops(&classification.ops)
    }
}
