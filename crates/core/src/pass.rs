//! The pass abstraction and the four concrete optimization passes.
//!
//! A [`Pass`] transforms a network in place, reading and updating the
//! shared [`OptContext`], and reports what it did as [`PassStats`]. Passes
//! are composed by [`crate::Pipeline`]; the concrete passes are:
//!
//! * [`McRewrite`] — one round of cut rewriting minimizing AND gates
//!   (the paper's Algorithm 1);
//! * [`SizeRewrite`] — the same machinery with unit gate costs, standing
//!   in for the paper's ABC size-optimization baseline;
//! * [`XorReduce`] — Paar common-subexpression extraction over the linear
//!   layers (promotes [`crate::reduce_xors`] into the pass framework);
//! * [`Cleanup`] — compacts the node arena, dropping dead nodes.

use std::time::{Duration, Instant};

use xag_cuts::{enumerate_cuts_for, CutParams};
use xag_network::{ConeScratch, NodeId, NodeKind, Signal, TopoScratch, Xag, XagFragment};

use crate::context::OptContext;
use crate::stats::RoundStats;
use crate::xor_reduce::reduce_xors;
use crate::Objective;

/// Statistics of one pass execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStats {
    /// Name of the pass that produced these statistics.
    pub pass: String,
    /// AND gates before the pass.
    pub ands_before: usize,
    /// XOR gates before the pass.
    pub xors_before: usize,
    /// AND gates after the pass.
    pub ands_after: usize,
    /// XOR gates after the pass.
    pub xors_after: usize,
    /// Number of applied changes (accepted rewrites, removed XORs,
    /// reclaimed nodes — each pass documents its meaning).
    pub rewrites_applied: usize,
    /// Number of (node, cut) candidates evaluated, for rewriting passes.
    pub cuts_considered: usize,
    /// Wall-clock time of the pass.
    pub elapsed: Duration,
}

impl PassStats {
    /// True iff the pass strictly improved the given objective.
    pub fn improved(&self, objective: Objective) -> bool {
        match objective {
            Objective::MultiplicativeComplexity => self.ands_after < self.ands_before,
            Objective::Size => {
                self.ands_after + self.xors_after < self.ands_before + self.xors_before
            }
        }
    }
}

impl core::fmt::Display for PassStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:<18} AND {} → {} | XOR {} → {} | {} applied / {} cuts | {:.2}s",
            self.pass,
            self.ands_before,
            self.ands_after,
            self.xors_before,
            self.xors_after,
            self.rewrites_applied,
            self.cuts_considered,
            self.elapsed.as_secs_f64()
        )
    }
}

impl From<PassStats> for RoundStats {
    fn from(s: PassStats) -> Self {
        RoundStats {
            ands_before: s.ands_before,
            xors_before: s.xors_before,
            ands_after: s.ands_after,
            xors_after: s.xors_after,
            rewrites_applied: s.rewrites_applied,
            cuts_considered: s.cuts_considered,
            elapsed: s.elapsed,
        }
    }
}

/// One step of an optimization flow.
///
/// A pass mutates the network in place and may read and grow the shared
/// [`OptContext`] (classification cache, representative database). Passes
/// must preserve network functionality — the property tests fuzz every
/// composed flow for exactly this.
pub trait Pass {
    /// Short stable name, used in statistics and flow descriptions.
    fn name(&self) -> &str;

    /// Runs the pass on `xag`.
    fn run(&self, xag: &mut Xag, ctx: &mut OptContext) -> PassStats;

    /// Runs the pass with up to `threads` worker threads.
    ///
    /// The default falls back to the sequential [`Pass::run`]; the
    /// rewriting passes override it with the sharded propose/commit engine
    /// ([`crate::shard`]), whose result is bit-identical for every thread
    /// count. Passes whose work is inherently serial (XOR reduction, arena
    /// compaction) keep the fallback.
    fn run_parallel(&self, xag: &mut Xag, ctx: &mut OptContext, threads: usize) -> PassStats {
        let _ = threads;
        self.run(xag, ctx)
    }
}

/// Load-balancing seed of the parallel rewriting passes (the shard-claim
/// shuffle). Fixed — never wall-clock — so parallel runs are reproducible;
/// it cannot affect results, only scheduling (see [`crate::shard`]).
pub(crate) const PAR_REWRITE_SEED: u64 = 0xDAC1_9DAC_19DA_C19D;

/// One round of cut rewriting shared by [`McRewrite`] and [`SizeRewrite`]
/// (and the [`crate::McOptimizer`] facade's `run_once`).
pub(crate) fn rewrite_round(
    xag: &mut Xag,
    ctx: &mut OptContext,
    cut_params: &CutParams,
    objective: Objective,
    pass_name: &str,
) -> PassStats {
    let _round = mc_obs::prof::phase(match objective {
        Objective::MultiplicativeComplexity => "mc_rewrite",
        Objective::Size => "size_rewrite",
    });
    // lint: allow(determinism): wall-clock feeds PassStats/metrics timing only; never branches on it
    let start = Instant::now();
    let mut topo = TopoScratch::new();
    let mut order: Vec<NodeId> = Vec::new();
    xag.live_gates_into(&mut topo, &mut order);
    let (ands_before, xors_before) = count_gates(xag, &order);
    let mut applied = 0usize;
    let mut considered = 0usize;

    // Enumeration computes every cut's function in the same bottom-up sweep;
    // those tables describe the network as it is *now*. They stay valid until
    // the first accepted substitution, after which cut functions must be
    // re-derived on the mutated network.
    let sets = {
        let _p = mc_obs::prof::phase("cut_enum");
        enumerate_cuts_for(xag, &order, cut_params)
    };
    let mut cone = ConeScratch::new();
    let mut mutated = false;
    for &root in &order {
        if xag.is_dead(root) {
            continue;
        }
        // Find the best replacement among this node's cuts. The phase
        // guard is per node — never per cut.
        let classify = mc_obs::prof::phase("classify");
        let mut best: Option<(i64, XagFragment, [Signal; 6], usize)> = None;
        let tts = sets.functions_of(root);
        for (ci, cut) in sets.of(root).iter().enumerate() {
            if cut.size() < 2 {
                continue; // trivial and single-leaf cuts
            }
            // Leaves may have died since enumeration; re-derive the cut
            // function on the current network (None = no longer a cut).
            if cut.leaves().iter().any(|&l| xag.is_dead(l)) {
                continue;
            }
            let tt = if mutated {
                match xag.cone_tt_with(root, cut.leaves(), &mut cone) {
                    Some(tt) => tt,
                    None => continue,
                }
            } else {
                tts[ci]
            };
            if tt.is_constant() {
                continue;
            }
            considered += 1;
            let candidate = ctx.candidate_for_cut(tt);
            let mut leaves = [Signal::CONST0; 6];
            for (k, &l) in cut.leaves().iter().enumerate() {
                leaves[k] = Signal::new(l, false);
            }
            let nl = cut.size();
            let (freed_ands, freed_total) = xag.deref_cone(root, cut.leaves());
            let (added_ands, added_total) = candidate.count_new_gates(xag, &leaves[..nl]);
            xag.ref_cone(root, cut.leaves());
            let gain = match objective {
                Objective::MultiplicativeComplexity => freed_ands as i64 - added_ands as i64,
                Objective::Size => freed_total as i64 - added_total as i64,
            };
            if gain > 0 && best.as_ref().map(|(g, ..)| gain > *g).unwrap_or(true) {
                best = Some((gain, candidate, leaves, nl));
            }
        }
        drop(classify);
        if let Some((_, candidate, leaves, nl)) = best {
            let watermark = xag.capacity();
            let new_sig = {
                let _p = mc_obs::prof::phase("synth");
                candidate.instantiate(xag, &leaves[..nl])
            };
            let _p = mc_obs::prof::phase("commit_validate");
            if new_sig.node() != root && !xag.is_in_tfi(root, new_sig) {
                xag.substitute(root, new_sig);
                applied += 1;
                mutated = true;
            } else {
                // The instantiated candidate was rejected (it resolved to
                // the root itself, or substituting would create a cycle).
                // Its freshly created nodes are referenced by nothing —
                // reclaim everything above the pre-instantiation watermark
                // instead of leaving garbage in the arena round after round.
                // This leaves every pre-existing cone untouched, so the
                // enumeration-time cut functions remain valid.
                xag.reclaim_above(watermark);
            }
        }
    }

    xag.live_gates_into(&mut topo, &mut order);
    let (ands_after, xors_after) = count_gates(xag, &order);
    PassStats {
        pass: pass_name.to_string(),
        ands_before,
        xors_before,
        ands_after,
        xors_after,
        rewrites_applied: applied,
        cuts_considered: considered,
        elapsed: start.elapsed(),
    }
}

/// Counts `(AND, XOR)` gates of a topological order in one walk, instead of
/// two full `num_ands`/`num_xors` DFS passes.
pub(crate) fn count_gates(xag: &Xag, order: &[NodeId]) -> (usize, usize) {
    let ands = order
        .iter()
        .filter(|&&n| xag.kind(n) == NodeKind::And)
        .count();
    (ands, order.len() - ands)
}

/// Cut rewriting minimizing multiplicative complexity — the paper's
/// Algorithm 1, as a composable pass. One execution is one round over all
/// gates; run it under a [`crate::Pipeline`] for convergence.
///
/// `rewrites_applied` counts accepted substitutions.
#[derive(Debug, Clone)]
pub struct McRewrite {
    cut_params: CutParams,
    name: String,
}

impl Default for McRewrite {
    fn default() -> Self {
        Self::new()
    }
}

impl McRewrite {
    /// Paper parameters: 6-feasible cuts, at most 12 per node.
    pub fn new() -> Self {
        Self::with_params(CutParams::default())
    }

    /// Paper parameters with a different cut size.
    pub fn with_cut_size(cut_size: usize) -> Self {
        Self::with_params(CutParams {
            cut_size,
            ..CutParams::default()
        })
    }

    /// Fully custom cut enumeration parameters.
    pub fn with_params(cut_params: CutParams) -> Self {
        Self {
            name: format!("mc-rewrite<{}>", cut_params.cut_size),
            cut_params,
        }
    }

    /// The cut enumeration parameters this pass runs with.
    pub fn cut_params(&self) -> &CutParams {
        &self.cut_params
    }
}

impl Pass for McRewrite {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, xag: &mut Xag, ctx: &mut OptContext) -> PassStats {
        rewrite_round(
            xag,
            ctx,
            &self.cut_params,
            Objective::MultiplicativeComplexity,
            &self.name,
        )
    }

    fn run_parallel(&self, xag: &mut Xag, ctx: &mut OptContext, threads: usize) -> PassStats {
        crate::shard::parallel_rewrite_round(
            xag,
            ctx,
            &self.cut_params,
            Objective::MultiplicativeComplexity,
            threads,
            PAR_REWRITE_SEED,
            &self.name,
        )
    }
}

/// Cut rewriting with unit gate costs (AND and XOR both cost 1) — the
/// generic size optimizer standing in for the paper's ABC baseline.
#[derive(Debug, Clone)]
pub struct SizeRewrite {
    cut_params: CutParams,
    name: String,
}

impl Default for SizeRewrite {
    fn default() -> Self {
        Self::new()
    }
}

impl SizeRewrite {
    /// Default cut enumeration parameters.
    pub fn new() -> Self {
        Self::with_params(CutParams::default())
    }

    /// Default parameters with a different cut size.
    pub fn with_cut_size(cut_size: usize) -> Self {
        Self::with_params(CutParams {
            cut_size,
            ..CutParams::default()
        })
    }

    /// Fully custom cut enumeration parameters.
    pub fn with_params(cut_params: CutParams) -> Self {
        Self {
            name: format!("size-rewrite<{}>", cut_params.cut_size),
            cut_params,
        }
    }
}

impl Pass for SizeRewrite {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, xag: &mut Xag, ctx: &mut OptContext) -> PassStats {
        rewrite_round(xag, ctx, &self.cut_params, Objective::Size, &self.name)
    }

    fn run_parallel(&self, xag: &mut Xag, ctx: &mut OptContext, threads: usize) -> PassStats {
        crate::shard::parallel_rewrite_round(
            xag,
            ctx,
            &self.cut_params,
            Objective::Size,
            threads,
            PAR_REWRITE_SEED,
            &self.name,
        )
    }
}

/// Sharded parallel cut rewriting with a fixed worker count — the
/// pass-object form of the [`crate::shard`] engine, for flows that want a
/// parallel round regardless of how they are run.
///
/// Unlike [`McRewrite`]/[`SizeRewrite`] — which parallelize only under
/// [`crate::Pipeline::run_parallel`] — this pass uses its own thread count
/// even under a plain [`Pipeline::run`](crate::Pipeline::run) or
/// [`Pass::run`]. Results are bit-identical for every thread count;
/// `rewrites_applied` counts committed substitutions.
#[derive(Debug, Clone)]
pub struct ParRewrite {
    cut_params: CutParams,
    objective: Objective,
    threads: usize,
    seed: u64,
    name: String,
}

impl ParRewrite {
    /// MC-objective parallel rewriting with the paper's cut parameters.
    pub fn new(threads: usize) -> Self {
        Self::with_params(
            CutParams::default(),
            Objective::MultiplicativeComplexity,
            threads,
        )
    }

    /// Fully custom parameters.
    pub fn with_params(cut_params: CutParams, objective: Objective, threads: usize) -> Self {
        Self {
            name: format!("par-rewrite<{}>x{}", cut_params.cut_size, threads.max(1)),
            cut_params,
            objective,
            threads: threads.max(1),
            seed: PAR_REWRITE_SEED,
        }
    }

    /// Overrides the load-balancing seed (scheduling only; results are
    /// seed-independent).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The worker count this pass runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Pass for ParRewrite {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, xag: &mut Xag, ctx: &mut OptContext) -> PassStats {
        crate::shard::parallel_rewrite_round(
            xag,
            ctx,
            &self.cut_params,
            self.objective,
            self.threads,
            self.seed,
            &self.name,
        )
    }

    fn run_parallel(&self, xag: &mut Xag, ctx: &mut OptContext, threads: usize) -> PassStats {
        crate::shard::parallel_rewrite_round(
            xag,
            ctx,
            &self.cut_params,
            self.objective,
            threads.max(1),
            self.seed,
            &self.name,
        )
    }
}

/// Paar common-subexpression extraction over the linear layers — the pass
/// form of [`crate::reduce_xors`]. Never touches AND gates or the
/// multiplicative depth; `rewrites_applied` counts removed XOR gates.
#[derive(Debug, Clone, Copy, Default)]
pub struct XorReduce;

impl XorReduce {
    /// Creates the pass.
    pub fn new() -> Self {
        Self
    }
}

impl Pass for XorReduce {
    fn name(&self) -> &str {
        "xor-reduce"
    }

    fn run(&self, xag: &mut Xag, _ctx: &mut OptContext) -> PassStats {
        let _round = mc_obs::prof::phase("xor_reduce");
        // lint: allow(determinism): wall-clock feeds PassStats/metrics timing only; never branches on it
        let start = Instant::now();
        let ands_before = xag.num_ands();
        let xors_before = xag.num_xors();
        *xag = reduce_xors(xag);
        PassStats {
            pass: self.name().to_string(),
            ands_before,
            xors_before,
            ands_after: xag.num_ands(),
            xors_after: xag.num_xors(),
            rewrites_applied: xors_before.saturating_sub(xag.num_xors()),
            cuts_considered: 0,
            elapsed: start.elapsed(),
        }
    }
}

/// Arena compaction: rebuilds the network keeping only nodes reachable
/// from the primary outputs. Gate counts are unchanged by construction;
/// `rewrites_applied` counts reclaimed node slots.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cleanup;

impl Cleanup {
    /// Creates the pass.
    pub fn new() -> Self {
        Self
    }
}

impl Pass for Cleanup {
    fn name(&self) -> &str {
        "cleanup"
    }

    fn run(&self, xag: &mut Xag, _ctx: &mut OptContext) -> PassStats {
        let _round = mc_obs::prof::phase("cleanup");
        // lint: allow(determinism): wall-clock feeds PassStats/metrics timing only; never branches on it
        let start = Instant::now();
        let ands_before = xag.num_ands();
        let xors_before = xag.num_xors();
        let capacity_before = xag.capacity();
        *xag = xag.cleanup();
        PassStats {
            pass: self.name().to_string(),
            ands_before,
            xors_before,
            ands_after: xag.num_ands(),
            xors_after: xag.num_xors(),
            rewrites_applied: capacity_before.saturating_sub(xag.capacity()),
            cuts_considered: 0,
            elapsed: start.elapsed(),
        }
    }
}
