//! Cut rewriting to minimize multiplicative complexity — the DAC'19
//! contribution — organized as a pass-based optimization pipeline.
//!
//! The building blocks:
//!
//! * [`OptContext`] — the shared state every pass reads and grows: the
//!   affine classifier ([`xag_affine`]), the synthesis engine
//!   ([`xag_synth`]), and the on-demand representative database (the
//!   paper's `XAG_DB`). One context amortizes across passes *and*
//!   networks.
//! * [`Pass`] — one step of a flow: [`McRewrite`] (the paper's
//!   Algorithm 1), [`SizeRewrite`] (the unit-cost ABC-baseline stand-in),
//!   [`ParRewrite`] (sharded parallel rewriting with a fixed worker
//!   count), [`XorReduce`] (Paar linear-layer compression), and
//!   [`Cleanup`] (arena compaction).
//! * [`Pipeline`] — ABC-script-style flow construction
//!   ([`Pipeline::paper_flow`], [`Pipeline::compress`], or pass by pass
//!   with [`Pipeline::add`]) with until-convergence repetition and
//!   per-pass statistics; [`Pipeline::run_parallel`] runs the same flow
//!   on a worker pool through the sharded engine ([`shard`]), producing
//!   bit-identical results for every thread count.
//! * [`McOptimizer`] — a thin facade running [`Pipeline::paper_flow`]
//!   with one call, for the common case ([`RewriteParams::threads`]
//!   routes it through the parallel engine).
//!
//! One [`McRewrite`] round implements the paper's Algorithm 1 on top of
//! the supporting crates:
//!
//! 1. enumerate 6-feasible cuts of every gate ([`xag_cuts`]);
//! 2. compute each cut's function as a truth table;
//! 3. classify it into its affine-equivalence class ([`xag_affine`]),
//!    obtaining a representative and the operation sequence;
//! 4. fetch the representative's low-AND circuit from the database
//!    (synthesized on demand and cached — [`xag_synth`] replaces the
//!    paper's precomputed NIST `XAG_DB`);
//! 5. replay the affine operations on the circuit (free: XORs, inverters
//!    and wiring only) to obtain a drop-in replacement for the cut;
//! 6. accept the replacement when it strictly decreases the number of AND
//!    gates, taking structural sharing into account (MFFC dereferencing for
//!    the removed logic, hash-aware dry-run for the added logic);
//! 7. iterate over all nodes, and — under [`Pipeline::run`] — until
//!    convergence.
//!
//! # Examples
//!
//! Optimize the textbook full adder to a single AND gate (paper Fig. 1/2)
//! through the facade:
//!
//! ```
//! use xag_mc::McOptimizer;
//! use xag_network::Xag;
//!
//! let mut xag = Xag::new();
//! let (a, b, cin) = (xag.input(), xag.input(), xag.input());
//! let ab = xag.and(a, b);
//! let ac = xag.and(a, cin);
//! let bc = xag.and(b, cin);
//! let t = xag.xor(ab, ac);
//! let cout = xag.xor(t, bc);
//! let axb = xag.xor(a, b);
//! let sum = xag.xor(axb, cin);
//! xag.output(sum);
//! xag.output(cout);
//! assert_eq!(xag.num_ands(), 3);
//!
//! let mut opt = McOptimizer::new();
//! opt.run_to_convergence(&mut xag);
//! assert_eq!(xag.num_ands(), 1);
//! ```
//!
//! The same run as an explicit pipeline, keeping the per-pass breakdown
//! (see [`Pipeline`] for flow construction):
//!
//! ```
//! # use xag_mc::{OptContext, Pipeline};
//! # use xag_network::Xag;
//! # let mut xag = Xag::new();
//! # let (a, b, cin) = (xag.input(), xag.input(), xag.input());
//! # let ab = xag.and(a, b);
//! # let ac = xag.and(a, cin);
//! # let bc = xag.and(b, cin);
//! # let t = xag.xor(ab, ac);
//! # let cout = xag.xor(t, bc);
//! # let axb = xag.xor(a, b);
//! # let sum = xag.xor(axb, cin);
//! # xag.output(sum);
//! # xag.output(cout);
//! let mut ctx = OptContext::new();
//! let stats = Pipeline::paper_flow().run(&mut xag, &mut ctx);
//! assert_eq!(xag.num_ands(), 1);
//! for pass in stats.per_pass() {
//!     println!("{}: {} runs, {} ANDs saved", pass.name, pass.runs, pass.ands_saved);
//! }
//! ```

use xag_affine::ClassifyConfig;
use xag_cuts::CutParams;
use xag_network::{Xag, XagFragment};
use xag_synth::SynthConfig;
use xag_tt::Tt;

pub mod canon;
mod context;
mod cost;
pub mod flow;
mod job;
mod observe;
mod pass;
mod pipeline;
pub mod shard;
mod stats;
mod xor_reduce;

pub use canon::{canonical_form, fingerprint, job_key};
pub use context::OptContext;
pub use cost::{protocol_costs, ProtocolCosts};
pub use flow::{FlowError, FlowItem, FlowSpec, FlowUnit, Repeat};
pub use job::{run_job, FlowKind, JobResult, JobSpec};
pub use pass::{Cleanup, McRewrite, ParRewrite, Pass, PassStats, SizeRewrite, XorReduce};
pub use pipeline::{PassSummary, Pipeline, PipelineStats};
pub use shard::{partition_windows, Shard};
pub use stats::{RewriteStats, RoundStats};
pub use xor_reduce::reduce_xors;

/// What the rewriter minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize AND gates (multiplicative complexity) — the paper's goal.
    #[default]
    MultiplicativeComplexity,
    /// Minimize total gate count with unit costs, standing in for generic
    /// size optimization (the paper's ABC baseline).
    Size,
}

/// Parameters of the rewriting loop.
#[derive(Debug, Clone, Copy)]
pub struct RewriteParams {
    /// Objective function.
    pub objective: Objective,
    /// Cut enumeration parameters (paper defaults: 6-cuts, limit 12).
    pub cut_params: CutParams,
    /// Heuristic classifier configuration for 5-/6-input cut functions.
    pub classify_config: ClassifyConfig,
    /// Database synthesizer configuration.
    pub synth_config: SynthConfig,
    /// Maximum number of rounds in [`McOptimizer::run_to_convergence`]
    /// (the paper observed convergence within 58 rounds on all benchmarks).
    pub max_rounds: usize,
    /// Worker threads for the rewriting passes. `1` (the default) runs the
    /// classic sequential rounds; `> 1` routes every round through the
    /// sharded propose/commit engine ([`shard`]), whose result is
    /// bit-identical for every thread count.
    pub threads: usize,
}

impl Default for RewriteParams {
    fn default() -> Self {
        Self {
            objective: Objective::MultiplicativeComplexity,
            cut_params: CutParams::default(),
            classify_config: ClassifyConfig::default(),
            synth_config: SynthConfig::default(),
            max_rounds: 100,
            threads: 1,
        }
    }
}

impl RewriteParams {
    /// Parameters for the generic size-rewriting baseline.
    pub fn size_baseline() -> Self {
        Self {
            objective: Objective::Size,
            ..Self::default()
        }
    }
}

/// The one-call facade over the pass pipeline: owns an [`OptContext`] and
/// runs the flow [`Pipeline::from_params`] builds for its parameters.
///
/// Keeping one optimizer alive across many networks amortizes the
/// database: representatives synthesized for one benchmark are reused by
/// the next. For custom flows, per-pass statistics, or sharing the
/// context with other passes, use [`Pipeline`] and [`OptContext`]
/// directly.
#[derive(Debug, Default)]
pub struct McOptimizer {
    params: RewriteParams,
    ctx: OptContext,
}

impl McOptimizer {
    /// Creates an optimizer with default (paper) parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an optimizer with custom parameters.
    pub fn with_params(params: RewriteParams) -> Self {
        Self {
            params,
            ctx: OptContext::with_config(params.classify_config, params.synth_config),
        }
    }

    /// Number of distinct representatives currently in the database.
    pub fn db_size(&self) -> usize {
        self.ctx.db_size()
    }

    /// The shared optimization context, e.g. to hand to a [`Pipeline`] so
    /// that facade runs and custom flows share one database.
    pub fn context_mut(&mut self) -> &mut OptContext {
        &mut self.ctx
    }

    /// Runs one rewriting round over all gates (the paper's "One round"
    /// columns) and returns its statistics.
    pub fn run_once(&mut self, xag: &mut Xag) -> RoundStats {
        pass::rewrite_round(
            xag,
            &mut self.ctx,
            &self.params.cut_params,
            self.params.objective,
            "facade",
        )
        .into()
    }

    /// Repeats rewriting rounds until the objective stops improving (the
    /// paper's "Repeat until convergence" columns) or
    /// [`RewriteParams::max_rounds`] is reached, by running the
    /// [`Pipeline::from_params`] flow — 4-feasible cuts alternated with
    /// the configured cut size, smaller first (see
    /// [`Pipeline::paper_flow`] for why).
    pub fn run_to_convergence(&mut self, xag: &mut Xag) -> RewriteStats {
        let flow = Pipeline::from_params(&self.params);
        let stats = if self.params.threads > 1 {
            flow.run_parallel(xag, &mut self.ctx, self.params.threads)
        } else {
            flow.run(xag, &mut self.ctx)
        };
        stats.into_rewrite_stats()
    }

    /// Algorithm 1 of the paper: build the replacement circuit for a cut
    /// function — classify, look the representative up in the database
    /// (synthesizing on a miss), then replay the affine operations.
    pub fn candidate_for_cut(&mut self, tt: Tt) -> XagFragment {
        self.ctx.candidate_for_cut(tt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_network::{equiv_exhaustive, Signal};

    fn textbook_full_adder() -> Xag {
        let mut xag = Xag::new();
        let (a, b, cin) = (xag.input(), xag.input(), xag.input());
        let ab = xag.and(a, b);
        let ac = xag.and(a, cin);
        let bc = xag.and(b, cin);
        let t = xag.xor(ab, ac);
        let cout = xag.xor(t, bc);
        let axb = xag.xor(a, b);
        let sum = xag.xor(axb, cin);
        xag.output(sum);
        xag.output(cout);
        xag
    }

    #[test]
    fn full_adder_reaches_mc_one() {
        let mut xag = textbook_full_adder();
        let reference = xag.cleanup();
        let mut opt = McOptimizer::new();
        let stats = opt.run_to_convergence(&mut xag);
        assert!(stats.converged);
        assert_eq!(xag.num_ands(), 1, "paper: full adder has MC 1");
        assert!(equiv_exhaustive(&reference, &xag.cleanup()));
    }

    #[test]
    fn candidate_matches_cut_function() {
        let mut opt = McOptimizer::new();
        for bits in [0xe8u64, 0x96, 0x17, 0x80] {
            let tt = Tt::from_bits(bits, 3);
            let frag = opt.candidate_for_cut(tt);
            assert_eq!(frag.eval_tt(), tt);
        }
        // 6-input functions go through the heuristic classifier.
        let tt = Tt::from_bits(0xdead_beef_cafe_1234, 6);
        let frag = opt.candidate_for_cut(tt);
        assert_eq!(frag.eval_tt(), tt);
    }

    #[test]
    fn database_is_shared_across_calls() {
        let mut opt = McOptimizer::new();
        let maj = Tt::from_bits(0xe8, 3);
        let _ = opt.candidate_for_cut(maj);
        let after_first = opt.db_size();
        // Same class, different (full-support) member: no new entry.
        let member = maj.flip_var(0).translate(1, 2);
        let _ = opt.candidate_for_cut(member);
        assert_eq!(opt.db_size(), after_first);
    }

    #[test]
    fn facade_and_pipeline_share_a_database() {
        let mut opt = McOptimizer::new();
        let mut xag = textbook_full_adder();
        opt.run_to_convergence(&mut xag);
        let db_after_facade = opt.db_size();
        assert!(db_after_facade > 0);
        // A pipeline run over the facade's context reuses its entries.
        let mut again = textbook_full_adder();
        Pipeline::paper_flow().run(&mut again, opt.context_mut());
        assert_eq!(again.num_ands(), 1);
        assert_eq!(opt.db_size(), db_after_facade);
    }

    #[test]
    fn size_baseline_reduces_total_gates() {
        // A deliberately redundant network.
        let mut xag = Xag::new();
        let (a, b, c) = (xag.input(), xag.input(), xag.input());
        let t1 = xag.and(a, b);
        let t2 = xag.and(a, c);
        let t3 = xag.xor(t1, t2); // = a & (b ^ c) — one AND suffices
        let o = xag.or(t3, a);
        xag.output(o);
        let reference = xag.cleanup();
        let before = xag.num_gates();
        let mut opt = McOptimizer::with_params(RewriteParams::size_baseline());
        opt.run_to_convergence(&mut xag);
        assert!(xag.num_gates() <= before);
        assert!(equiv_exhaustive(&reference, &xag.cleanup()));
    }

    #[test]
    fn rewriting_never_breaks_equivalence() {
        // A random-ish mixed network.
        let mut xag = Xag::new();
        let ins: Vec<Signal> = (0..6).map(|_| xag.input()).collect();
        let mut pool = ins.clone();
        let mut state = 0xabcdef_u64;
        for k in 0..40 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = pool[(state >> 13) as usize % pool.len()] ^ (state & 1 == 1);
            let b = pool[(state >> 29) as usize % pool.len()] ^ (state & 2 == 2);
            let s = if k % 3 == 0 {
                xag.xor(a, b)
            } else {
                xag.and(a, b)
            };
            pool.push(s);
        }
        for s in pool.iter().rev().take(4) {
            xag.output(*s);
        }
        let reference = xag.cleanup();
        let before = xag.num_ands();
        let mut opt = McOptimizer::new();
        let stats = opt.run_to_convergence(&mut xag);
        assert!(xag.num_ands() <= before);
        assert!(equiv_exhaustive(&reference, &xag.cleanup()));
        assert!(!stats.rounds.is_empty());
    }

    #[test]
    fn converged_run_once_does_not_grow_the_arena() {
        // Regression test for the rejected-candidate leak: on a converged
        // network every instantiated candidate is rejected (or none is
        // instantiated at all), so repeated rounds must not allocate.
        let mut xag = textbook_full_adder();
        let mut opt = McOptimizer::new();
        opt.run_to_convergence(&mut xag);
        let capacity = xag.capacity();
        for _ in 0..3 {
            let stats = opt.run_once(&mut xag);
            assert_eq!(stats.rewrites_applied, 0);
        }
        assert_eq!(
            xag.capacity(),
            capacity,
            "rejected candidates leaked into the arena"
        );
    }
}
