//! Cut rewriting to minimize multiplicative complexity — the DAC'19
//! contribution.
//!
//! The optimizer implements the paper's Algorithm 1 on top of the
//! supporting crates:
//!
//! 1. enumerate 6-feasible cuts of every gate ([`xag_cuts`]);
//! 2. compute each cut's function as a truth table;
//! 3. classify it into its affine-equivalence class ([`xag_affine`]),
//!    obtaining a representative and the operation sequence;
//! 4. fetch the representative's low-AND circuit from the database
//!    (synthesized on demand and cached — [`xag_synth`] replaces the
//!    paper's precomputed NIST `XAG_DB`);
//! 5. replay the affine operations on the circuit (free: XORs, inverters
//!    and wiring only) to obtain a drop-in replacement for the cut;
//! 6. accept the replacement when it strictly decreases the number of AND
//!    gates, taking structural sharing into account (MFFC dereferencing for
//!    the removed logic, hash-aware dry-run for the added logic);
//! 7. iterate over all nodes, and optionally until convergence.
//!
//! A generic *size* optimizer (unit cost for AND and XOR, standing in for
//! the ABC baseline of the paper's Table 1) shares the same machinery with
//! a different gain function.
//!
//! # Examples
//!
//! Optimize the textbook full adder to a single AND gate (paper Fig. 1/2):
//!
//! ```
//! use xag_mc::McOptimizer;
//! use xag_network::Xag;
//!
//! let mut xag = Xag::new();
//! let (a, b, cin) = (xag.input(), xag.input(), xag.input());
//! let ab = xag.and(a, b);
//! let ac = xag.and(a, cin);
//! let bc = xag.and(b, cin);
//! let t = xag.xor(ab, ac);
//! let cout = xag.xor(t, bc);
//! let axb = xag.xor(a, b);
//! let sum = xag.xor(axb, cin);
//! xag.output(sum);
//! xag.output(cout);
//! assert_eq!(xag.num_ands(), 3);
//!
//! let mut opt = McOptimizer::new();
//! opt.run_to_convergence(&mut xag);
//! assert_eq!(xag.num_ands(), 1);
//! ```

use std::collections::HashMap;
use std::time::Instant;

use xag_affine::{AffineClassifier, ClassifyConfig};
use xag_cuts::{enumerate_cuts, CutParams};
use xag_network::{Signal, Xag, XagFragment};
use xag_synth::{SynthConfig, Synthesizer};
use xag_tt::Tt;

mod cost;
mod stats;
mod xor_reduce;

pub use cost::{protocol_costs, ProtocolCosts};
pub use stats::{RewriteStats, RoundStats};
pub use xor_reduce::reduce_xors;

/// What the rewriter minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize AND gates (multiplicative complexity) — the paper's goal.
    #[default]
    MultiplicativeComplexity,
    /// Minimize total gate count with unit costs, standing in for generic
    /// size optimization (the paper's ABC baseline).
    Size,
}

/// Parameters of the rewriting loop.
#[derive(Debug, Clone, Copy)]
pub struct RewriteParams {
    /// Objective function.
    pub objective: Objective,
    /// Cut enumeration parameters (paper defaults: 6-cuts, limit 12).
    pub cut_params: CutParams,
    /// Heuristic classifier configuration for 5-/6-input cut functions.
    pub classify_config: ClassifyConfig,
    /// Database synthesizer configuration.
    pub synth_config: SynthConfig,
    /// Maximum number of rounds in [`McOptimizer::run_to_convergence`]
    /// (the paper observed convergence within 58 rounds on all benchmarks).
    pub max_rounds: usize,
}

impl Default for RewriteParams {
    fn default() -> Self {
        Self {
            objective: Objective::MultiplicativeComplexity,
            cut_params: CutParams::default(),
            classify_config: ClassifyConfig::default(),
            synth_config: SynthConfig::default(),
            max_rounds: 100,
        }
    }
}

impl RewriteParams {
    /// Parameters for the generic size-rewriting baseline.
    pub fn size_baseline() -> Self {
        Self {
            objective: Objective::Size,
            ..Self::default()
        }
    }
}

/// The cut-rewriting optimizer, owning the affine classifier, the on-demand
/// representative database, and the synthesis engine.
///
/// Keeping one optimizer alive across many networks amortizes the database:
/// representatives synthesized for one benchmark are reused by the next.
#[derive(Debug, Default)]
pub struct McOptimizer {
    params: RewriteParams,
    classifier: AffineClassifier,
    synth: Synthesizer,
    /// The `XAG_DB` of the paper: representative truth table → circuit.
    db: HashMap<Tt, XagFragment>,
}

impl McOptimizer {
    /// Creates an optimizer with default (paper) parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an optimizer with custom parameters.
    pub fn with_params(params: RewriteParams) -> Self {
        Self {
            params,
            classifier: AffineClassifier::with_config(params.classify_config),
            synth: Synthesizer::with_config(params.synth_config),
            db: HashMap::new(),
        }
    }

    /// Number of distinct representatives currently in the database.
    pub fn db_size(&self) -> usize {
        self.db.len()
    }

    /// Runs one rewriting round over all gates (the paper's "One round"
    /// columns) and returns its statistics.
    pub fn run_once(&mut self, xag: &mut Xag) -> RoundStats {
        self.run_once_with_cut_size(xag, self.params.cut_params.cut_size)
    }

    fn run_once_with_cut_size(&mut self, xag: &mut Xag, cut_size: usize) -> RoundStats {
        let start = Instant::now();
        let ands_before = xag.num_ands();
        let xors_before = xag.num_xors();
        let mut applied = 0usize;
        let mut considered = 0usize;

        let cut_params = CutParams {
            cut_size,
            ..self.params.cut_params
        };
        let sets = enumerate_cuts(xag, &cut_params);
        let order = xag.live_gates();
        for root in order {
            if xag.is_dead(root) {
                continue;
            }
            // Find the best replacement among this node's cuts.
            let mut best: Option<(i64, XagFragment, Vec<Signal>)> = None;
            for cut in sets.of(root) {
                if cut.size() < 2 {
                    continue; // trivial and single-leaf cuts
                }
                // Leaves may have died since enumeration; re-derive the cut
                // function on the current network (None = no longer a cut).
                if cut.leaves().iter().any(|&l| xag.is_dead(l)) {
                    continue;
                }
                let Some(tt) = xag.cone_tt(root, cut.leaves()) else {
                    continue;
                };
                if tt.is_constant() {
                    continue;
                }
                considered += 1;
                let candidate = self.candidate_for_cut(tt);
                let leaves: Vec<Signal> = cut
                    .leaves()
                    .iter()
                    .map(|&l| Signal::new(l, false))
                    .collect();
                let (freed_ands, freed_total) = xag.deref_cone(root, cut.leaves());
                let (added_ands, added_total) = candidate.count_new_gates(xag, &leaves);
                xag.ref_cone(root, cut.leaves());
                let gain = match self.params.objective {
                    Objective::MultiplicativeComplexity => {
                        freed_ands as i64 - added_ands as i64
                    }
                    Objective::Size => freed_total as i64 - added_total as i64,
                };
                if gain > 0 && best.as_ref().map(|(g, _, _)| gain > *g).unwrap_or(true) {
                    best = Some((gain, candidate, leaves));
                }
            }
            if let Some((_, candidate, leaves)) = best {
                let new_sig = candidate.instantiate(xag, &leaves);
                if new_sig.node() != root && !xag.is_in_tfi(root, new_sig) {
                    xag.substitute(root, new_sig);
                    applied += 1;
                }
            }
        }

        RoundStats {
            ands_before,
            xors_before,
            ands_after: xag.num_ands(),
            xors_after: xag.num_xors(),
            rewrites_applied: applied,
            cuts_considered: considered,
            elapsed: start.elapsed(),
        }
    }

    /// Repeats [`McOptimizer::run_once`] until the objective stops
    /// improving (the paper's "Repeat until convergence" columns) or
    /// `max_rounds` is reached.
    ///
    /// Rounds alternate between 4-feasible cuts and the configured cut
    /// size, smaller first: for functions of up to four inputs the
    /// database is provably MC-optimal (affine + symplectic + exact
    /// MC ≤ 2 search + the three-AND worst case), so small-cut rounds
    /// establish locally optimal structures that heuristic 5-/6-input
    /// database entries would otherwise destroy, and wide-cut rounds then
    /// only fire on genuine cross-boundary gains. This compensates for
    /// substituting the paper's exact NIST database with on-demand
    /// synthesis (DESIGN.md §3).
    pub fn run_to_convergence(&mut self, xag: &mut Xag) -> RewriteStats {
        let big = self.params.cut_params.cut_size;
        let schedule: &[usize] = if big > 4 { &[4, 0] } else { &[0] };
        let mut rounds = Vec::new();
        let mut converged = false;
        let mut phase = 0usize;
        let mut stale_phases = 0usize;
        while rounds.len() < self.params.max_rounds {
            let size = if schedule[phase % schedule.len()] == 0 {
                big
            } else {
                schedule[phase % schedule.len()]
            };
            let stats = self.run_once_with_cut_size(xag, size);
            let improved = match self.params.objective {
                Objective::MultiplicativeComplexity => stats.ands_after < stats.ands_before,
                Objective::Size => {
                    stats.ands_after + stats.xors_after < stats.ands_before + stats.xors_before
                }
            };
            rounds.push(stats);
            if improved {
                stale_phases = 0;
            } else {
                stale_phases += 1;
                phase += 1;
                if stale_phases >= schedule.len() {
                    converged = true;
                    break;
                }
            }
        }
        RewriteStats { rounds, converged }
    }

    /// Algorithm 1 of the paper: build the replacement circuit for a cut
    /// function — classify, look the representative up in the database
    /// (synthesizing on a miss), then replay the affine operations.
    pub fn candidate_for_cut(&mut self, tt: Tt) -> XagFragment {
        // Reduce to the support first: classification and the database work
        // on the compacted function.
        let (g, map) = tt.shrink_to_support();
        if g.vars() != tt.vars() {
            let inner = self.candidate_for_cut_reduced(g);
            let lifted = inner.with_inputs(tt.vars(), &map);
            debug_assert_eq!(lifted.eval_tt(), tt);
            return lifted;
        }
        let frag = self.candidate_for_cut_reduced(tt);
        debug_assert_eq!(frag.eval_tt(), tt);
        frag
    }

    fn candidate_for_cut_reduced(&mut self, tt: Tt) -> XagFragment {
        if tt.is_constant() || tt.vars() == 0 {
            return XagFragment::constant(tt.vars(), tt.is_one());
        }
        let classification = self.classifier.classify(tt);
        let rep = classification.representative;
        let rep_frag = match self.db.get(&rep) {
            Some(frag) => frag.clone(),
            None => {
                let frag = self.synth.synthesize(rep);
                self.db.insert(rep, frag.clone());
                frag
            }
        };
        rep_frag.undo_affine_ops(&classification.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_network::equiv_exhaustive;

    fn textbook_full_adder() -> Xag {
        let mut xag = Xag::new();
        let (a, b, cin) = (xag.input(), xag.input(), xag.input());
        let ab = xag.and(a, b);
        let ac = xag.and(a, cin);
        let bc = xag.and(b, cin);
        let t = xag.xor(ab, ac);
        let cout = xag.xor(t, bc);
        let axb = xag.xor(a, b);
        let sum = xag.xor(axb, cin);
        xag.output(sum);
        xag.output(cout);
        xag
    }

    #[test]
    fn full_adder_reaches_mc_one() {
        let mut xag = textbook_full_adder();
        let reference = xag.cleanup();
        let mut opt = McOptimizer::new();
        let stats = opt.run_to_convergence(&mut xag);
        assert!(stats.converged);
        assert_eq!(xag.num_ands(), 1, "paper: full adder has MC 1");
        assert!(equiv_exhaustive(&reference, &xag.cleanup()));
    }

    #[test]
    fn candidate_matches_cut_function() {
        let mut opt = McOptimizer::new();
        for bits in [0xe8u64, 0x96, 0x17, 0x80] {
            let tt = Tt::from_bits(bits, 3);
            let frag = opt.candidate_for_cut(tt);
            assert_eq!(frag.eval_tt(), tt);
        }
        // 6-input functions go through the heuristic classifier.
        let tt = Tt::from_bits(0xdead_beef_cafe_1234, 6);
        let frag = opt.candidate_for_cut(tt);
        assert_eq!(frag.eval_tt(), tt);
    }

    #[test]
    fn database_is_shared_across_calls() {
        let mut opt = McOptimizer::new();
        let maj = Tt::from_bits(0xe8, 3);
        let _ = opt.candidate_for_cut(maj);
        let after_first = opt.db_size();
        // Same class, different (full-support) member: no new entry.
        let member = maj.flip_var(0).translate(1, 2);
        let _ = opt.candidate_for_cut(member);
        assert_eq!(opt.db_size(), after_first);
    }

    #[test]
    fn size_baseline_reduces_total_gates() {
        // A deliberately redundant network.
        let mut xag = Xag::new();
        let (a, b, c) = (xag.input(), xag.input(), xag.input());
        let t1 = xag.and(a, b);
        let t2 = xag.and(a, c);
        let t3 = xag.xor(t1, t2); // = a & (b ^ c) — one AND suffices
        let o = xag.or(t3, a);
        xag.output(o);
        let reference = xag.cleanup();
        let before = xag.num_gates();
        let mut opt = McOptimizer::with_params(RewriteParams::size_baseline());
        opt.run_to_convergence(&mut xag);
        assert!(xag.num_gates() <= before);
        assert!(equiv_exhaustive(&reference, &xag.cleanup()));
    }

    #[test]
    fn rewriting_never_breaks_equivalence() {
        // A random-ish mixed network.
        let mut xag = Xag::new();
        let ins: Vec<Signal> = (0..6).map(|_| xag.input()).collect();
        let mut pool = ins.clone();
        let mut state = 0xabcdef_u64;
        for k in 0..40 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = pool[(state >> 13) as usize % pool.len()] ^ (state & 1 == 1);
            let b = pool[(state >> 29) as usize % pool.len()] ^ (state & 2 == 2);
            let s = if k % 3 == 0 { xag.xor(a, b) } else { xag.and(a, b) };
            pool.push(s);
        }
        for s in pool.iter().rev().take(4) {
            xag.output(*s);
        }
        let reference = xag.cleanup();
        let before = xag.num_ands();
        let mut opt = McOptimizer::new();
        let stats = opt.run_to_convergence(&mut xag);
        assert!(xag.num_ands() <= before);
        assert!(equiv_exhaustive(&reference, &xag.cleanup()));
        assert!(!stats.rounds.is_empty());
    }
}
