//! The job-level API of the optimizer: one network in, one optimized
//! network plus a [`JobResult`] out.
//!
//! Service layers (the `mc-serve` daemon, batch drivers) should speak
//! this API instead of composing passes themselves: a [`JobSpec`]
//! describes a flow as a [`FlowSpec`] (parsed from the wire, alias or
//! full spec) and carries the two knobs a remote caller may reasonably
//! pick (worker threads, round cap), and [`run_job`] executes it without
//! exposing pass internals.
//!
//! Every pass of a flow runs through [`Pass::run_parallel`] — even with
//! one thread — because the parallel engine is bit-identical across
//! thread counts. That makes the optimized network a function of
//! `(circuit, flow.normalized(), max_rounds)` alone, which is exactly
//! the property a semantic result cache needs: thread counts (the job's
//! or a `par{}` block's) may change wall-clock, never the answer.
//!
//! [`FlowKind`] — the closed three-flow enum this API exposed before the
//! FlowSpec redesign — survives as a **deprecated thin shim**: each
//! variant parses to its alias spec ([`FlowKind::spec`], or `.into()`),
//! so historical call sites keep compiling while new code speaks
//! [`FlowSpec`] directly.
//!
//! [`Pass::run_parallel`]: crate::Pass::run_parallel
//!
//! # Examples
//!
//! ```
//! use xag_mc::{run_job, JobSpec, OptContext};
//! use xag_network::Xag;
//!
//! let mut xag = Xag::new();
//! let (a, b, cin) = (xag.input(), xag.input(), xag.input());
//! let ab = xag.and(a, b);
//! let ac = xag.and(a, cin);
//! let bc = xag.and(b, cin);
//! let t = xag.xor(ab, ac);
//! let cout = xag.xor(t, bc);
//! let axb = xag.xor(a, b);
//! let sum = xag.xor(axb, cin);
//! xag.output(sum);
//! xag.output(cout);
//!
//! let mut ctx = OptContext::new();
//! let result = run_job(&mut xag, &mut ctx, &JobSpec::default());
//! assert_eq!(result.ands_after, 1);
//! assert!(result.converged);
//! ```
//!
//! A custom flow from a spec string:
//!
//! ```
//! # use xag_mc::{run_job, FlowSpec, JobSpec, OptContext};
//! # use xag_network::Xag;
//! # let mut xag = Xag::new();
//! # let (a, b) = (xag.input(), xag.input());
//! # let g = xag.and(a, b);
//! # xag.output(g);
//! let spec = JobSpec {
//!     flow: "mc(cut=6);xor;cleanup*".parse().unwrap(),
//!     ..JobSpec::default()
//! };
//! let mut ctx = OptContext::new();
//! let result = run_job(&mut xag, &mut ctx, &spec);
//! assert!(result.rounds > 0);
//! ```

use std::time::Duration;

use xag_network::Xag;

use crate::context::OptContext;
use crate::flow::FlowSpec;
use crate::pipeline::Pipeline;

/// The historical named optimization flows.
///
/// **Deprecated shim**: the job API speaks [`FlowSpec`] now, and each
/// variant here is nothing but a name for its alias spec — use
/// [`FlowKind::spec`] (or `FlowSpec::from(kind)`) to convert, and prefer
/// [`FlowSpec::parse`] for anything new. The enum remains because the
/// service tiers still enumerate the canonical flows for zero-filled
/// statistics rows ([`FlowKind::ALL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowKind {
    /// Alias `paper` — minimize multiplicative complexity until
    /// convergence (the DAC'19 flow): `{mc(cut=4);mc(cut=6)}*`.
    #[default]
    Paper,
    /// Alias `compress` — generic size compression (the ABC-script
    /// stand-in): `{size(cut=4);size(cut=6);xor}*`.
    Compress,
    /// Alias `from_params` — the fast 4-cut flow the
    /// [`crate::McOptimizer`] facade builds: `{mc(cut=4)}*`.
    FromParams,
}

impl FlowKind {
    /// The stable alias used on the wire and on CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::Paper => "paper",
            FlowKind::Compress => "compress",
            FlowKind::FromParams => "from_params",
        }
    }

    /// Every canonical flow, in wire-name order — service tiers use this
    /// to report a complete per-flow breakdown (zero-filled for flows
    /// not yet run).
    pub const ALL: [FlowKind; 3] = [FlowKind::Paper, FlowKind::Compress, FlowKind::FromParams];

    /// Parses a flow alias; accepts the historical `paper_flow`
    /// spelling. For full spec strings use [`FlowSpec::parse`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "paper" | "paper_flow" => Some(FlowKind::Paper),
            "compress" => Some(FlowKind::Compress),
            "from_params" => Some(FlowKind::FromParams),
            _ => None,
        }
    }

    /// The [`FlowSpec`] this alias expands to.
    pub fn spec(self) -> FlowSpec {
        FlowSpec::named(self.name()).expect("every FlowKind names a canonical alias")
    }

    /// Builds the corresponding pipeline, capped at `max_rounds`.
    ///
    /// Kept for the shim's byte-identity contract:
    /// `kind.pipeline(r)` and `kind.spec().to_pipeline(r)` construct the
    /// same pass sequence, so pre-FlowSpec callers and spec-driven
    /// callers optimize identically.
    pub fn pipeline(self, max_rounds: usize) -> Pipeline {
        let flow = match self {
            FlowKind::Paper => Pipeline::paper_flow(),
            FlowKind::Compress => Pipeline::compress(),
            FlowKind::FromParams => {
                let defaults = crate::RewriteParams::default();
                let params = crate::RewriteParams {
                    cut_params: xag_cuts::CutParams {
                        cut_size: 4,
                        ..defaults.cut_params
                    },
                    ..defaults
                };
                Pipeline::from_params(&params)
            }
        };
        flow.max_rounds(max_rounds.max(1))
    }
}

impl From<FlowKind> for FlowSpec {
    fn from(kind: FlowKind) -> Self {
        kind.spec()
    }
}

impl core::fmt::Display for FlowKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// What to run on a submitted network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The flow to run.
    pub flow: FlowSpec,
    /// Worker threads for the sharded engine (≥ 1; does not change the
    /// result, only wall-clock). `par{}` blocks in the flow override it
    /// locally.
    pub threads: usize,
    /// Cap on total pass executions across the whole flow.
    pub max_rounds: usize,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            flow: FlowSpec::default(),
            threads: 1,
            max_rounds: 100,
        }
    }
}

/// Gate-count, depth, and convergence summary of one executed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobResult {
    /// AND gates before optimization.
    pub ands_before: usize,
    /// XOR gates before optimization.
    pub xors_before: usize,
    /// Multiplicative depth before optimization.
    pub depth_before: usize,
    /// AND gates after optimization.
    pub ands_after: usize,
    /// XOR gates after optimization.
    pub xors_after: usize,
    /// Multiplicative depth after optimization.
    pub depth_after: usize,
    /// Pass executions used.
    pub rounds: usize,
    /// True iff the flow ran to completion (every until-convergence
    /// group converged) without hitting `max_rounds`.
    pub converged: bool,
    /// Wall-clock time of the flow.
    pub elapsed: Duration,
}

/// Runs `spec` on `xag` in place and reports the summary.
///
/// The result network depends only on
/// `(xag, spec.flow.normalized(), spec.max_rounds)` — see the
/// [module documentation](self) for why no thread count can affect it.
pub fn run_job(xag: &mut Xag, ctx: &mut OptContext, spec: &JobSpec) -> JobResult {
    let ands_before = xag.num_ands();
    let xors_before = xag.num_xors();
    let depth_before = xag.and_depth();
    let stats = spec
        .flow
        .run(xag, ctx, spec.threads.max(1), spec.max_rounds);
    JobResult {
        ands_before,
        xors_before,
        depth_before,
        ands_after: xag.num_ands(),
        xors_after: xag.num_xors(),
        depth_after: xag.and_depth(),
        rounds: stats.num_rounds(),
        converged: stats.converged,
        elapsed: stats.total_time(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_network::{equiv_exhaustive, write_verilog};

    fn redundant_network() -> Xag {
        let mut x = Xag::new();
        let (a, b, c) = (x.input(), x.input(), x.input());
        let t1 = x.and(a, b);
        let t2 = x.and(a, c);
        let t3 = x.xor(t1, t2);
        let o = x.or(t3, a);
        x.output(o);
        x
    }

    fn netlist_of(xag: &Xag) -> Vec<u8> {
        let mut buf = Vec::new();
        write_verilog(&xag.cleanup(), "m", &mut buf).expect("in-memory write");
        buf
    }

    #[test]
    fn flow_names_round_trip_and_accept_alias() {
        for f in FlowKind::ALL {
            assert_eq!(FlowKind::from_name(f.name()), Some(f));
        }
        assert_eq!(FlowKind::from_name("paper_flow"), Some(FlowKind::Paper));
        assert_eq!(FlowKind::from_name("resub"), None);
    }

    #[test]
    fn every_flow_preserves_function_and_reports_counts() {
        for flow in FlowKind::ALL {
            let mut xag = redundant_network();
            let reference = xag.cleanup();
            let mut ctx = OptContext::new();
            let result = run_job(
                &mut xag,
                &mut ctx,
                &JobSpec {
                    flow: flow.into(),
                    ..JobSpec::default()
                },
            );
            assert!(equiv_exhaustive(&reference, &xag.cleanup()), "{flow}");
            assert_eq!(result.ands_after, xag.num_ands());
            assert!(result.rounds > 0);
            assert!(result.ands_after <= result.ands_before);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let netlist = |threads: usize| {
            let mut xag = redundant_network();
            let mut ctx = OptContext::new();
            run_job(
                &mut xag,
                &mut ctx,
                &JobSpec {
                    threads,
                    ..JobSpec::default()
                },
            );
            netlist_of(&xag)
        };
        let one = netlist(1);
        assert_eq!(one, netlist(2));
        assert_eq!(one, netlist(4));
    }

    /// The shim's acceptance contract: every historical `FlowKind` flow
    /// produces a byte-identical netlist to its FlowSpec alias expansion
    /// (both its alias name and the written-out spec text).
    #[test]
    fn flowkind_flows_match_their_spec_expansions_byte_for_byte() {
        for kind in FlowKind::ALL {
            let via_pipeline = {
                let mut xag = redundant_network();
                let mut ctx = OptContext::new();
                kind.pipeline(100).run_parallel(&mut xag, &mut ctx, 1);
                netlist_of(&xag)
            };
            let (_, expansion) = crate::flow::ALIASES
                .iter()
                .find(|(name, _)| *name == kind.name())
                .expect("every FlowKind is listed in ALIASES");
            for text in [kind.name(), *expansion] {
                let mut xag = redundant_network();
                let mut ctx = OptContext::new();
                let result = run_job(
                    &mut xag,
                    &mut ctx,
                    &JobSpec {
                        flow: text.parse().expect("canonical specs parse"),
                        ..JobSpec::default()
                    },
                );
                assert!(result.converged, "{kind} via {text}");
                assert_eq!(
                    netlist_of(&xag),
                    via_pipeline,
                    "{kind} via {text} diverged from the FlowKind pipeline"
                );
            }
        }
    }
}
