//! The job-level API of the optimizer: one network in, one optimized
//! network plus a [`JobResult`] out.
//!
//! Service layers (the `mc-serve` daemon, batch drivers) should speak
//! this API instead of composing passes themselves: a [`JobSpec`] names a
//! flow by [`FlowKind`] and carries the two knobs a remote caller may
//! reasonably pick (worker threads, round cap), and [`run_job`] executes
//! it without exposing pass internals.
//!
//! [`run_job`] always routes through [`Pipeline::run_parallel`] — even
//! for one thread — because the parallel engine is bit-identical across
//! thread counts. That makes the optimized network a function of
//! `(circuit, flow, max_rounds)` alone, which is exactly the property a
//! semantic result cache needs: the thread count may change wall-clock,
//! never the answer.
//!
//! # Examples
//!
//! ```
//! use xag_mc::{run_job, JobSpec, OptContext};
//! use xag_network::Xag;
//!
//! let mut xag = Xag::new();
//! let (a, b, cin) = (xag.input(), xag.input(), xag.input());
//! let ab = xag.and(a, b);
//! let ac = xag.and(a, cin);
//! let bc = xag.and(b, cin);
//! let t = xag.xor(ab, ac);
//! let cout = xag.xor(t, bc);
//! let axb = xag.xor(a, b);
//! let sum = xag.xor(axb, cin);
//! xag.output(sum);
//! xag.output(cout);
//!
//! let mut ctx = OptContext::new();
//! let result = run_job(&mut xag, &mut ctx, &JobSpec::default());
//! assert_eq!(result.ands_after, 1);
//! assert!(result.converged);
//! ```

use std::time::Duration;

use xag_network::Xag;

use crate::context::OptContext;
use crate::pipeline::Pipeline;

/// The named optimization flows a job may request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlowKind {
    /// [`Pipeline::paper_flow`] — minimize multiplicative complexity
    /// until convergence (the DAC'19 flow).
    #[default]
    Paper,
    /// [`Pipeline::compress`] — generic size compression (the ABC-script
    /// stand-in).
    Compress,
    /// [`Pipeline::from_params`] at its fast 4-cut setting — the
    /// parameterized flow the [`crate::McOptimizer`] facade builds,
    /// exposed on the wire as a lighter alternative to the full
    /// small-then-wide cut schedule of the paper flow.
    FromParams,
}

impl FlowKind {
    /// The stable name used on the wire and on CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::Paper => "paper",
            FlowKind::Compress => "compress",
            FlowKind::FromParams => "from_params",
        }
    }

    /// Every flow, in wire-name order — service tiers use this to report
    /// a complete per-flow breakdown (zero-filled for flows not yet run).
    pub const ALL: [FlowKind; 3] = [FlowKind::Paper, FlowKind::Compress, FlowKind::FromParams];

    /// Parses a flow name; accepts the historical `paper_flow` spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "paper" | "paper_flow" => Some(FlowKind::Paper),
            "compress" => Some(FlowKind::Compress),
            "from_params" => Some(FlowKind::FromParams),
            _ => None,
        }
    }

    /// Builds the corresponding pipeline, capped at `max_rounds`.
    pub fn pipeline(self, max_rounds: usize) -> Pipeline {
        let flow = match self {
            FlowKind::Paper => Pipeline::paper_flow(),
            FlowKind::Compress => Pipeline::compress(),
            FlowKind::FromParams => {
                let defaults = crate::RewriteParams::default();
                let params = crate::RewriteParams {
                    cut_params: xag_cuts::CutParams {
                        cut_size: 4,
                        ..defaults.cut_params
                    },
                    ..defaults
                };
                Pipeline::from_params(&params)
            }
        };
        flow.max_rounds(max_rounds.max(1))
    }
}

impl core::fmt::Display for FlowKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// What to run on a submitted network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// The flow to run.
    pub flow: FlowKind,
    /// Worker threads for the sharded engine (≥ 1; does not change the
    /// result, only wall-clock).
    pub threads: usize,
    /// Cap on total pass executions.
    pub max_rounds: usize,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            flow: FlowKind::Paper,
            threads: 1,
            max_rounds: 100,
        }
    }
}

/// Gate-count, depth, and convergence summary of one executed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobResult {
    /// AND gates before optimization.
    pub ands_before: usize,
    /// XOR gates before optimization.
    pub xors_before: usize,
    /// Multiplicative depth before optimization.
    pub depth_before: usize,
    /// AND gates after optimization.
    pub ands_after: usize,
    /// XOR gates after optimization.
    pub xors_after: usize,
    /// Multiplicative depth after optimization.
    pub depth_after: usize,
    /// Pass executions used.
    pub rounds: usize,
    /// True iff the flow converged before hitting `max_rounds`.
    pub converged: bool,
    /// Wall-clock time of the flow.
    pub elapsed: Duration,
}

/// Runs `spec` on `xag` in place and reports the summary.
///
/// The result network depends only on `(xag, spec.flow, spec.max_rounds)`
/// — see the [module documentation](self) for why `spec.threads` cannot
/// affect it.
pub fn run_job(xag: &mut Xag, ctx: &mut OptContext, spec: &JobSpec) -> JobResult {
    let ands_before = xag.num_ands();
    let xors_before = xag.num_xors();
    let depth_before = xag.and_depth();
    let stats = spec
        .flow
        .pipeline(spec.max_rounds)
        .run_parallel(xag, ctx, spec.threads.max(1));
    JobResult {
        ands_before,
        xors_before,
        depth_before,
        ands_after: xag.num_ands(),
        xors_after: xag.num_xors(),
        depth_after: xag.and_depth(),
        rounds: stats.num_rounds(),
        converged: stats.converged,
        elapsed: stats.total_time(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_network::{equiv_exhaustive, write_verilog};

    fn redundant_network() -> Xag {
        let mut x = Xag::new();
        let (a, b, c) = (x.input(), x.input(), x.input());
        let t1 = x.and(a, b);
        let t2 = x.and(a, c);
        let t3 = x.xor(t1, t2);
        let o = x.or(t3, a);
        x.output(o);
        x
    }

    #[test]
    fn flow_names_round_trip_and_accept_alias() {
        for f in FlowKind::ALL {
            assert_eq!(FlowKind::from_name(f.name()), Some(f));
        }
        assert_eq!(FlowKind::from_name("paper_flow"), Some(FlowKind::Paper));
        assert_eq!(FlowKind::from_name("resub"), None);
    }

    #[test]
    fn every_flow_preserves_function_and_reports_counts() {
        for flow in FlowKind::ALL {
            let mut xag = redundant_network();
            let reference = xag.cleanup();
            let mut ctx = OptContext::new();
            let result = run_job(
                &mut xag,
                &mut ctx,
                &JobSpec {
                    flow,
                    ..JobSpec::default()
                },
            );
            assert!(equiv_exhaustive(&reference, &xag.cleanup()), "{flow}");
            assert_eq!(result.ands_after, xag.num_ands());
            assert!(result.rounds > 0);
            assert!(result.ands_after <= result.ands_before);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let netlist = |threads: usize| {
            let mut xag = redundant_network();
            let mut ctx = OptContext::new();
            run_job(
                &mut xag,
                &mut ctx,
                &JobSpec {
                    threads,
                    ..JobSpec::default()
                },
            );
            let mut buf = Vec::new();
            write_verilog(&xag.cleanup(), "m", &mut buf).expect("in-memory write");
            buf
        };
        let one = netlist(1);
        assert_eq!(one, netlist(2));
        assert_eq!(one, netlist(4));
    }
}
