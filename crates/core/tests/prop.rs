//! The single most important property of the whole system: no composed
//! flow ever changes network functionality or increases its objective.
//!
//! Randomized with a fixed-seed deterministic generator (no external
//! property-testing dependency); every case is reproducible from its seed.

use mc_rng::Rng;
use xag_mc::{
    reduce_xors, Cleanup, McOptimizer, McRewrite, Objective, OptContext, Pipeline, RewriteParams,
    SizeRewrite, XorReduce,
};
use xag_network::{equiv_exhaustive, Signal, Xag};

type FlowFactory = fn() -> Pipeline;

#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    and_bias: bool,
    steps: Vec<(u8, usize, bool, usize, bool)>,
}

fn arb_recipe(rng: &mut Rng) -> Recipe {
    let inputs = rng.gen_range(3..9);
    let and_bias = rng.gen();
    let gates = rng.gen_range(5..60);
    let steps = (0..gates)
        .map(|_| {
            (
                rng.next_u64() as u8,
                rng.next_u64() as usize,
                rng.gen(),
                rng.next_u64() as usize,
                rng.gen(),
            )
        })
        .collect();
    Recipe {
        inputs,
        and_bias,
        steps,
    }
}

fn build(recipe: &Recipe) -> Xag {
    let mut x = Xag::new();
    let mut pool: Vec<Signal> = (0..recipe.inputs).map(|_| x.input()).collect();
    for &(kind, a, ca, b, cb) in &recipe.steps {
        let sa = pool[a % pool.len()] ^ ca;
        let sb = pool[b % pool.len()] ^ cb;
        let s = match kind % 4 {
            0 | 1 => x.and(sa, sb),
            2 => {
                if recipe.and_bias {
                    x.or(sa, sb)
                } else {
                    x.xor(sa, sb)
                }
            }
            _ => x.xor(sa, sb),
        };
        pool.push(s);
    }
    for s in pool.iter().rev().take(3) {
        x.output(*s);
    }
    x
}

#[test]
fn mc_rewriting_preserves_function_and_reduces_ands() {
    let mut rng = Rng::seed_from_u64(0xDAC1_9001);
    for case in 0..24 {
        let recipe = arb_recipe(&mut rng);
        let mut xag = build(&recipe);
        let reference = xag.cleanup();
        let before = xag.num_ands();
        let mut opt = McOptimizer::new();
        let stats = opt.run_to_convergence(&mut xag);
        assert!(xag.num_ands() <= before, "case {case}: AND count increased");
        assert!(
            equiv_exhaustive(&reference, &xag.cleanup()),
            "case {case}: function changed"
        );
        assert!(stats.num_rounds() >= 1);
        // A converged network gains nothing from another round.
        if stats.converged {
            let again = opt.run_once(&mut xag);
            assert_eq!(again.ands_after, again.ands_before, "case {case}");
        }
    }
}

#[test]
fn xor_reduction_preserves_function_and_ands() {
    let mut rng = Rng::seed_from_u64(0xDAC1_9002);
    for case in 0..24 {
        let recipe = arb_recipe(&mut rng);
        let mut xag = build(&recipe);
        // Inflate XORs the way rewriting does, then reduce.
        let mut opt = McOptimizer::new();
        opt.run_once(&mut xag);
        let reduced = reduce_xors(&xag);
        assert!(
            reduced.num_xors() <= xag.cleanup().num_xors(),
            "case {case}"
        );
        assert!(
            reduced.num_ands() <= xag.cleanup().num_ands(),
            "case {case}"
        );
        assert!(
            equiv_exhaustive(&xag.cleanup(), &reduced),
            "case {case}: function changed"
        );
    }
}

#[test]
fn size_rewriting_preserves_function_and_reduces_size() {
    let mut rng = Rng::seed_from_u64(0xDAC1_9003);
    for case in 0..24 {
        let recipe = arb_recipe(&mut rng);
        let mut xag = build(&recipe);
        let reference = xag.cleanup();
        let before = xag.num_gates();
        let mut opt = McOptimizer::with_params(RewriteParams {
            objective: Objective::Size,
            ..RewriteParams::default()
        });
        opt.run_to_convergence(&mut xag);
        assert!(
            xag.num_gates() <= before,
            "case {case}: gate count increased"
        );
        assert!(
            equiv_exhaustive(&reference, &xag.cleanup()),
            "case {case}: function changed"
        );
    }
}

#[test]
fn composed_pipelines_preserve_function() {
    // Every flow in this catalogue — whatever the pass order — must keep
    // the network equivalent and never raise the AND count.
    let flows: Vec<(&str, FlowFactory)> = vec![
        ("paper_flow", Pipeline::paper_flow),
        ("compress", Pipeline::compress),
        ("mc+xor+cleanup", || {
            Pipeline::new()
                .add(McRewrite::new())
                .add(XorReduce::new())
                .add(Cleanup::new())
        }),
        ("xor-first", || {
            Pipeline::new()
                .add(XorReduce::new())
                .add(McRewrite::with_cut_size(4))
                .add(McRewrite::new())
        }),
        ("size-then-mc", || {
            Pipeline::new()
                .add(SizeRewrite::new())
                .add(McRewrite::new())
                .add(Cleanup::new())
        }),
    ];
    let mut rng = Rng::seed_from_u64(0xDAC1_9004);
    let mut ctx = OptContext::new();
    for case in 0..10 {
        let recipe = arb_recipe(&mut rng);
        for (name, make) in &flows {
            let mut xag = build(&recipe);
            let reference = xag.cleanup();
            let before = xag.num_ands();
            let stats = make().run(&mut xag, &mut ctx);
            assert!(
                xag.num_ands() <= before,
                "case {case}, flow {name}: AND count increased"
            );
            assert!(
                equiv_exhaustive(&reference, &xag.cleanup()),
                "case {case}, flow {name}: function changed"
            );
            assert!(!stats.passes.is_empty());
        }
    }
}

#[test]
fn rejected_candidates_never_leak_arena_nodes() {
    // Once a flow has converged, further rounds apply nothing — and must
    // also allocate nothing: instantiated-then-rejected candidates are
    // reclaimed from the arena (the watermark cleanup in the rewrite
    // round).
    let mut rng = Rng::seed_from_u64(0xDAC1_9005);
    for case in 0..12 {
        let recipe = arb_recipe(&mut rng);
        let mut xag = build(&recipe);
        let mut opt = McOptimizer::new();
        let stats = opt.run_to_convergence(&mut xag);
        if !stats.converged {
            continue;
        }
        let capacity = xag.capacity();
        let again = opt.run_once(&mut xag);
        if again.rewrites_applied == 0 {
            assert_eq!(
                xag.capacity(),
                capacity,
                "case {case}: rejected candidates leaked into the arena"
            );
        }
    }
}
