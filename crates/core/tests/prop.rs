//! The single most important property of the whole system: rewriting never
//! changes network functionality and never increases the objective.

use proptest::prelude::*;
use xag_mc::{reduce_xors, McOptimizer, Objective, RewriteParams};
use xag_network::{equiv_exhaustive, Signal, Xag};

#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    and_bias: bool,
    steps: Vec<(u8, usize, bool, usize, bool)>,
}

fn build(recipe: &Recipe) -> Xag {
    let mut x = Xag::new();
    let mut pool: Vec<Signal> = (0..recipe.inputs).map(|_| x.input()).collect();
    for &(kind, a, ca, b, cb) in &recipe.steps {
        let sa = pool[a % pool.len()] ^ ca;
        let sb = pool[b % pool.len()] ^ cb;
        let s = match kind % 4 {
            0 | 1 => x.and(sa, sb),
            2 => {
                if recipe.and_bias {
                    x.or(sa, sb)
                } else {
                    x.xor(sa, sb)
                }
            }
            _ => x.xor(sa, sb),
        };
        pool.push(s);
    }
    for s in pool.iter().rev().take(3) {
        x.output(*s);
    }
    x
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (3usize..=8, any::<bool>(), 5usize..60).prop_flat_map(|(inputs, and_bias, gates)| {
        proptest::collection::vec(
            (any::<u8>(), any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>()),
            gates,
        )
        .prop_map(move |steps| Recipe {
            inputs,
            and_bias,
            steps,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mc_rewriting_preserves_function_and_reduces_ands(recipe in arb_recipe()) {
        let mut xag = build(&recipe);
        let reference = xag.cleanup();
        let before = xag.num_ands();
        let mut opt = McOptimizer::new();
        let stats = opt.run_to_convergence(&mut xag);
        prop_assert!(xag.num_ands() <= before, "AND count increased");
        prop_assert!(equiv_exhaustive(&reference, &xag.cleanup()), "function changed");
        prop_assert!(stats.num_rounds() >= 1);
        // A converged network gains nothing from another round.
        if stats.converged {
            let again = opt.run_once(&mut xag);
            prop_assert_eq!(again.ands_after, again.ands_before);
        }
    }

    #[test]
    fn xor_reduction_preserves_function_and_ands(recipe in arb_recipe()) {
        let mut xag = build(&recipe);
        // Inflate XORs the way rewriting does, then reduce.
        let mut opt = McOptimizer::new();
        opt.run_once(&mut xag);
        let reduced = reduce_xors(&xag);
        prop_assert!(reduced.num_xors() <= xag.cleanup().num_xors());
        prop_assert!(reduced.num_ands() <= xag.cleanup().num_ands());
        prop_assert!(equiv_exhaustive(&xag.cleanup(), &reduced), "function changed");
    }

    #[test]
    fn size_rewriting_preserves_function_and_reduces_size(recipe in arb_recipe()) {
        let mut xag = build(&recipe);
        let reference = xag.cleanup();
        let before = xag.num_gates();
        let mut opt = McOptimizer::with_params(RewriteParams {
            objective: Objective::Size,
            ..RewriteParams::default()
        });
        opt.run_to_convergence(&mut xag);
        prop_assert!(xag.num_gates() <= before, "gate count increased");
        prop_assert!(equiv_exhaustive(&reference, &xag.cleanup()), "function changed");
    }
}
