//! Malformed-bytes decode fuzzing for the frame protocol.
//!
//! Starting from *valid* encoded frames, seeded mutations — truncation,
//! bit flips, byte splices, and wholesale garbage — must always come
//! back as structured errors (`FrameError`, `Err(String)`), never as a
//! panic. A panicking decoder would let one malformed client take down
//! a connection thread; the `no-panic-in-request-path` lint rule guards
//! the source, this test guards the behavior.

use mc_rng::Rng;
use mc_serve::protocol::{
    read_frame, write_frame, FrameError, HeartbeatInfo, OptimizeRequest, RegisterInfo,
    MAX_FRAME_LEN,
};
use mc_serve::{Request, Response};

/// One representative payload per request variant (decode side).
fn request_payloads() -> Vec<Vec<u8>> {
    vec![
        Request::Optimize(OptimizeRequest {
            circuit: "2 5\n2 1 1\n1 1\n2 1 0 1 2 AND\n".to_string(),
            ..OptimizeRequest::default()
        })
        .to_payload(),
        Request::Status.to_payload(),
        Request::Stats.to_payload(),
        Request::Ping.to_payload(),
        Request::Register(RegisterInfo {
            addr: "127.0.0.1:7171".to_string(),
            capacity: 4,
            queue_capacity: 64,
        })
        .to_payload(),
        Request::Heartbeat(HeartbeatInfo {
            backend_id: 3,
            queue_depth: 2,
            busy: 1,
        })
        .to_payload(),
        Request::ClusterStats.to_payload(),
    ]
}

/// Applies one seeded mutation to `bytes`.
fn mutate(bytes: &[u8], rng: &mut Rng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    match rng.next_u64() % 4 {
        // Truncate at a random point.
        0 => {
            let cut = (rng.next_u64() as usize) % (out.len().max(1));
            out.truncate(cut);
        }
        // Flip 1–8 random bits.
        1 => {
            for _ in 0..=(rng.next_u64() % 8) {
                if out.is_empty() {
                    break;
                }
                let i = (rng.next_u64() as usize) % out.len();
                out[i] ^= 1 << (rng.next_u64() % 8);
            }
        }
        // Splice a random slice of the input over another position.
        2 => {
            if out.len() >= 2 {
                let a = (rng.next_u64() as usize) % out.len();
                let b = (rng.next_u64() as usize) % out.len();
                let len = ((rng.next_u64() as usize) % 16).min(out.len() - a.max(b));
                let (src, dst) = (a.min(b), a.max(b));
                let slice: Vec<u8> = out[src..src + len].to_vec();
                out[dst..dst + len].copy_from_slice(&slice);
            }
        }
        // Replace with garbage of similar length.
        _ => {
            let len = (rng.next_u64() as usize) % (bytes.len() + 16);
            out = (0..len).map(|_| rng.next_u64() as u8).collect();
        }
    }
    out
}

#[test]
fn mutated_request_payloads_decode_to_errors_never_panic() {
    let payloads = request_payloads();
    let mut rng = Rng::seed_from_u64(0xDAC1_9F02);
    let mut decoded_ok = 0usize;
    for round in 0..400 {
        let base = &payloads[round % payloads.len()];
        let mutated = mutate(base, &mut rng);
        // Any Ok/Err outcome is fine; reaching the next line is the test.
        if Request::from_payload(&mutated).is_ok() {
            decoded_ok += 1;
        }
    }
    // Mutations must actually be corrupting most inputs, or the test
    // is vacuous.
    assert!(
        decoded_ok < 200,
        "mutator too gentle: {decoded_ok}/400 still valid"
    );
}

#[test]
fn mutated_response_payloads_decode_to_errors_never_panic() {
    let payloads = [
        Response::Pong.to_payload(),
        Response::Registered { backend_id: 9 }.to_payload(),
        Response::Error {
            message: "queue full".to_string(),
        }
        .to_payload(),
    ];
    let mut rng = Rng::seed_from_u64(0x5EED_CAFE);
    for round in 0..300 {
        let base = &payloads[round % payloads.len()];
        let mutated = mutate(base, &mut rng);
        let _ = Response::from_payload(&mutated);
    }
}

#[test]
fn mutated_frames_read_as_structured_errors_never_panic() {
    let mut frame = Vec::new();
    write_frame(&mut frame, b"{\"type\":\"ping\"}").expect("in-memory write");
    let mut rng = Rng::seed_from_u64(0xF4A3_0001);
    for _ in 0..500 {
        let mutated = mutate(&frame, &mut rng);
        match read_frame(&mutated[..]) {
            Ok(_) => {}
            Err(FrameError::Io(_) | FrameError::Truncated | FrameError::Oversized(_)) => {}
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_not_allocated() {
    // A length prefix past MAX_FRAME_LEN must fail fast instead of
    // attempting a huge allocation.
    let declared = (MAX_FRAME_LEN + 1) as u32;
    let mut bytes = declared.to_be_bytes().to_vec();
    bytes.extend_from_slice(b"tiny");
    match read_frame(&bytes[..]) {
        Err(FrameError::Oversized(n)) => assert_eq!(n, MAX_FRAME_LEN + 1),
        other => panic!("expected Oversized, got {other:?}"),
    }
}

#[test]
fn truncated_frame_is_truncated_error() {
    let mut frame = Vec::new();
    write_frame(&mut frame, b"0123456789").expect("in-memory write");
    for cut in 1..frame.len() {
        match read_frame(&frame[..cut]) {
            Err(FrameError::Truncated) => {}
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}
