//! End-to-end observability: one job traced through the daemon under a
//! single client-supplied trace ID, then read back over the wire via
//! the `metrics` and `trace-dump` frames.

use mc_serve::{Client, OptimizeRequest, ServeConfig, Server};
use xag_network::{write_bristol, Xag};

fn two_and_circuit() -> String {
    // x = a & (b ^ c), spelled with 2 ANDs so the optimizer has work.
    let mut xag = Xag::new();
    let (a, b, c) = (xag.input(), xag.input(), xag.input());
    let ab = xag.and(a, b);
    let ac = xag.and(a, c);
    let x = xag.xor(ab, ac);
    xag.output(x);
    let mut text = Vec::new();
    write_bristol(&xag, &mut text).unwrap();
    String::from_utf8(text).unwrap()
}

#[test]
fn one_job_is_traced_end_to_end_under_one_trace_id() {
    let handle = Server::bind(ServeConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // A recognizable ID no other test in this process will use.
    let trace_id = 0x0E2E_00B5u64;
    let request = OptimizeRequest {
        circuit: two_and_circuit(),
        trace_id,
        ..OptimizeRequest::default()
    };
    let result = client.optimize(request).unwrap();
    assert!(!result.cached);
    assert_eq!(
        result.trace_id, trace_id,
        "the daemon must echo the client's trace ID"
    );

    // Filtered dump: every event belongs to our trace, and the job's
    // lifecycle spans are all present — queue wait, the run, at least
    // one optimization pass inside it, and serialization.
    let events = client.trace_dump(Some(trace_id)).unwrap();
    assert!(events.iter().all(|e| e.trace_id == trace_id));
    for expected in ["serve:queue_wait", "serve:run", "serve:serialize"] {
        assert!(
            events.iter().any(|e| e.span == expected),
            "missing span {expected:?} in {events:?}"
        );
    }
    assert!(
        events.iter().any(|e| e.span.starts_with("pass:")),
        "no per-pass span under the job's trace: {events:?}"
    );

    // The metrics frame exposes the same activity as counters.
    let metrics = client.metrics().unwrap();
    assert!(metrics.contains("serve_jobs_computed_total"));
    assert!(metrics.contains("serve_queue_wait_us_count"));
    assert!(metrics.contains("mc_pass_elapsed_us_p50"));

    // A cache hit on resubmission is an instant event, also traced.
    let again = OptimizeRequest {
        circuit: two_and_circuit(),
        trace_id: trace_id + 1,
        ..OptimizeRequest::default()
    };
    let hit = client.optimize(again).unwrap();
    assert!(hit.cached);
    let hit_events = client.trace_dump(Some(trace_id + 1)).unwrap();
    assert!(
        hit_events.iter().any(|e| e.span == "serve:cache_hit"),
        "cache hit not traced: {hit_events:?}"
    );

    client.shutdown().unwrap();
    handle.join();
}
