//! The coalescing result cache: the semantic LRU plus the in-flight
//! pending map, under **one** lock.
//!
//! Holding both behind a single mutex makes lookup-or-register atomic:
//! the *first* request to miss on a cold key is told to compute it;
//! every request racing the same key parks an `mpsc` waiter and is
//! answered from the commit — exactly one compute per key, the rest
//! coalesced hits. This used to live inline in the server's request
//! handler; it is its own type so the schedule fuzzer
//! (`tests/schedule_fuzz.rs`) can drive the protocol directly with
//! adversarial thread interleavings, and so the invariant has one
//! auditable home.
//!
//! Lock discipline (see DESIGN.md §12): the pending map is *inside* the
//! cache lock — there is no cache-lock→pending-lock pair to misorder —
//! and no callback runs while the lock is held; waiter wakeups happen
//! after release.

use std::collections::HashMap;
use std::sync::{mpsc, Mutex};

use mc_rng::sched;

use crate::cache::{CacheEntry, SemanticCache};
use crate::sync::lock_unpoisoned;

/// What a request should do about a key, decided atomically by
/// [`CoalescingCache::plan`].
pub enum Plan {
    /// The key is cached: answer immediately with this entry.
    Hit(CacheEntry),
    /// Another request is computing this key: block on the receiver and
    /// answer with whatever the commit delivers. A dropped sender (the
    /// computation was aborted) surfaces as `RecvError`.
    Wait(mpsc::Receiver<CacheEntry>),
    /// This request is the first to see the cold key: it must compute,
    /// then [`CoalescingCache::commit`] (or [`CoalescingCache::abort`]).
    Compute,
}

struct State {
    cache: SemanticCache,
    /// key → waiter senders of the requests coalesced onto the in-flight
    /// computation of that key.
    pending: HashMap<Vec<u8>, Vec<mpsc::Sender<CacheEntry>>>,
}

/// Cumulative counters of the underlying semantic cache, read in one
/// locked snapshot for `stats` frames.
#[derive(Debug, Clone, Copy)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
    pub capacity: usize,
}

/// The semantic cache and its coalescing pending map. See the [module
/// documentation](self).
pub struct CoalescingCache {
    state: Mutex<State>,
}

impl CoalescingCache {
    /// Creates a coalescing cache over a [`SemanticCache`] bounded to
    /// `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                cache: SemanticCache::new(capacity),
                pending: HashMap::new(),
            }),
        }
    }

    /// Atomic lookup-or-register. The pending map is checked before the
    /// cache so a coalesced request never counts a second miss on the
    /// same cold key.
    pub fn plan(&self, key: &[u8]) -> Plan {
        sched::yield_point(sched::site::COALESCE_PLAN);
        let mut s = lock_unpoisoned(&self.state);
        if let Some(waiters) = s.pending.get_mut(key) {
            let (tx, rx) = mpsc::channel();
            waiters.push(tx);
            Plan::Wait(rx)
        } else if let Some(entry) = s.cache.get(key) {
            Plan::Hit(entry)
        } else {
            s.pending.insert(key.to_vec(), Vec::new());
            Plan::Compute
        }
    }

    /// Commits a computed entry: inserts it into the cache and collects
    /// the coalesced waiters atomically (a request arriving after the
    /// lock releases sees the cache entry), then wakes the waiters
    /// outside the lock. Returns how many waiters were coalesced.
    pub fn commit(&self, key: &[u8], entry: &CacheEntry) -> usize {
        sched::yield_point(sched::site::COALESCE_COMMIT);
        let waiters = {
            let mut s = lock_unpoisoned(&self.state);
            s.cache.insert(key.to_vec(), entry.clone());
            let waiters = s.pending.remove(key).unwrap_or_default();
            for _ in &waiters {
                s.cache.note_coalesced_hit();
            }
            waiters
        };
        sched::yield_point(sched::site::COALESCE_COMMIT);
        let coalesced = waiters.len();
        for waiter in waiters {
            // A waiter whose connection vanished is not an error.
            let _ = waiter.send(entry.clone());
        }
        coalesced
    }

    /// Abandons an in-flight key (the computation could not be queued).
    /// Dropping the waiter senders wakes every coalesced request with a
    /// `RecvError`.
    pub fn abort(&self, key: &[u8]) {
        lock_unpoisoned(&self.state).pending.remove(key);
    }

    /// One locked snapshot of the cache counters.
    pub fn counters(&self) -> CacheCounters {
        let s = lock_unpoisoned(&self.state);
        CacheCounters {
            hits: s.cache.hits(),
            misses: s.cache.misses(),
            evictions: s.cache.evictions(),
            entries: s.cache.len(),
            capacity: s.cache.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> CacheEntry {
        CacheEntry {
            job_id: id,
            ..CacheEntry::default()
        }
    }

    #[test]
    fn first_plan_computes_then_hits() {
        let cc = CoalescingCache::new(4);
        assert!(matches!(cc.plan(b"k"), Plan::Compute));
        assert_eq!(cc.commit(b"k", &entry(1)), 0);
        match cc.plan(b"k") {
            Plan::Hit(e) => assert_eq!(e.job_id, 1),
            _ => panic!("committed key must hit"),
        }
    }

    #[test]
    fn racing_plans_coalesce_onto_one_compute() {
        let cc = CoalescingCache::new(4);
        assert!(matches!(cc.plan(b"k"), Plan::Compute));
        let Plan::Wait(rx1) = cc.plan(b"k") else {
            panic!("second plan must wait")
        };
        let Plan::Wait(rx2) = cc.plan(b"k") else {
            panic!("third plan must wait")
        };
        assert_eq!(cc.commit(b"k", &entry(7)), 2);
        assert_eq!(rx1.recv().expect("waiter 1 woken").job_id, 7);
        assert_eq!(rx2.recv().expect("waiter 2 woken").job_id, 7);
        assert_eq!(cc.counters().hits, 2, "coalesced waiters count as hits");
    }

    #[test]
    fn abort_wakes_waiters_with_error_and_clears_key() {
        let cc = CoalescingCache::new(4);
        assert!(matches!(cc.plan(b"k"), Plan::Compute));
        let Plan::Wait(rx) = cc.plan(b"k") else {
            panic!("must wait")
        };
        cc.abort(b"k");
        assert!(rx.recv().is_err(), "aborted waiter sees a RecvError");
        // The key is free again: the next request computes.
        assert!(matches!(cc.plan(b"k"), Plan::Compute));
    }
}
