//! Poison-tolerant lock acquisition for the request path.
//!
//! A poisoned `Mutex` means some thread panicked while holding the
//! guard. The request-path locks in this crate (job queue, coalescing
//! cache, stats) keep their guarded state structurally valid at every
//! point a panic could unwind through — mutations are single inserts,
//! pops, or counter bumps — so the right response to poison is to keep
//! serving with the state as-is, not to cascade the panic into every
//! connection and worker thread that touches the lock next. These
//! helpers recover the guard; the `no-panic-in-request-path` lint rule
//! keeps bare `.lock().unwrap()` from creeping back in.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, recovering the reacquired guard from poison.
pub(crate) fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}
