//! The optimization service daemon.
//!
//! Usage:
//!
//! ```text
//! mc-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--port-file PATH]
//!          [--join ROUTER_ADDR] [--advertise HOST:PORT] [--heartbeat-ms N] [--sample-ms N]
//! ```
//!
//! * `--addr` — listen address; port 0 picks an ephemeral port
//!   (default `127.0.0.1:4519`).
//! * `--workers` — worker-pool size (default: available parallelism,
//!   capped at 8).
//! * `--queue` — job-queue bound; submissions beyond it block
//!   (default 64).
//! * `--cache` — semantic-result-cache bound, LRU (default 128).
//! * `--port-file` — write the bound address to this file once
//!   listening, for scripts that start the daemon with port 0.
//! * `--join` — address of an `mc-cluster` router; the daemon registers
//!   itself there and heartbeats until it shuts down.
//! * `--advertise` — the address to announce to the router (required
//!   with `--join` when binding a wildcard address; defaults to the
//!   bound address).
//! * `--heartbeat-ms` — heartbeat interval toward the joined router
//!   (default 500).
//! * `--sample-ms` — metrics-history sampling interval (default 1000);
//!   the ring keeps 720 samples, so the default covers 12 minutes.
//!
//! The daemon runs until a client sends a `shutdown` request (e.g.
//! `mc-client <addr> --shutdown`).

use mc_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: mc-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] \
         [--port-file PATH] [--join ROUTER_ADDR] [--advertise HOST:PORT] [--heartbeat-ms N] \
         [--sample-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServeConfig {
        addr: "127.0.0.1:4519".to_string(),
        ..ServeConfig::default()
    };
    let mut port_file: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--addr" => config.addr = value(),
            "--workers" => config.workers = value().parse().unwrap_or_else(|_| usage()),
            "--queue" => config.queue_capacity = value().parse().unwrap_or_else(|_| usage()),
            "--cache" => config.cache_capacity = value().parse().unwrap_or_else(|_| usage()),
            "--port-file" => port_file = Some(value()),
            "--join" => config.join = Some(value()),
            "--advertise" => config.advertise = Some(value()),
            "--heartbeat-ms" => {
                let millis: u64 = value().parse().unwrap_or_else(|_| usage());
                config.heartbeat_interval = std::time::Duration::from_millis(millis.max(1));
            }
            "--sample-ms" => {
                let millis: u64 = value().parse().unwrap_or_else(|_| usage());
                config.sample_interval = std::time::Duration::from_millis(millis.max(1));
            }
            _ => usage(),
        }
    }

    let workers = config.workers;
    let queue = config.queue_capacity;
    let cache = config.cache_capacity;
    let handle = match Server::bind(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("mc-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = handle.local_addr();
    println!("mc-serve listening on {addr} ({workers} workers, queue {queue}, cache {cache})");
    if let Some(router) = handle.joined_router() {
        println!("mc-serve joining cluster router at {router}");
    }
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, addr.to_string()) {
            eprintln!("mc-serve: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    handle.join();
    println!("mc-serve: shut down");
}
