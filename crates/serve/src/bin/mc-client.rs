//! CLI client for the optimization service.
//!
//! Usage:
//!
//! ```text
//! mc-client <addr> [CIRCUIT.txt | --bench NAME | --fuzz SEED]
//!           [--flow SPEC | --flow-file PATH] [--threads N] [--max-rounds N]
//!           [--format bristol|verilog] [--output bristol|verilog]
//!           [--out PATH|-] [--retry N] [--trace-id N]
//! mc-client <addr> --status | --stats | --cluster-stats | --shutdown
//! mc-client <addr> --ping [--ping-count N]
//! mc-client <addr> --metrics | --trace-dump [--trace-id N]
//! mc-client --list-flows
//! ```
//!
//! `--flow` takes a FlowSpec — an alias (`paper`, `compress`,
//! `from_params`) or a full spec like `'mc(cut=6);xor;cleanup*'`
//! (see DESIGN.md §8 for the grammar); `--flow-file` reads the spec from
//! a file, for flows too long to quote comfortably. `--list-flows`
//! prints the canonical aliases with their expansions and exits.
//!
//! `--retry N` retries a refused initial connection up to `N` times with
//! bounded exponential backoff — for scripts racing a daemon that is
//! still booting. `<addr>` may equally be an `mc-cluster` router: the
//! protocol is identical, and `--cluster-stats` shows the router's
//! per-backend breakdown.
//!
//! Circuit sources (exactly one):
//!
//! * a file in Bristol or structural Verilog (format sniffed unless
//!   `--format` is given);
//! * `--bench NAME` — a generated benchmark, looked up in the EPFL
//!   Table-1 suite (reduced scale) and then the MPC Table-2 suite;
//! * `--fuzz SEED` — a seeded random XAG (the differential-testing
//!   generator), handy for smoke tests.
//!
//! Prints a one-line summary (`cached: true|false` is what scripts grep
//! for); `--out PATH` saves the optimized netlist, `--out -` prints it.
//!
//! Observability: `--metrics` prints the server's metric registry as
//! Prometheus-style text; `--trace-dump` prints recorded trace events
//! (optionally filtered with `--trace-id N`). On an optimize, `--trace-id N`
//! runs the job under that trace ID so a later `--trace-dump --trace-id N`
//! shows it end to end; without it the server assigns one, reported in
//! the summary line. `--ping --ping-count N` reports min/p50/p99 RTT
//! over N samples.

use mc_serve::{Client, OptimizeRequest};
use xag_circuits::epfl::Scale;
use xag_circuits::CircuitFormat;
use xag_mc::FlowSpec;
use xag_network::fuzz::{random_xag, FuzzConfig};
use xag_network::{write_bristol, Xag};

fn usage() -> ! {
    eprintln!(
        "usage: mc-client <addr> [CIRCUIT | --bench NAME | --fuzz SEED] \
         [--flow SPEC | --flow-file PATH] [--threads N] [--max-rounds N] \
         [--format bristol|verilog] [--output bristol|verilog] [--out PATH|-] [--retry N] \
         [--trace-id N]\n\
         \x20      mc-client <addr> --status | --stats | --cluster-stats | --shutdown\n\
         \x20      mc-client <addr> --ping [--ping-count N]\n\
         \x20      mc-client <addr> --metrics | --trace-dump [--trace-id N]\n\
         \x20      mc-client --list-flows"
    );
    std::process::exit(2);
}

fn list_flows() -> ! {
    println!("canonical flow aliases (pass any alias or full spec to --flow):");
    for (alias, expansion) in FlowSpec::aliases() {
        println!("  {alias:<12} = {expansion}");
    }
    println!(
        "\ngrammar: atoms mc(cut=N) | size(cut=N) | xor | cleanup, sequencing `;`,\n\
         groups {{...}}, par(threads=N){{...}}, repetition *k, until-convergence *\n\
         example: 'mc(cut=6);xor;cleanup*'"
    );
    std::process::exit(0);
}

fn fail(message: impl core::fmt::Display) -> ! {
    eprintln!("mc-client: {message}");
    std::process::exit(1);
}

fn bristol_text(xag: &Xag) -> String {
    let mut buf = Vec::new();
    write_bristol(xag, &mut buf).expect("in-memory write cannot fail");
    String::from_utf8(buf).expect("bristol writer emits ASCII")
}

fn bench_circuit(name: &str) -> String {
    match xag_circuits::epfl::benchmark(name, Scale::Reduced) {
        Ok(b) => bristol_text(&b.xag),
        Err(_) => match xag_circuits::mpc::benchmark(name) {
            Ok(b) => bristol_text(&b.xag),
            Err(e) => fail(e),
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    if args[0] == "--list-flows" {
        list_flows();
    }
    let addr = args[0].clone();

    let mut circuit: Option<String> = None;
    let mut format: Option<CircuitFormat> = None;
    let mut flow = FlowSpec::default();
    let mut threads = 1usize;
    let mut max_rounds = 100usize;
    let mut output = CircuitFormat::Bristol;
    let mut out: Option<String> = None;
    let mut action: Option<&str> = None;
    let mut retries = 0usize;
    let mut trace_id: Option<u64> = None;
    let mut ping_count = 1usize;

    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--bench" => circuit = Some(bench_circuit(&value())),
            "--fuzz" => {
                let seed: u64 = value().parse().unwrap_or_else(|_| usage());
                circuit = Some(bristol_text(&random_xag(&FuzzConfig::default(), seed)));
            }
            "--flow" => {
                let text = value();
                flow = FlowSpec::parse(&text)
                    .unwrap_or_else(|e| fail(format_args!("invalid flow spec: {e}")));
            }
            "--flow-file" => {
                let path = value();
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
                flow = FlowSpec::parse(text.trim())
                    .unwrap_or_else(|e| fail(format_args!("invalid flow spec in {path}: {e}")));
            }
            "--list-flows" => list_flows(),
            "--threads" => threads = value().parse().unwrap_or_else(|_| usage()),
            "--max-rounds" => max_rounds = value().parse().unwrap_or_else(|_| usage()),
            "--format" => {
                let name = value();
                format = Some(
                    CircuitFormat::from_name(&name)
                        .unwrap_or_else(|| fail(format_args!("unknown format: {name}"))),
                );
            }
            "--output" => {
                let name = value();
                output = CircuitFormat::from_name(&name)
                    .unwrap_or_else(|| fail(format_args!("unknown output format: {name}")));
            }
            "--out" => out = Some(value()),
            "--retry" => retries = value().parse().unwrap_or_else(|_| usage()),
            "--trace-id" => trace_id = Some(value().parse().unwrap_or_else(|_| usage())),
            "--ping-count" => ping_count = value().parse().unwrap_or_else(|_| usage()),
            "--status" => action = Some("status"),
            "--stats" => action = Some("stats"),
            "--cluster-stats" => action = Some("cluster-stats"),
            "--ping" => action = Some("ping"),
            "--metrics" => action = Some("metrics"),
            "--trace-dump" => action = Some("trace-dump"),
            "--shutdown" => action = Some("shutdown"),
            path if !path.starts_with("--") => {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail(format_args!("cannot read {path}: {e}")));
                circuit = Some(text);
            }
            _ => usage(),
        }
    }

    let mut client = Client::connect_with_retry(&addr, retries)
        .unwrap_or_else(|e| fail(format_args!("cannot connect to {addr}: {e}")));

    match action {
        Some("ping") => {
            if ping_count <= 1 {
                let rtt = client.ping().unwrap_or_else(|e| fail(e));
                println!("pong in {} us", rtt.as_micros());
                return;
            }
            let mut samples: Vec<u64> = (0..ping_count)
                .map(|_| client.ping().unwrap_or_else(|e| fail(e)).as_micros() as u64)
                .collect();
            samples.sort_unstable();
            // Nearest-rank percentiles over the sorted samples.
            let rank = |q: f64| samples[((q * (samples.len() - 1) as f64).round()) as usize];
            println!(
                "{} pings: min {} us, p50 {} us, p99 {} us",
                samples.len(),
                samples[0],
                rank(0.50),
                rank(0.99),
            );
            return;
        }
        Some("metrics") => {
            print!("{}", client.metrics().unwrap_or_else(|e| fail(e)));
            return;
        }
        Some("trace-dump") => {
            let events = client.trace_dump(trace_id).unwrap_or_else(|e| fail(e));
            for e in &events {
                println!(
                    "{} +{:<10} trace={:016x} {:<22} {}",
                    e.start_us, e.dur_us, e.trace_id, e.span, e.detail
                );
            }
            eprintln!("{} events", events.len());
            return;
        }
        Some("cluster-stats") => {
            let c = client.cluster_stats().unwrap_or_else(|e| fail(e));
            println!("uptime        : {}s", c.uptime_secs);
            if !c.health.is_empty() {
                println!("health        : {}", c.health);
            }
            println!("jobs_routed   : {}", c.jobs_routed);
            println!("jobs_retried  : {}", c.jobs_retried);
            println!(
                "affinity      : {} hits / {} fallbacks ({:.1}%)",
                c.affinity_hits,
                c.affinity_fallbacks,
                100.0 * c.affinity_rate()
            );
            for b in &c.backends {
                println!(
                    "backend {} {} [{}]: cap {}, in-flight {}, routed {}, queue {}, busy {}, \
                     served {}, cache {}/{} hits/misses",
                    b.id,
                    b.addr,
                    if b.up { "up" } else { "down" },
                    b.capacity,
                    b.in_flight,
                    b.jobs_routed,
                    b.queue_depth,
                    b.busy,
                    b.jobs_served,
                    b.cache_hits,
                    b.cache_misses,
                );
            }
            return;
        }
        Some("status") => {
            let s = client.status().unwrap_or_else(|e| fail(e));
            println!(
                "queue: {}/{}  workers: {} ({} busy)",
                s.queue_depth, s.queue_capacity, s.workers, s.busy
            );
            for j in &s.running {
                println!(
                    "  job {} trace={:016x} flow {} @ pass {} round {} ({} ms)",
                    j.job_id, j.trace_id, j.flow, j.pass, j.round, j.elapsed_ms
                );
            }
            return;
        }
        Some("stats") => {
            let s = client.stats().unwrap_or_else(|e| fail(e));
            println!("uptime        : {}s", s.uptime_secs);
            println!("jobs_served   : {}", s.jobs_served);
            println!("cache_hits    : {}", s.cache_hits);
            println!("cache_misses  : {}", s.cache_misses);
            println!("cache_evicted : {}", s.cache_evictions);
            println!("cache_entries : {}/{}", s.cache_entries, s.cache_capacity);
            println!("hit_rate      : {:.1}%", 100.0 * s.hit_rate());
            println!("queue_depth   : {}", s.queue_depth);
            for t in &s.flows {
                println!(
                    "flow {:<10}: {} jobs, {} ms total",
                    t.flow, t.jobs, t.total_millis
                );
            }
            return;
        }
        Some(_) => {
            client.shutdown().unwrap_or_else(|e| fail(e));
            println!("daemon acknowledged shutdown");
            return;
        }
        None => {}
    }

    let circuit = circuit.unwrap_or_else(|| usage());
    let result = client
        .optimize(OptimizeRequest {
            circuit,
            format,
            flow,
            threads,
            max_rounds,
            output,
            trace_id: trace_id.unwrap_or(0),
        })
        .unwrap_or_else(|e| fail(e));

    println!(
        "job {} (cached: {}): AND {} -> {}, XOR {} -> {}, depth {} -> {}, \
         {} rounds, {} ms, trace {}{}",
        result.job_id,
        result.cached,
        result.ands_before,
        result.ands_after,
        result.xors_before,
        result.xors_after,
        result.depth_before,
        result.depth_after,
        result.rounds,
        result.millis,
        result.trace_id,
        if result.converged {
            ""
        } else {
            " (round limit)"
        },
    );
    match out.as_deref() {
        Some("-") => print!("{}", result.netlist),
        Some(path) => std::fs::write(path, &result.netlist)
            .unwrap_or_else(|e| fail(format_args!("cannot write {path}: {e}"))),
        None => {}
    }
}
