//! A blocking client for the optimization service.
//!
//! One [`Client`] wraps one TCP connection and speaks the frame protocol
//! synchronously: each method sends a request and blocks for its
//! response (the server guarantees responses in request order per
//! connection). The `mc-client` CLI, the end-to-end tests, and the
//! `serve_bench` load generator are all built on this type.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::protocol::{
    read_frame, write_frame, ClusterStatsInfo, FrameError, HeartbeatInfo, OptimizeRequest,
    OptimizeResult, RegisterInfo, Request, Response, StatsInfo, StatusInfo,
};

/// Failure of a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Frame-level failure (truncated or oversized frame, closed mid-response).
    Frame(FrameError),
    /// The response could not be decoded, or had an unexpected type.
    Protocol(String),
    /// The server answered with an error response.
    Server(String),
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "frame error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// One connection to a running daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to the daemon at `addr` (e.g. `"127.0.0.1:4519"`).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // The protocol is strict request/response; Nagle only adds latency.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connects like [`Client::connect`], but retries a refused or failed
    /// connection up to `retries` extra times with bounded exponential
    /// backoff (50 ms doubling, capped at 1.6 s per wait) — for scripts
    /// racing a daemon that is still booting.
    ///
    /// # Errors
    ///
    /// Returns the last connection failure once the attempts are
    /// exhausted.
    pub fn connect_with_retry<A: ToSocketAddrs>(
        addr: A,
        retries: usize,
    ) -> std::io::Result<Client> {
        let mut delay = Duration::from_millis(50);
        let mut attempt = 0;
        loop {
            match Client::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(e) if attempt >= retries => return Err(e),
                Err(_) => {
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(Duration::from_millis(1600));
                    attempt += 1;
                }
            }
        }
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; a connection closed before the response
    /// arrives surfaces as [`ClientError::Protocol`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_payload())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("connection closed before response".into()))?;
        Response::from_payload(&payload).map_err(ClientError::Protocol)
    }

    /// Submits a circuit for optimization and blocks for the result.
    ///
    /// # Errors
    ///
    /// A malformed circuit (or any other request-level failure) comes
    /// back as [`ClientError::Server`] with the daemon's message.
    pub fn optimize(&mut self, request: OptimizeRequest) -> Result<OptimizeResult, ClientError> {
        match self.request(&Request::Optimize(request))? {
            Response::Result(result) => Ok(result),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Queries queue and worker occupancy.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn status(&mut self) -> Result<StatusInfo, ClientError> {
        match self.request(&Request::Status)? {
            Response::Status(status) => Ok(status),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Queries service counters (jobs served, cache hit rate, per-flow
    /// timing).
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn stats(&mut self) -> Result<StatsInfo, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Liveness probe: sends `ping` and measures the round-trip time to
    /// the `pong`. The router's health checks and `mc-client --ping` are
    /// built on this.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn ping(&mut self) -> Result<Duration, ClientError> {
        let t0 = Instant::now();
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(t0.elapsed()),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Backend → router: announces `addr` (where the router should send
    /// jobs) and `capacity` (worker-pool size); returns the assigned
    /// backend id. Re-registering the same address returns the same id.
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; a plain `mc-serve` daemon answers with a
    /// server error naming itself.
    pub fn register(
        &mut self,
        addr: &str,
        capacity: usize,
        queue_capacity: usize,
    ) -> Result<u64, ClientError> {
        let request = Request::Register(RegisterInfo {
            addr: addr.to_string(),
            capacity,
            queue_capacity,
        });
        match self.request(&request)? {
            Response::Registered { backend_id } => Ok(backend_id),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Backend → router: reports liveness and load under the id from
    /// [`Client::register`].
    ///
    /// # Errors
    ///
    /// A router that no longer knows the id (it restarted) answers with
    /// a server error — the caller should reconnect and re-register.
    pub fn heartbeat(
        &mut self,
        backend_id: u64,
        queue_depth: usize,
        busy: usize,
    ) -> Result<(), ClientError> {
        let request = Request::Heartbeat(HeartbeatInfo {
            backend_id,
            queue_depth,
            busy,
        });
        match self.request(&request)? {
            Response::Pong => Ok(()),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Queries a router's per-backend breakdown (affinity counters, per
    /// backend health/load/cache state).
    ///
    /// # Errors
    ///
    /// See [`ClientError`]; a plain backend answers with a server error.
    pub fn cluster_stats(&mut self) -> Result<ClusterStatsInfo, ClientError> {
        match self.request(&Request::ClusterStats)? {
            Response::ClusterStats(stats) => Ok(stats),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Fetches the server's metric registry as Prometheus-style text.
    /// From a cluster router this includes one section per healthy
    /// backend, keyed by backend id and address.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Fetches the server's metric-history windows (10s/1m/5m sliding
    /// rates derived from the sampler ring) plus the server's clock at
    /// snapshot time. From a cluster router the windows are the exact
    /// merge of every healthy backend's.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn metrics_history(&mut self) -> Result<(u64, Vec<mc_obs::HistoryWindow>), ClientError> {
        match self.request(&Request::MetricsHistory)? {
            Response::MetricsHistory { at_ms, windows } => Ok((at_ms, windows)),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Fetches the accumulated phase profile. From a cluster router the
    /// phases are merged across backends by path.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn prof_dump(&mut self) -> Result<Vec<mc_obs::PhaseStat>, ClientError> {
        match self.request(&Request::ProfDump)? {
            Response::ProfDump { phases } => Ok(phases),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Fetches recorded trace events, optionally filtered to one trace
    /// ID. From a cluster router this merges the router's own events
    /// with every healthy backend's, sorted onto one timeline.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn trace_dump(
        &mut self,
        trace_id: Option<u64>,
    ) -> Result<Vec<mc_obs::TraceEvent>, ClientError> {
        match self.request(&Request::TraceDump { trace_id })? {
            Response::TraceDump { events } => Ok(events),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down; returns once it acknowledged.
    ///
    /// # Errors
    ///
    /// See [`ClientError`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { message } => Err(ClientError::Server(message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }
}
