//! A bounded, blocking MPMC job queue with explicit close.
//!
//! The queue is the backpressure point of the service: connection
//! threads [`JobQueue::push`] and **block** while the queue is full, so a
//! flood of submissions slows clients down instead of growing an
//! unbounded backlog; worker threads [`JobQueue::pop`] and block while it
//! is empty. [`JobQueue::close`] wakes everyone: pending and future
//! pushes fail (returning the job to the caller), pops drain what is left
//! and then return `None` — the worker-pool shutdown signal.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use mc_rng::sched;

use crate::sync::{lock_unpoisoned, wait_unpoisoned};

/// Error returned by [`JobQueue::push`] on a closed queue; carries the
/// rejected job back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct Closed<T>(pub T);

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking queue. See the [module documentation](self).
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// Creates a queue holding at most `capacity` jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The capacity the queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).items.len()
    }

    /// True iff no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a job, blocking while the queue is full (the
    /// backpressure path).
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] with the job if the queue was closed before
    /// space became available.
    pub fn push(&self, job: T) -> Result<(), Closed<T>> {
        sched::yield_point(sched::site::QUEUE_PUSH);
        let mut state = lock_unpoisoned(&self.state);
        while state.items.len() >= self.capacity && !state.closed {
            state = wait_unpoisoned(&self.not_full, state);
        }
        if state.closed {
            return Err(Closed(job));
        }
        state.items.push_back(job);
        drop(state);
        sched::yield_point(sched::site::QUEUE_PUSH);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues a job, blocking while the queue is empty. Returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        sched::yield_point(sched::site::QUEUE_POP);
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(job) = state.items.pop_front() {
                drop(state);
                sched::yield_point(sched::site::QUEUE_POP);
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = wait_unpoisoned(&self.not_empty, state);
        }
    }

    /// Closes the queue: wakes all blocked pushers (which fail) and
    /// poppers (which drain, then observe the close).
    pub fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let q = JobQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn push_blocks_until_pop_makes_room() {
        let q = Arc::new(JobQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(1).is_ok());
        // Give the pusher time to block on the full queue.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.len(), 1, "second push must be blocked, not queued");
        assert_eq!(q.pop(), Some(0));
        assert!(pusher.join().unwrap(), "blocked push completes after pop");
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_wakes_poppers_and_fails_pushers() {
        let q = Arc::new(JobQueue::new(1));
        let q2 = Arc::clone(&q);
        let popper = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
        assert_eq!(q.push(7), Err(Closed(7)));
    }

    #[test]
    fn close_drains_remaining_items() {
        let q = JobQueue::new(4);
        q.push('a').unwrap();
        q.push('b').unwrap();
        q.close();
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_pusher_fails_on_close() {
        let q = Arc::new(JobQueue::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(Closed(1)));
    }

    /// The shutdown-under-contention scenario: many producers blocked on
    /// a full queue when `close` fires. Every blocked producer must be
    /// woken with its job returned (no deadlock), and the items that made
    /// it in must still drain cleanly.
    #[test]
    fn close_with_many_blocked_producers_drains_cleanly() {
        const PRODUCERS: usize = 8;
        let q = Arc::new(JobQueue::new(2));
        q.push(100usize).unwrap();
        q.push(101).unwrap();
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.push(i))
            })
            .collect();
        // Give every producer time to block on the full queue.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(q.len(), 2, "all extra pushes must be blocked");
        q.close();
        // No deadlock: every producer returns, and each gets its own job
        // back.
        let mut rejected: Vec<usize> = producers
            .into_iter()
            .map(|p| match p.join().expect("producer thread") {
                Err(Closed(job)) => job,
                Ok(()) => panic!("push succeeded after close on a full queue"),
            })
            .collect();
        rejected.sort_unstable();
        assert_eq!(rejected, (0..PRODUCERS).collect::<Vec<_>>());
        // Clean drain: the two accepted items come out, then None.
        assert_eq!(q.pop(), Some(100));
        assert_eq!(q.pop(), Some(101));
        assert_eq!(q.pop(), None);
    }
}
