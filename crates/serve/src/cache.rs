//! The semantic result cache: a bounded LRU map over the canonical
//! network key.
//!
//! The key itself — [`canonical_form`] / [`job_key`] / [`fingerprint`] —
//! lives in `xag_mc::canon` and is re-exported here, because the cluster
//! router computes the *same* bytes to consistent-hash a job onto the
//! backend ring: key agreement between the tiers is what makes an
//! isomorphic resubmission land on the backend whose cache is warm.
//!
//! [`SemanticCache`] bounds the map with least-recently-used eviction and
//! counts hits, misses, and evictions for the `stats` endpoint. The
//! server coalesces concurrent misses on the same key (only the first
//! racer computes; the rest wait on the commit) and reports the waiters
//! as hits via [`SemanticCache::note_coalesced_hit`].

pub use xag_mc::canon::{canonical_form, fingerprint, job_key};
use xag_tt::hash::FxHashMap;

/// One cached optimization result: both export formats plus the summary
/// the original computation reported.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheEntry {
    /// Id of the job that computed the entry.
    pub job_id: u64,
    /// Optimized netlist, Bristol fashion.
    pub bristol: String,
    /// Optimized netlist, structural Verilog.
    pub verilog: String,
    /// AND gates before optimization.
    pub ands_before: usize,
    /// XOR gates before optimization.
    pub xors_before: usize,
    /// Multiplicative depth before optimization.
    pub depth_before: usize,
    /// AND gates after optimization.
    pub ands_after: usize,
    /// XOR gates after optimization.
    pub xors_after: usize,
    /// Multiplicative depth after optimization.
    pub depth_after: usize,
    /// Pass executions the computation used.
    pub rounds: usize,
    /// Whether the flow converged.
    pub converged: bool,
    /// Wall-clock milliseconds of the original computation.
    pub millis: u64,
}

struct Slot {
    entry: CacheEntry,
    last_used: u64,
}

/// A bounded LRU map from job keys to results, with hit/miss/eviction
/// counters. Not thread-safe by itself — the server wraps it in a mutex.
pub struct SemanticCache {
    map: FxHashMap<Vec<u8>, Slot>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl SemanticCache {
    /// Creates a cache bounded at `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: FxHashMap::default(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks a key up, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &[u8]) -> Option<CacheEntry> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.hits += 1;
                Some(slot.entry.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) an entry, evicting the least recently used
    /// one when the bound is exceeded.
    pub fn insert(&mut self, key: Vec<u8>, entry: CacheEntry) {
        self.tick += 1;
        let tick = self.tick;
        self.map.insert(
            key,
            Slot {
                entry,
                last_used: tick,
            },
        );
        if self.map.len() > self.capacity {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
                self.evictions += 1;
            }
        }
    }

    /// Counts one hit without a lookup — used for a request that raced a
    /// cold cache, was coalesced onto the in-flight computation, and was
    /// served from its commit: semantically a hit, but the entry was
    /// delivered through the waiters list rather than through
    /// [`SemanticCache::get`].
    pub fn note_coalesced_hit(&mut self) {
        self.hits += 1;
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The LRU bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry (including coalesced hits).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by the bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64) -> CacheEntry {
        CacheEntry {
            job_id: id,
            bristol: String::new(),
            verilog: String::new(),
            ands_before: 0,
            xors_before: 0,
            depth_before: 0,
            ands_after: 0,
            xors_after: 0,
            depth_after: 0,
            rounds: 0,
            converged: true,
            millis: 0,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = SemanticCache::new(2);
        cache.insert(b"a".to_vec(), entry(1));
        cache.insert(b"b".to_vec(), entry(2));
        // Touch `a` so `b` becomes the LRU.
        assert!(cache.get(b"a").is_some());
        cache.insert(b"c".to_vec(), entry(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get(b"b").is_none(), "b was the LRU");
        assert!(cache.get(b"a").is_some());
        assert!(cache.get(b"c").is_some());
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let mut cache = SemanticCache::new(4);
        assert!(cache.get(b"k").is_none());
        cache.insert(b"k".to_vec(), entry(1));
        assert_eq!(cache.get(b"k").map(|e| e.job_id), Some(1));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        cache.note_coalesced_hit();
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        assert!(!cache.is_empty());
        assert_eq!(cache.capacity(), 4);
    }
}
