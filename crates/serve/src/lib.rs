//! `mc-serve` — multiplicative-complexity optimization as a service.
//!
//! The DAC'19 engine in this workspace optimizes one circuit per process
//! invocation; this crate turns it into a long-running daemon so many
//! clients can share one warm process: one TCP listener, a bounded job
//! queue, a pool of worker threads running the pass pipeline, and a
//! **semantic result cache** in front of them — a resubmitted or
//! structurally identical circuit is answered from the cache without
//! recomputation.
//!
//! Everything is `std`-only (no tokio, no hyper, no serde), consistent
//! with the workspace's offline no-external-deps policy.
//!
//! The layers, bottom to top:
//!
//! * [`json`] — a minimal JSON value/parser/writer;
//! * [`protocol`] — length-prefixed JSON frames and the typed
//!   [`Request`]/[`Response`] messages (`optimize`, `status`, `stats`,
//!   `shutdown`);
//! * [`queue`] — the bounded blocking job queue (backpressure);
//! * [`cache`] — canonical network hashing + the LRU result cache;
//! * [`server`] — listener, connection readers, and the worker pool;
//! * [`client`] — a blocking client library, used by the `mc-client` CLI
//!   binary, the end-to-end tests, and the `serve_bench` load generator.
//!
//! # Examples
//!
//! Boot a daemon on an ephemeral port, optimize a circuit, observe the
//! cache, and shut down:
//!
//! ```
//! use mc_serve::{Client, OptimizeRequest, ServeConfig, Server};
//! use xag_network::{write_bristol, Xag};
//!
//! // A 2-AND circuit for a 1-AND function (x = a & (b ^ c)).
//! let mut xag = Xag::new();
//! let (a, b, c) = (xag.input(), xag.input(), xag.input());
//! let ab = xag.and(a, b);
//! let ac = xag.and(a, c);
//! let x = xag.xor(ab, ac);
//! xag.output(x);
//! let mut text = Vec::new();
//! write_bristol(&xag, &mut text).unwrap();
//!
//! let handle = Server::bind(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let request = OptimizeRequest {
//!     circuit: String::from_utf8(text).unwrap(),
//!     ..OptimizeRequest::default()
//! };
//! let first = client.optimize(request.clone()).unwrap();
//! assert_eq!(first.ands_after, 1);
//! assert!(!first.cached);
//! let again = client.optimize(request).unwrap();
//! assert!(again.cached);
//! client.shutdown().unwrap();
//! handle.join();
//! ```

pub mod cache;
pub mod client;
pub mod coalesce;
mod join;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub(crate) mod sync;

pub use cache::{canonical_form, fingerprint, job_key, CacheEntry, SemanticCache};
pub use client::{Client, ClientError};
pub use coalesce::{CoalescingCache, Plan};
pub use protocol::{
    read_frame, write_frame, BackendStats, ClusterStatsInfo, FlowTiming, FrameError, HeartbeatInfo,
    OptimizeRequest, OptimizeResult, RegisterInfo, Request, Response, StatsInfo, StatusInfo,
    MAX_FRAME_LEN, MAX_JOB_ROUNDS, MAX_JOB_THREADS,
};
pub use queue::JobQueue;
pub use server::{ServeConfig, Server, ServerHandle};

// Re-exported so protocol consumers (the router, clients, tests) name
// the trace/progress wire types without a direct mc-obs dependency.
pub use mc_obs::{JobProgress, TraceEvent};
