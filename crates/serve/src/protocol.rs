//! The wire protocol of the optimization service.
//!
//! Every message is one **frame**: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Length-prefixing (rather
//! than bare JSON lines) lets the reader reject oversized payloads
//! *before* buffering them and makes truncation detectable: a connection
//! that dies mid-frame yields [`FrameError::Truncated`], never a
//! half-parsed request.
//!
//! Requests and responses are tagged JSON objects (`"type": "optimize"`,
//! `"type": "result"`, …); [`Request`] and [`Response`] are the typed
//! forms with lossless [`Request::to_json`] / [`Request::from_payload`]
//! conversions (and likewise for responses), covered by round-trip tests.

use std::io::{Read, Write};

use mc_obs::{HistoryWindow, JobProgress, PhaseStat, TraceEvent};
use xag_circuits::CircuitFormat;
use xag_mc::FlowSpec;

use crate::json::{self, Json};

/// Hard cap on a frame payload. A Bristol netlist of a few million gates
/// fits comfortably; anything larger is rejected before allocation.
pub const MAX_FRAME_LEN: usize = 32 << 20;

/// Server-side cap on the per-job worker threads a client may request.
pub const MAX_JOB_THREADS: usize = 8;

/// Server-side cap on the per-job round cap a client may request.
pub const MAX_JOB_ROUNDS: usize = 1000;

/// Error message a daemon answers with when refusing new work during
/// shutdown. **Stable**: the cluster router matches on it (by equality)
/// to decide that a job is safe to retry on another backend — reword it
/// only together with `mc-cluster`'s failover check.
pub const ERR_SHUTTING_DOWN: &str = "daemon is shutting down";

/// Error message for a job whose computation was abandoned by shutdown.
/// Stable for the same reason as [`ERR_SHUTTING_DOWN`].
pub const ERR_JOB_DROPPED: &str = "job was dropped during shutdown";

/// Failure reading a frame from the wire.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The peer closed (or the stream broke) in the middle of a frame.
    Truncated,
    /// The declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized(usize),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::Oversized(n) => {
                write!(f, "oversized frame: {n} bytes (limit {MAX_FRAME_LEN})")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Writes one frame (length prefix plus payload).
///
/// # Errors
///
/// Propagates I/O errors; refuses payloads above [`MAX_FRAME_LEN`] with
/// `InvalidInput`.
pub fn write_frame<W: Write>(mut writer: W, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "frame payload exceeds MAX_FRAME_LEN",
        ));
    }
    // One buffer, one write: a prefix-then-payload pair of writes would
    // put the 4-byte prefix in its own TCP segment, and Nagle + delayed
    // ACK would turn every request into a ~40 ms round trip.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    writer.write_all(&frame)?;
    writer.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean end-of-stream (EOF
/// exactly at a frame boundary); EOF anywhere inside a frame is
/// [`FrameError::Truncated`].
///
/// # Errors
///
/// See [`FrameError`].
pub fn read_frame<R: Read>(mut reader: R) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        // lint: allow(no-panic-in-request-path): filled < 4 is the loop condition; slice is in range
        match reader.read(&mut len_buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(frame_warn(FrameError::Truncated))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(frame_warn(FrameError::Oversized(len)));
    }
    let mut payload = vec![0u8; len];
    match reader.read_exact(&mut payload) {
        Ok(()) => Ok(Some(payload)),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            Err(frame_warn(FrameError::Truncated))
        }
        Err(e) => Err(FrameError::Io(e)),
    }
}

/// Counts a frame-level protocol violation and records a structured warn
/// event, so a flaky or hostile peer shows up in `Metrics`/`TraceDump`
/// instead of only in a per-connection error string.
fn frame_warn(err: FrameError) -> FrameError {
    let name = match &err {
        FrameError::Truncated => "frame_truncated",
        FrameError::Oversized(_) => "frame_oversized",
        FrameError::Io(_) => "frame_io_error",
    };
    mc_obs::registry().counter(&format!("{name}_total")).inc();
    mc_obs::instant(&format!("warn:{name}"), err.to_string());
    err
}

/// An `optimize` request: a circuit and what to do with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeRequest {
    /// The circuit text (Bristol or structural Verilog).
    pub circuit: String,
    /// Input format; `None` lets the server sniff it.
    pub format: Option<CircuitFormat>,
    /// The flow to run. On the wire this is a FlowSpec string (an alias
    /// like `paper` or a full spec like `mc(cut=6);xor;cleanup*`),
    /// parsed and resource-guard-validated at the service edge — a
    /// malformed or hostile spec is a protocol error, never a worker
    /// panic.
    pub flow: FlowSpec,
    /// Worker threads for the job (clamped server-side to
    /// [`MAX_JOB_THREADS`]; never changes the result).
    pub threads: usize,
    /// Round cap (clamped server-side to [`MAX_JOB_ROUNDS`]).
    pub max_rounds: usize,
    /// Format of the returned netlist.
    pub output: CircuitFormat,
    /// Trace ID to run the job under (0 = none; the server then assigns
    /// its own). The cluster router sets this when forwarding so router
    /// and backend events share one timeline; optional on the wire, so
    /// pre-tracing clients keep working.
    pub trace_id: u64,
}

impl Default for OptimizeRequest {
    fn default() -> Self {
        Self {
            circuit: String::new(),
            format: None,
            flow: FlowSpec::default(),
            threads: 1,
            max_rounds: 100,
            output: CircuitFormat::Bristol,
            trace_id: 0,
        }
    }
}

/// A backend announcing itself to the cluster router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterInfo {
    /// The address clients of the router can reach the backend at.
    pub addr: String,
    /// Worker capacity the backend announces (its pool size); the router
    /// uses it to decide when the backend is saturated.
    pub capacity: usize,
    /// The backend's job-queue bound, so the router can aggregate a
    /// meaningful `status` for the whole cluster.
    pub queue_capacity: usize,
}

/// A periodic liveness-and-load report from a registered backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatInfo {
    /// The id the router assigned at registration.
    pub backend_id: u64,
    /// Jobs waiting in the backend's queue.
    pub queue_depth: usize,
    /// Workers currently running a job.
    pub busy: usize,
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Optimize a circuit.
    Optimize(OptimizeRequest),
    /// Report queue and worker occupancy.
    Status,
    /// Report service counters (jobs, cache, per-flow timing).
    Stats,
    /// Liveness probe; answered inline with [`Response::Pong`]. The
    /// cluster router health-checks backends with it, and `Client::ping`
    /// exposes the round-trip time.
    Ping,
    /// Backend → router: join the cluster (answered with
    /// [`Response::Registered`]).
    Register(RegisterInfo),
    /// Backend → router: periodic liveness/load report (answered with
    /// [`Response::Pong`]).
    Heartbeat(HeartbeatInfo),
    /// Report the router's per-backend breakdown (answered with
    /// [`Response::ClusterStats`]; a plain backend answers with an
    /// error).
    ClusterStats,
    /// Report the process's metric registry as Prometheus-style text
    /// (answered with [`Response::Metrics`]). A router appends every
    /// healthy backend's section, keyed by backend.
    Metrics,
    /// Report the sliding-window metric history (answered with
    /// [`Response::MetricsHistory`]). A router merges every healthy
    /// backend's windows by plain addition — exact, because the windows
    /// carry raw deltas and per-bucket latency counts, not derived rates.
    MetricsHistory,
    /// Report the accumulated phase profile in folded-stack form
    /// (answered with [`Response::ProfDump`]). A router merges every
    /// healthy backend's profile per path.
    ProfDump,
    /// Report recorded trace events, optionally filtered to one trace ID
    /// (answered with [`Response::TraceDump`]). A router merges its own
    /// events with every healthy backend's onto one timeline.
    TraceDump {
        /// Restrict the dump to this trace ID; `None` returns everything
        /// still in the rings.
        trace_id: Option<u64>,
    },
    /// Stop accepting work and shut the daemon down.
    Shutdown,
}

/// The outcome of one `optimize` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizeResult {
    /// Server-assigned job id (cache hits reuse the id of the job that
    /// computed the entry).
    pub job_id: u64,
    /// True iff the response was served from the semantic cache.
    pub cached: bool,
    /// The optimized netlist, in `output` format.
    pub netlist: String,
    /// Format of `netlist`.
    pub output: CircuitFormat,
    /// AND gates before optimization.
    pub ands_before: usize,
    /// XOR gates before optimization.
    pub xors_before: usize,
    /// AND gates after optimization.
    pub ands_after: usize,
    /// XOR gates after optimization.
    pub xors_after: usize,
    /// Multiplicative depth before optimization.
    pub depth_before: usize,
    /// Multiplicative depth after optimization.
    pub depth_after: usize,
    /// Pass executions used.
    pub rounds: usize,
    /// True iff the flow converged before its round cap.
    pub converged: bool,
    /// Wall-clock milliseconds the optimization took (for a cache hit:
    /// the time the original computation took, not the hit's ~0).
    pub millis: u64,
    /// Trace ID the job ran under (0 when tracing was not requested and
    /// the server predates tracing; cache hits report the ID of the
    /// request that asked, not the one that computed).
    pub trace_id: u64,
}

/// Queue and worker occupancy, for the `status` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusInfo {
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Queue capacity (pushes beyond it block — backpressure).
    pub queue_capacity: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Workers currently running a job.
    pub busy: usize,
    /// Where each currently running job is (pass, round, elapsed) — the
    /// progress-board snapshot, empty on servers that predate it.
    pub running: Vec<JobProgress>,
}

/// Per-flow job count and cumulative optimization time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowTiming {
    /// The flow's canonical key: its normalized spec string
    /// ([`FlowSpec::normalized`]), so alias and expansion submissions
    /// land in one row.
    pub flow: String,
    /// Jobs computed under this flow (cache hits excluded).
    pub jobs: u64,
    /// Total optimization wall-clock, in milliseconds.
    pub total_millis: u64,
}

/// Service counters, for the `stats` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsInfo {
    /// Seconds since the daemon started (for a router: since it started;
    /// aggregated stats keep the router's own uptime).
    pub uptime_secs: u64,
    /// Optimize requests answered (computed + cache hits).
    pub jobs_served: u64,
    /// Semantic-cache hits.
    pub cache_hits: u64,
    /// Semantic-cache misses.
    pub cache_misses: u64,
    /// Entries evicted by the LRU bound.
    pub cache_evictions: u64,
    /// Entries currently cached.
    pub cache_entries: usize,
    /// LRU bound.
    pub cache_capacity: usize,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Per-flow computation totals.
    pub flows: Vec<FlowTiming>,
}

impl StatsInfo {
    /// Cache hit rate in `[0, 1]`; 0 when nothing was looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One backend's row in [`ClusterStatsInfo`]: registry state plus the
/// live counters the router polled from the backend (zero when the
/// backend is down or unreachable at poll time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendStats {
    /// Router-assigned backend id.
    pub id: u64,
    /// The backend's address.
    pub addr: String,
    /// Whether the router currently considers the backend healthy.
    pub up: bool,
    /// Announced worker capacity.
    pub capacity: usize,
    /// Jobs the router has dispatched to it and not yet seen complete.
    pub in_flight: usize,
    /// Jobs the router has routed to it over its lifetime.
    pub jobs_routed: u64,
    /// Queue depth from the last heartbeat.
    pub queue_depth: usize,
    /// Busy workers from the last heartbeat.
    pub busy: usize,
    /// `jobs_served` polled live from the backend.
    pub jobs_served: u64,
    /// Semantic-cache hits polled live from the backend.
    pub cache_hits: u64,
    /// Semantic-cache misses polled live from the backend.
    pub cache_misses: u64,
}

/// The router's per-backend breakdown, for the `cluster_stats` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStatsInfo {
    /// Seconds since the router started.
    pub uptime_secs: u64,
    /// Optimize requests the router answered from a backend.
    pub jobs_routed: u64,
    /// Dispatch attempts that failed and were retried on another backend.
    pub jobs_retried: u64,
    /// Dispatches that went to the ring-affine target (the backend the
    /// canonical job key consistent-hashes to).
    pub affinity_hits: u64,
    /// Dispatches diverted to a fallback backend (affine target down or
    /// saturated, or retry after a failure).
    pub affinity_fallbacks: u64,
    /// One row per registered backend, id order.
    pub backends: Vec<BackendStats>,
    /// SLO watchdog summary: empty when no SLO is configured (or the
    /// router predates the watchdog), otherwise `"ok"`, or
    /// `"warn: ..."`/`"breach: ..."` naming the violated thresholds.
    pub health: String,
}

impl ClusterStatsInfo {
    /// Fraction of dispatches that reached their ring-affine target, in
    /// `[0, 1]`; 0 before any dispatch.
    pub fn affinity_rate(&self) -> f64 {
        let total = self.affinity_hits + self.affinity_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.affinity_hits as f64 / total as f64
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Optimize`].
    Result(OptimizeResult),
    /// Answer to [`Request::Status`].
    Status(StatusInfo),
    /// Answer to [`Request::Stats`].
    Stats(StatsInfo),
    /// Answer to [`Request::Ping`] and [`Request::Heartbeat`].
    Pong,
    /// Answer to [`Request::Register`]: the id the router will expect in
    /// heartbeats.
    Registered {
        /// Router-assigned backend id (stable across re-registrations
        /// from the same address).
        backend_id: u64,
    },
    /// Answer to [`Request::ClusterStats`].
    ClusterStats(ClusterStatsInfo),
    /// Answer to [`Request::Metrics`]: the registry rendered as
    /// Prometheus-style text.
    Metrics {
        /// One `name value` line per metric; histograms expand to
        /// `_count`/`_sum`/`_p50`/`_p90`/`_p99` lines.
        text: String,
    },
    /// Answer to [`Request::MetricsHistory`]: the 10s/1m/5m window
    /// deltas, ending at the responder's newest sample.
    MetricsHistory {
        /// Epoch milliseconds the responder answered at.
        at_ms: u64,
        /// One delta per standard window, shortest first.
        windows: Vec<HistoryWindow>,
    },
    /// Answer to [`Request::ProfDump`]: the accumulated phase profile.
    ProfDump {
        /// Per-path phase timings, sorted by path; `path` joined with
        /// `self_us` is one folded-stack line.
        phases: Vec<PhaseStat>,
    },
    /// Answer to [`Request::TraceDump`]: recorded events, sorted by
    /// start time.
    TraceDump {
        /// The matching events still held in the rings.
        events: Vec<TraceEvent>,
    },
    /// Acknowledgement of [`Request::Shutdown`].
    ShuttingDown,
    /// Any failure the server could map to the request (malformed
    /// circuit, unknown request type, shutdown in progress, …).
    Error {
        /// Human-readable description.
        message: String,
    },
}

fn obj_str(value: &Json, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field: {key}"))
}

fn obj_usize(value: &Json, key: &str, default: usize) -> Result<usize, String> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| format!("non-integer field: {key}")),
    }
}

fn obj_u64(value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field: {key}"))
}

fn obj_u64_or(value: &Json, key: &str, default: u64) -> Result<u64, String> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("non-integer field: {key}")),
    }
}

fn obj_bool(value: &Json, key: &str) -> Result<bool, String> {
    value
        .get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or non-boolean field: {key}"))
}

impl Request {
    /// The JSON form of the request.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Optimize(o) => {
                let mut members = vec![("type".to_string(), Json::from("optimize"))];
                if let Some(f) = o.format {
                    members.push(("format".to_string(), Json::from(f.name())));
                }
                if o.trace_id != 0 {
                    members.push(("trace_id".to_string(), Json::from(o.trace_id)));
                }
                members.extend([
                    ("flow".to_string(), Json::from(o.flow.to_string())),
                    ("threads".to_string(), Json::from(o.threads)),
                    ("max_rounds".to_string(), Json::from(o.max_rounds)),
                    ("output".to_string(), Json::from(o.output.name())),
                    ("circuit".to_string(), Json::from(o.circuit.as_str())),
                ]);
                Json::Obj(members)
            }
            Request::Status => Json::Obj(vec![("type".to_string(), Json::from("status"))]),
            Request::Stats => Json::Obj(vec![("type".to_string(), Json::from("stats"))]),
            Request::Ping => Json::Obj(vec![("type".to_string(), Json::from("ping"))]),
            Request::Register(r) => Json::Obj(vec![
                ("type".to_string(), Json::from("register")),
                ("addr".to_string(), Json::from(r.addr.as_str())),
                ("capacity".to_string(), Json::from(r.capacity)),
                ("queue_capacity".to_string(), Json::from(r.queue_capacity)),
            ]),
            Request::Heartbeat(h) => Json::Obj(vec![
                ("type".to_string(), Json::from("heartbeat")),
                ("backend_id".to_string(), Json::from(h.backend_id)),
                ("queue_depth".to_string(), Json::from(h.queue_depth)),
                ("busy".to_string(), Json::from(h.busy)),
            ]),
            Request::ClusterStats => {
                Json::Obj(vec![("type".to_string(), Json::from("cluster_stats"))])
            }
            Request::Metrics => Json::Obj(vec![("type".to_string(), Json::from("metrics"))]),
            Request::MetricsHistory => {
                Json::Obj(vec![("type".to_string(), Json::from("metrics_history"))])
            }
            Request::ProfDump => Json::Obj(vec![("type".to_string(), Json::from("prof_dump"))]),
            Request::TraceDump { trace_id } => {
                let mut members = vec![("type".to_string(), Json::from("trace_dump"))];
                if let Some(id) = trace_id {
                    members.push(("trace_id".to_string(), Json::from(*id)));
                }
                Json::Obj(members)
            }
            Request::Shutdown => Json::Obj(vec![("type".to_string(), Json::from("shutdown"))]),
        }
    }

    /// Serializes to frame-payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        self.to_json().encode().into_bytes()
    }

    /// Parses a frame payload into a request.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of what is malformed (sent
    /// back to the client as a protocol error). Every rejection is also
    /// counted in `frame_malformed_total` and recorded as a
    /// `warn:frame_malformed` trace event.
    pub fn from_payload(payload: &[u8]) -> Result<Request, String> {
        Self::from_payload_inner(payload).map_err(frame_malformed)
    }

    fn from_payload_inner(payload: &[u8]) -> Result<Request, String> {
        let text = core::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let value = json::parse(text).map_err(|e| e.to_string())?;
        let kind = obj_str(&value, "type")?;
        match kind.as_str() {
            "optimize" => {
                let format = match value.get("format") {
                    None | Some(Json::Null) => None,
                    Some(v) => {
                        let name = v.as_str().ok_or("non-string field: format")?;
                        Some(
                            CircuitFormat::from_name(name)
                                .ok_or_else(|| format!("unknown format: {name}"))?,
                        )
                    }
                };
                // Absent fields default; present fields must be
                // well-typed — a mistyped "flow" silently running the
                // wrong flow would be far worse than an error. The
                // FlowSpec parser also enforces the resource-guard
                // limits, so a hostile `cleanup*9999999` dies right
                // here, before anything is queued.
                let flow = match value.get("flow") {
                    None | Some(Json::Null) => FlowSpec::default(),
                    Some(v) => {
                        let text = v.as_str().ok_or("non-string field: flow")?;
                        FlowSpec::parse(text).map_err(|e| e.to_string())?
                    }
                };
                let output = match value.get("output") {
                    None | Some(Json::Null) => CircuitFormat::Bristol,
                    Some(v) => {
                        let name = v.as_str().ok_or("non-string field: output")?;
                        CircuitFormat::from_name(name)
                            .ok_or_else(|| format!("unknown output format: {name}"))?
                    }
                };
                Ok(Request::Optimize(OptimizeRequest {
                    circuit: obj_str(&value, "circuit")?,
                    format,
                    flow,
                    threads: obj_usize(&value, "threads", 1)?,
                    max_rounds: obj_usize(&value, "max_rounds", 100)?,
                    output,
                    trace_id: obj_u64_or(&value, "trace_id", 0)?,
                }))
            }
            "status" => Ok(Request::Status),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "register" => Ok(Request::Register(RegisterInfo {
                addr: obj_str(&value, "addr")?,
                capacity: obj_usize(&value, "capacity", 1)?,
                queue_capacity: obj_usize(&value, "queue_capacity", 0)?,
            })),
            "heartbeat" => Ok(Request::Heartbeat(HeartbeatInfo {
                backend_id: obj_u64(&value, "backend_id")?,
                queue_depth: obj_usize(&value, "queue_depth", 0)?,
                busy: obj_usize(&value, "busy", 0)?,
            })),
            "cluster_stats" => Ok(Request::ClusterStats),
            "metrics" => Ok(Request::Metrics),
            "metrics_history" => Ok(Request::MetricsHistory),
            "prof_dump" => Ok(Request::ProfDump),
            "trace_dump" => Ok(Request::TraceDump {
                trace_id: match value.get("trace_id") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(v.as_u64().ok_or("non-integer field: trace_id")?),
                },
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type: {other}")),
        }
    }
}

/// The JSON form of one history window: raw deltas plus the per-bucket
/// latency counts, so aggregation stays exact on the wire.
fn window_to_json(w: &HistoryWindow) -> Json {
    Json::Obj(vec![
        ("window_secs".to_string(), Json::from(w.window_secs)),
        ("span_ms".to_string(), Json::from(w.span_ms)),
        ("jobs".to_string(), Json::from(w.jobs)),
        ("hits".to_string(), Json::from(w.hits)),
        ("misses".to_string(), Json::from(w.misses)),
        ("retries".to_string(), Json::from(w.retries)),
        ("errors".to_string(), Json::from(w.errors)),
        ("queue_depth".to_string(), Json::from(w.queue_depth)),
        ("busy".to_string(), Json::from(w.busy)),
        ("lat_count".to_string(), Json::from(w.lat_count)),
        ("lat_sum".to_string(), Json::from(w.lat_sum)),
        (
            "lat_buckets".to_string(),
            Json::Arr(w.lat_buckets.iter().map(|&n| Json::from(n)).collect()),
        ),
    ])
}

fn window_from_json(value: &Json) -> Result<HistoryWindow, String> {
    let lat_buckets = value
        .get("lat_buckets")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|n| n.as_u64().ok_or("non-integer latency bucket".to_string()))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(HistoryWindow {
        window_secs: obj_u64_or(value, "window_secs", 0)?,
        span_ms: obj_u64_or(value, "span_ms", 0)?,
        jobs: obj_u64_or(value, "jobs", 0)?,
        hits: obj_u64_or(value, "hits", 0)?,
        misses: obj_u64_or(value, "misses", 0)?,
        retries: obj_u64_or(value, "retries", 0)?,
        errors: obj_u64_or(value, "errors", 0)?,
        queue_depth: obj_u64_or(value, "queue_depth", 0)?,
        busy: obj_u64_or(value, "busy", 0)?,
        lat_count: obj_u64_or(value, "lat_count", 0)?,
        lat_sum: obj_u64_or(value, "lat_sum", 0)?,
        lat_buckets,
    })
}

/// Counts a structurally invalid request (parsed JSON, unusable content)
/// alongside the frame-level warns, and records a structured warn event.
fn frame_malformed(message: String) -> String {
    mc_obs::registry().counter("frame_malformed_total").inc();
    mc_obs::instant("warn:frame_malformed", message.clone());
    message
}

impl Response {
    /// The JSON form of the response.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Result(r) => Json::Obj(vec![
                ("type".to_string(), Json::from("result")),
                ("job_id".to_string(), Json::from(r.job_id)),
                ("cached".to_string(), Json::Bool(r.cached)),
                ("output".to_string(), Json::from(r.output.name())),
                ("ands_before".to_string(), Json::from(r.ands_before)),
                ("xors_before".to_string(), Json::from(r.xors_before)),
                ("ands_after".to_string(), Json::from(r.ands_after)),
                ("xors_after".to_string(), Json::from(r.xors_after)),
                ("depth_before".to_string(), Json::from(r.depth_before)),
                ("depth_after".to_string(), Json::from(r.depth_after)),
                ("rounds".to_string(), Json::from(r.rounds)),
                ("converged".to_string(), Json::Bool(r.converged)),
                ("millis".to_string(), Json::from(r.millis)),
                ("trace_id".to_string(), Json::from(r.trace_id)),
                ("netlist".to_string(), Json::from(r.netlist.as_str())),
            ]),
            Response::Status(s) => Json::Obj(vec![
                ("type".to_string(), Json::from("status")),
                ("queue_depth".to_string(), Json::from(s.queue_depth)),
                ("queue_capacity".to_string(), Json::from(s.queue_capacity)),
                ("workers".to_string(), Json::from(s.workers)),
                ("busy".to_string(), Json::from(s.busy)),
                (
                    "running".to_string(),
                    Json::Arr(
                        s.running
                            .iter()
                            .map(|j| {
                                Json::Obj(vec![
                                    ("job_id".to_string(), Json::from(j.job_id)),
                                    ("trace_id".to_string(), Json::from(j.trace_id)),
                                    ("flow".to_string(), Json::from(j.flow.as_str())),
                                    ("pass".to_string(), Json::from(j.pass.as_str())),
                                    ("round".to_string(), Json::from(j.round)),
                                    ("elapsed_ms".to_string(), Json::from(j.elapsed_ms)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Stats(s) => Json::Obj(vec![
                ("type".to_string(), Json::from("stats")),
                ("uptime_secs".to_string(), Json::from(s.uptime_secs)),
                ("jobs_served".to_string(), Json::from(s.jobs_served)),
                ("cache_hits".to_string(), Json::from(s.cache_hits)),
                ("cache_misses".to_string(), Json::from(s.cache_misses)),
                ("cache_evictions".to_string(), Json::from(s.cache_evictions)),
                ("cache_entries".to_string(), Json::from(s.cache_entries)),
                ("cache_capacity".to_string(), Json::from(s.cache_capacity)),
                ("queue_depth".to_string(), Json::from(s.queue_depth)),
                (
                    "flows".to_string(),
                    Json::Arr(
                        s.flows
                            .iter()
                            .map(|t| {
                                Json::Obj(vec![
                                    ("flow".to_string(), Json::from(t.flow.as_str())),
                                    ("jobs".to_string(), Json::from(t.jobs)),
                                    ("total_millis".to_string(), Json::from(t.total_millis)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Pong => Json::Obj(vec![("type".to_string(), Json::from("pong"))]),
            Response::Registered { backend_id } => Json::Obj(vec![
                ("type".to_string(), Json::from("registered")),
                ("backend_id".to_string(), Json::from(*backend_id)),
            ]),
            Response::ClusterStats(c) => {
                let mut members = vec![
                    ("type".to_string(), Json::from("cluster_stats")),
                    ("uptime_secs".to_string(), Json::from(c.uptime_secs)),
                    ("jobs_routed".to_string(), Json::from(c.jobs_routed)),
                    ("jobs_retried".to_string(), Json::from(c.jobs_retried)),
                    ("affinity_hits".to_string(), Json::from(c.affinity_hits)),
                    (
                        "affinity_fallbacks".to_string(),
                        Json::from(c.affinity_fallbacks),
                    ),
                ];
                if !c.health.is_empty() {
                    members.push(("health".to_string(), Json::from(c.health.as_str())));
                }
                members.push((
                    "backends".to_string(),
                    Json::Arr(
                        c.backends
                            .iter()
                            .map(|b| {
                                Json::Obj(vec![
                                    ("id".to_string(), Json::from(b.id)),
                                    ("addr".to_string(), Json::from(b.addr.as_str())),
                                    ("up".to_string(), Json::Bool(b.up)),
                                    ("capacity".to_string(), Json::from(b.capacity)),
                                    ("in_flight".to_string(), Json::from(b.in_flight)),
                                    ("jobs_routed".to_string(), Json::from(b.jobs_routed)),
                                    ("queue_depth".to_string(), Json::from(b.queue_depth)),
                                    ("busy".to_string(), Json::from(b.busy)),
                                    ("jobs_served".to_string(), Json::from(b.jobs_served)),
                                    ("cache_hits".to_string(), Json::from(b.cache_hits)),
                                    ("cache_misses".to_string(), Json::from(b.cache_misses)),
                                ])
                            })
                            .collect(),
                    ),
                ));
                Json::Obj(members)
            }
            Response::Metrics { text } => Json::Obj(vec![
                ("type".to_string(), Json::from("metrics")),
                ("text".to_string(), Json::from(text.as_str())),
            ]),
            Response::MetricsHistory { at_ms, windows } => Json::Obj(vec![
                ("type".to_string(), Json::from("metrics_history")),
                ("at_ms".to_string(), Json::from(*at_ms)),
                (
                    "windows".to_string(),
                    Json::Arr(windows.iter().map(window_to_json).collect()),
                ),
            ]),
            Response::ProfDump { phases } => Json::Obj(vec![
                ("type".to_string(), Json::from("prof_dump")),
                (
                    "phases".to_string(),
                    Json::Arr(
                        phases
                            .iter()
                            .map(|p| {
                                Json::Obj(vec![
                                    ("path".to_string(), Json::from(p.path.as_str())),
                                    ("count".to_string(), Json::from(p.count)),
                                    ("total_us".to_string(), Json::from(p.total_us)),
                                    ("self_us".to_string(), Json::from(p.self_us)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::TraceDump { events } => Json::Obj(vec![
                ("type".to_string(), Json::from("trace_dump")),
                (
                    "events".to_string(),
                    Json::Arr(
                        events
                            .iter()
                            .map(|e| {
                                Json::Obj(vec![
                                    ("trace_id".to_string(), Json::from(e.trace_id)),
                                    ("span".to_string(), Json::from(e.span.as_str())),
                                    ("start_us".to_string(), Json::from(e.start_us)),
                                    ("dur_us".to_string(), Json::from(e.dur_us)),
                                    ("detail".to_string(), Json::from(e.detail.as_str())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::ShuttingDown => {
                Json::Obj(vec![("type".to_string(), Json::from("shutting_down"))])
            }
            Response::Error { message } => Json::Obj(vec![
                ("type".to_string(), Json::from("error")),
                ("message".to_string(), Json::from(message.as_str())),
            ]),
        }
    }

    /// Serializes to frame-payload bytes.
    pub fn to_payload(&self) -> Vec<u8> {
        self.to_json().encode().into_bytes()
    }

    /// Parses a frame payload into a response.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of what is malformed.
    pub fn from_payload(payload: &[u8]) -> Result<Response, String> {
        let text = core::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
        let value = json::parse(text).map_err(|e| e.to_string())?;
        let kind = obj_str(&value, "type")?;
        match kind.as_str() {
            "result" => {
                let output_name = obj_str(&value, "output")?;
                let output = CircuitFormat::from_name(&output_name)
                    .ok_or_else(|| format!("unknown output format: {output_name}"))?;
                Ok(Response::Result(OptimizeResult {
                    job_id: obj_u64(&value, "job_id")?,
                    cached: obj_bool(&value, "cached")?,
                    netlist: obj_str(&value, "netlist")?,
                    output,
                    ands_before: obj_usize(&value, "ands_before", 0)?,
                    xors_before: obj_usize(&value, "xors_before", 0)?,
                    ands_after: obj_usize(&value, "ands_after", 0)?,
                    xors_after: obj_usize(&value, "xors_after", 0)?,
                    depth_before: obj_usize(&value, "depth_before", 0)?,
                    depth_after: obj_usize(&value, "depth_after", 0)?,
                    rounds: obj_usize(&value, "rounds", 0)?,
                    converged: obj_bool(&value, "converged")?,
                    millis: obj_u64(&value, "millis")?,
                    trace_id: obj_u64_or(&value, "trace_id", 0)?,
                }))
            }
            "status" => {
                let running = value
                    .get("running")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|j| {
                        Ok(JobProgress {
                            job_id: obj_u64(j, "job_id")?,
                            trace_id: obj_u64_or(j, "trace_id", 0)?,
                            flow: obj_str(j, "flow")?,
                            pass: obj_str(j, "pass").unwrap_or_default(),
                            round: obj_usize(j, "round", 0)?,
                            elapsed_ms: obj_u64_or(j, "elapsed_ms", 0)?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::Status(StatusInfo {
                    queue_depth: obj_usize(&value, "queue_depth", 0)?,
                    queue_capacity: obj_usize(&value, "queue_capacity", 0)?,
                    workers: obj_usize(&value, "workers", 0)?,
                    busy: obj_usize(&value, "busy", 0)?,
                    running,
                }))
            }
            "stats" => {
                let flows = value
                    .get("flows")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|t| {
                        Ok(FlowTiming {
                            flow: obj_str(t, "flow")?,
                            jobs: obj_u64(t, "jobs")?,
                            total_millis: obj_u64(t, "total_millis")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::Stats(StatsInfo {
                    uptime_secs: obj_u64_or(&value, "uptime_secs", 0)?,
                    jobs_served: obj_u64(&value, "jobs_served")?,
                    cache_hits: obj_u64(&value, "cache_hits")?,
                    cache_misses: obj_u64(&value, "cache_misses")?,
                    cache_evictions: obj_u64(&value, "cache_evictions")?,
                    cache_entries: obj_usize(&value, "cache_entries", 0)?,
                    cache_capacity: obj_usize(&value, "cache_capacity", 0)?,
                    queue_depth: obj_usize(&value, "queue_depth", 0)?,
                    flows,
                }))
            }
            "pong" => Ok(Response::Pong),
            "registered" => Ok(Response::Registered {
                backend_id: obj_u64(&value, "backend_id")?,
            }),
            "cluster_stats" => {
                let backends = value
                    .get("backends")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|b| {
                        Ok(BackendStats {
                            id: obj_u64(b, "id")?,
                            addr: obj_str(b, "addr")?,
                            up: obj_bool(b, "up")?,
                            capacity: obj_usize(b, "capacity", 0)?,
                            in_flight: obj_usize(b, "in_flight", 0)?,
                            jobs_routed: obj_u64_or(b, "jobs_routed", 0)?,
                            queue_depth: obj_usize(b, "queue_depth", 0)?,
                            busy: obj_usize(b, "busy", 0)?,
                            jobs_served: obj_u64_or(b, "jobs_served", 0)?,
                            cache_hits: obj_u64_or(b, "cache_hits", 0)?,
                            cache_misses: obj_u64_or(b, "cache_misses", 0)?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::ClusterStats(ClusterStatsInfo {
                    uptime_secs: obj_u64_or(&value, "uptime_secs", 0)?,
                    jobs_routed: obj_u64_or(&value, "jobs_routed", 0)?,
                    jobs_retried: obj_u64_or(&value, "jobs_retried", 0)?,
                    affinity_hits: obj_u64_or(&value, "affinity_hits", 0)?,
                    affinity_fallbacks: obj_u64_or(&value, "affinity_fallbacks", 0)?,
                    backends,
                    health: obj_str(&value, "health").unwrap_or_default(),
                }))
            }
            "metrics" => Ok(Response::Metrics {
                text: obj_str(&value, "text")?,
            }),
            "metrics_history" => {
                let windows = value
                    .get("windows")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(window_from_json)
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::MetricsHistory {
                    at_ms: obj_u64_or(&value, "at_ms", 0)?,
                    windows,
                })
            }
            "prof_dump" => {
                let phases = value
                    .get("phases")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|p| {
                        Ok(PhaseStat {
                            path: obj_str(p, "path")?,
                            count: obj_u64_or(p, "count", 0)?,
                            total_us: obj_u64_or(p, "total_us", 0)?,
                            self_us: obj_u64_or(p, "self_us", 0)?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::ProfDump { phases })
            }
            "trace_dump" => {
                let events = value
                    .get("events")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|e| {
                        Ok(TraceEvent {
                            trace_id: obj_u64_or(e, "trace_id", 0)?,
                            span: obj_str(e, "span")?,
                            start_us: obj_u64_or(e, "start_us", 0)?,
                            dur_us: obj_u64_or(e, "dur_us", 0)?,
                            detail: obj_str(e, "detail").unwrap_or_default(),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::TraceDump { events })
            }
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                message: obj_str(&value, "message")?,
            }),
            other => Err(format!("unknown response type: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"first").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, "unicode 🦀".as_bytes()).unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut reader).unwrap().unwrap(),
            "unicode 🦀".as_bytes()
        );
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frames_are_detected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        // Cut inside the payload.
        let cut = &wire[..wire.len() - 3];
        assert!(matches!(read_frame(cut), Err(FrameError::Truncated)));
        // Cut inside the length prefix.
        assert!(matches!(read_frame(&wire[..2]), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversized_frames_are_rejected_without_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        wire.extend_from_slice(b"whatever");
        assert!(matches!(
            read_frame(wire.as_slice()),
            Err(FrameError::Oversized(_))
        ));
        // The writer refuses to produce one in the first place.
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(Vec::new(), &huge).is_err());
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Optimize(OptimizeRequest {
                circuit: "module m (a, o0);\n…".to_string(),
                format: Some(CircuitFormat::Verilog),
                flow: "compress".parse().expect("alias parses"),
                threads: 4,
                max_rounds: 25,
                output: CircuitFormat::Verilog,
                trace_id: 0xABCD,
            }),
            Request::Optimize(OptimizeRequest {
                circuit: "1 3\n1 2\n1 1\n\n2 1 0 1 2 AND\n".to_string(),
                flow: "mc(cut=5)*2;par(threads=2){xor};cleanup*"
                    .parse()
                    .expect("spec parses"),
                ..OptimizeRequest::default()
            }),
            Request::Optimize(OptimizeRequest::default()),
            Request::Status,
            Request::Stats,
            Request::Ping,
            Request::Register(RegisterInfo {
                addr: "127.0.0.1:4519".to_string(),
                capacity: 4,
                queue_capacity: 64,
            }),
            Request::Heartbeat(HeartbeatInfo {
                backend_id: 3,
                queue_depth: 2,
                busy: 1,
            }),
            Request::ClusterStats,
            Request::Metrics,
            Request::MetricsHistory,
            Request::ProfDump,
            Request::TraceDump { trace_id: None },
            Request::TraceDump { trace_id: Some(99) },
            Request::Shutdown,
        ];
        for req in requests {
            let payload = req.to_payload();
            assert_eq!(Request::from_payload(&payload).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Result(OptimizeResult {
                job_id: 7,
                cached: true,
                netlist: "1 3\n1 2\n1 1\n\n2 1 0 1 2 AND\n".to_string(),
                output: CircuitFormat::Bristol,
                ands_before: 3,
                xors_before: 4,
                ands_after: 1,
                xors_after: 7,
                depth_before: 2,
                depth_after: 1,
                rounds: 5,
                converged: true,
                millis: 12,
                trace_id: 0xFEED,
            }),
            Response::Status(StatusInfo {
                queue_depth: 1,
                queue_capacity: 64,
                workers: 4,
                busy: 2,
                running: vec![JobProgress {
                    job_id: 9,
                    trace_id: 0xFEED,
                    flow: "mc(cut=4);xor".to_string(),
                    pass: "mc".to_string(),
                    round: 3,
                    elapsed_ms: 250,
                }],
            }),
            Response::Stats(StatsInfo {
                uptime_secs: 42,
                jobs_served: 10,
                cache_hits: 4,
                cache_misses: 6,
                cache_evictions: 1,
                cache_entries: 5,
                cache_capacity: 128,
                queue_depth: 0,
                flows: vec![FlowTiming {
                    flow: "paper".to_string(),
                    jobs: 6,
                    total_millis: 120,
                }],
            }),
            Response::Pong,
            Response::Registered { backend_id: 2 },
            Response::ClusterStats(ClusterStatsInfo {
                uptime_secs: 17,
                jobs_routed: 40,
                jobs_retried: 2,
                affinity_hits: 35,
                affinity_fallbacks: 5,
                backends: vec![BackendStats {
                    id: 1,
                    addr: "127.0.0.1:4519".to_string(),
                    up: true,
                    capacity: 4,
                    in_flight: 1,
                    jobs_routed: 21,
                    queue_depth: 0,
                    busy: 1,
                    jobs_served: 20,
                    cache_hits: 9,
                    cache_misses: 12,
                }],
                health: "warn: p99_ms 420>400".to_string(),
            }),
            Response::Metrics {
                text: "jobs_total 3\nqueue_wait_us_p99 512\n".to_string(),
            },
            Response::MetricsHistory {
                at_ms: 1_700_000_000_123,
                windows: vec![
                    {
                        let mut w = HistoryWindow::empty(10);
                        w.span_ms = 10_000;
                        w.jobs = 20;
                        w.hits = 5;
                        w.misses = 15;
                        w.lat_count = 2;
                        w.lat_sum = 1_100;
                        w.lat_buckets[7] = 1;
                        w.lat_buckets[10] = 1;
                        w
                    },
                    HistoryWindow::empty(60),
                ],
            },
            Response::ProfDump {
                phases: vec![PhaseStat {
                    path: "pipeline;mc_rewrite;cut_enum".to_string(),
                    count: 12,
                    total_us: 3_400,
                    self_us: 1_234,
                }],
            },
            Response::TraceDump {
                events: vec![TraceEvent {
                    trace_id: 0xFEED,
                    span: "pass:mc".to_string(),
                    start_us: 1_700_000_000_000_000,
                    dur_us: 1500,
                    detail: "rewrites=2 cuts=64 ands=10->8".to_string(),
                }],
            },
            Response::ShuttingDown,
            Response::Error {
                message: "malformed bristol circuit: bad gate line".to_string(),
            },
        ];
        for resp in responses {
            let payload = resp.to_payload();
            assert_eq!(Response::from_payload(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_are_errors() {
        assert!(Request::from_payload(b"\xff\xfe").is_err());
        assert!(Request::from_payload(b"{}").is_err());
        assert!(Request::from_payload(br#"{"type":"fly"}"#).is_err());
        assert!(
            Request::from_payload(br#"{"type":"optimize"}"#).is_err(),
            "no circuit"
        );
        assert!(
            Request::from_payload(br#"{"type":"optimize","circuit":"x","flow":"warp"}"#).is_err()
        );
        // Present-but-mistyped fields are rejected, not defaulted.
        assert!(Request::from_payload(br#"{"type":"optimize","circuit":"x","flow":2}"#).is_err());
        assert!(Request::from_payload(br#"{"type":"optimize","circuit":"x","output":1}"#).is_err());
        assert!(Response::from_payload(br#"{"type":"result"}"#).is_err());
    }

    /// New fields are optional on the wire: frames from pre-tracing
    /// peers parse with zero/empty defaults, and a zero trace ID is not
    /// even emitted.
    #[test]
    fn trace_fields_are_backward_compatible() {
        let req = Request::from_payload(br#"{"type":"optimize","circuit":"x"}"#).unwrap();
        match &req {
            Request::Optimize(o) => assert_eq!(o.trace_id, 0),
            other => panic!("unexpected request: {other:?}"),
        }
        assert!(
            !String::from_utf8(req.to_payload())
                .unwrap()
                .contains("trace_id"),
            "zero trace ID stays off the wire"
        );
        let resp = Response::from_payload(
            br#"{"type":"status","queue_depth":1,"queue_capacity":8,"workers":2,"busy":0}"#,
        )
        .unwrap();
        assert_eq!(
            resp,
            Response::Status(StatusInfo {
                queue_depth: 1,
                queue_capacity: 8,
                workers: 2,
                busy: 0,
                running: Vec::new(),
            })
        );
    }

    /// Frame-level violations are counted, not just stringified. Metric
    /// counters are process-global and tests run in parallel, so assert
    /// deltas, never absolute values.
    #[test]
    fn frame_warns_are_counted() {
        let reg = mc_obs::registry();
        let truncated = reg.counter("frame_truncated_total").get();
        let oversized = reg.counter("frame_oversized_total").get();
        let malformed = reg.counter("frame_malformed_total").get();

        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        let _ = read_frame(&wire[..wire.len() - 2]);
        assert!(reg.counter("frame_truncated_total").get() > truncated);

        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        let _ = read_frame(huge.as_slice());
        assert!(reg.counter("frame_oversized_total").get() > oversized);

        let _ = Request::from_payload(br#"{"type":"fly"}"#);
        assert!(reg.counter("frame_malformed_total").get() > malformed);
    }

    /// The resource guard fires during request parsing — a hostile spec
    /// is a structured protocol error naming the violated limit, and it
    /// never reaches a worker.
    #[test]
    fn hostile_flow_specs_are_protocol_errors() {
        let cases = [
            (
                r#"{"type":"optimize","circuit":"x","flow":"cleanup*9999999"}"#,
                "limit",
            ),
            (
                r#"{"type":"optimize","circuit":"x","flow":"{cleanup*1000}*1000"}"#,
                "budget",
            ),
            (
                r#"{"type":"optimize","circuit":"x","flow":"mc(cut=9)"}"#,
                "cut size",
            ),
            (r#"{"type":"optimize","circuit":"x","flow":""}"#, "empty"),
        ];
        for (payload, needle) in cases {
            let err = Request::from_payload(payload.as_bytes()).expect_err(payload);
            assert!(err.contains(needle), "{payload}: {err}");
        }
        // A well-formed custom spec passes and keeps its structure.
        let req = Request::from_payload(
            br#"{"type":"optimize","circuit":"x","flow":" mc( cut = 6 ) ; xor ; cleanup * "}"#,
        )
        .expect("valid spec");
        match req {
            Request::Optimize(o) => {
                assert_eq!(o.flow.to_string(), "mc(cut=6);xor;cleanup*");
            }
            other => panic!("unexpected request: {other:?}"),
        }
    }

    /// The observability frames added after PR 8 degrade gracefully
    /// against older peers: `health` defaults to empty, windows and
    /// phases to nothing.
    #[test]
    fn history_and_health_fields_are_backward_compatible() {
        let resp = Response::from_payload(br#"{"type":"cluster_stats","jobs_routed":3}"#).unwrap();
        match &resp {
            Response::ClusterStats(c) => assert!(c.health.is_empty()),
            other => panic!("unexpected response: {other:?}"),
        }
        assert!(
            !String::from_utf8(resp.to_payload())
                .unwrap()
                .contains("health"),
            "empty health stays off the wire"
        );
        let resp = Response::from_payload(br#"{"type":"metrics_history"}"#).unwrap();
        assert_eq!(
            resp,
            Response::MetricsHistory {
                at_ms: 0,
                windows: Vec::new(),
            }
        );
        let resp = Response::from_payload(br#"{"type":"prof_dump"}"#).unwrap();
        assert_eq!(resp, Response::ProfDump { phases: Vec::new() });
        // A window from a peer with fewer (or no) buckets still parses.
        let resp = Response::from_payload(
            br#"{"type":"metrics_history","at_ms":5,"windows":[{"window_secs":10,"jobs":2}]}"#,
        )
        .unwrap();
        match resp {
            Response::MetricsHistory { windows, .. } => {
                assert_eq!(windows.len(), 1);
                assert_eq!(windows[0].jobs, 2);
                assert!(windows[0].lat_buckets.is_empty());
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn hit_rate_is_well_defined() {
        let mut stats = StatsInfo {
            uptime_secs: 0,
            jobs_served: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_entries: 0,
            cache_capacity: 8,
            queue_depth: 0,
            flows: Vec::new(),
        };
        assert_eq!(stats.hit_rate(), 0.0);
        stats.cache_hits = 3;
        stats.cache_misses = 1;
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn affinity_rate_is_well_defined() {
        let mut stats = ClusterStatsInfo {
            uptime_secs: 0,
            jobs_routed: 0,
            jobs_retried: 0,
            affinity_hits: 0,
            affinity_fallbacks: 0,
            backends: Vec::new(),
            health: String::new(),
        };
        assert_eq!(stats.affinity_rate(), 0.0);
        stats.affinity_hits = 9;
        stats.affinity_fallbacks = 3;
        assert!((stats.affinity_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn heartbeat_requires_a_backend_id() {
        assert!(Request::from_payload(br#"{"type":"heartbeat"}"#).is_err());
        assert!(
            Request::from_payload(br#"{"type":"register"}"#).is_err(),
            "no addr"
        );
        // Register defaults capacity but never the address.
        let r = Request::from_payload(br#"{"type":"register","addr":"127.0.0.1:1"}"#).unwrap();
        assert_eq!(
            r,
            Request::Register(RegisterInfo {
                addr: "127.0.0.1:1".to_string(),
                capacity: 1,
                queue_capacity: 0,
            })
        );
    }
}
