//! A minimal JSON value, parser, and writer.
//!
//! The serve protocol exchanges small JSON objects over length-prefixed
//! frames. The workspace is offline and dependency-free by policy
//! (DESIGN.md §3), so instead of serde this module implements the small
//! JSON subset the protocol needs: objects, arrays, strings (with the
//! standard escapes, including `\uXXXX` and surrogate pairs), numbers,
//! booleans, and null. Object member order is preserved, so encoding is
//! deterministic — the protocol tests rely on byte-stable round trips.

use std::collections::VecDeque;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// rather than risking a stack overflow on hostile frames.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// (rejects negatives, NaN, and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value; deterministic (member order preserved).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; never produced by the protocol
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where parsing failed.
    pub offset: usize,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = core::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut pending: VecDeque<u16> = VecDeque::new();
        let flush =
            |pending: &mut VecDeque<u16>, out: &mut String, pos: usize| -> Result<(), JsonError> {
                if pending.is_empty() {
                    return Ok(());
                }
                let units: Vec<u16> = pending.drain(..).collect();
                let decoded: String = char::decode_utf16(units)
                    .collect::<Result<String, _>>()
                    .map_err(|_| JsonError {
                        message: "unpaired surrogate".to_string(),
                        offset: pos,
                    })?;
                out.push_str(&decoded);
                Ok(())
            };
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    flush(&mut pending, &mut out, self.pos)?;
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    if esc == b'u' {
                        pending.push_back(self.hex4()? as u16);
                        continue;
                    }
                    flush(&mut pending, &mut out, self.pos)?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    flush(&mut pending, &mut out, self.pos)?;
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xc0) == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        core::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("slice starts and ends on scalar boundaries of a valid &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let value = Json::Obj(vec![
            ("type".into(), Json::from("optimize")),
            ("threads".into(), Json::from(4u64)),
            ("cached".into(), Json::Bool(false)),
            (
                "list".into(),
                Json::Arr(vec![Json::Null, Json::Num(-1.5), Json::from("x")]),
            ),
        ]);
        let text = value.encode();
        assert_eq!(parse(&text).unwrap(), value);
        // Deterministic encoding.
        assert_eq!(parse(&text).unwrap().encode(), text);
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "quote \" backslash \\ slash /",
            "newline\ntab\tcr\r",
            "control \u{01} char",
            "unicode → ∀ 🦀",
        ] {
            let text = Json::from(s).encode();
            assert_eq!(parse(&text).unwrap(), Json::from(s), "{text}");
        }
        // \u escapes: BMP scalar, then a surrogate pair for U+1F980.
        assert_eq!(
            parse("\"\\u0041\\ud83e\\udd80\"").unwrap(),
            Json::from("A🦀")
        );
        assert!(parse(r#""\ud83e""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "nan",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn numbers_and_accessors() {
        let v = parse(r#"{"a": 42, "b": -1, "c": 2.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("b").and_then(Json::as_u64), None);
        assert_eq!(v.get("b").and_then(Json::as_f64), Some(-1.0));
        assert_eq!(v.get("c").and_then(Json::as_u64), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::from(42u64).encode(), "42");
        assert_eq!(Json::Num(2.5).encode(), "2.5");
    }
}
