//! Backend-side cluster membership: the `--join` agent.
//!
//! When `mc-serve` is started with `--join <router>`, one agent thread
//! runs [`join_loop`]: it connects to the router, announces the daemon's
//! reachable address and worker capacity with a `register` frame, and
//! then reports liveness and load (`queue_depth`, `busy`) with periodic
//! `heartbeat` frames on the same connection. Any failure — router not
//! up yet, connection dropped, router restarted and the backend id
//! forgotten — tears the connection down and the next tick reconnects
//! and re-registers (registration is idempotent per address: the router
//! hands the same id back).
//!
//! The agent is deliberately dumb: the router owns the health state
//! machine (missed heartbeats and failed health-check pings mark a
//! backend down; a successful re-register or ping brings it back). The
//! agent's only jobs are to exist, to be current, and to exit promptly
//! on daemon shutdown.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::client::Client;
use crate::server::Shared;

/// How long one shutdown-poll sleep slice lasts; keeps daemon shutdown
/// latency bounded regardless of the heartbeat interval.
const SHUTDOWN_POLL: Duration = Duration::from_millis(50);

pub(crate) fn sleep_until_shutdown(shared: &Arc<Shared>, total: Duration) {
    let mut remaining = total;
    while !shared.shutdown.load(Ordering::SeqCst) && !remaining.is_zero() {
        let slice = remaining.min(SHUTDOWN_POLL);
        std::thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
    }
}

/// Registers with `router` and heartbeats every `interval` until the
/// daemon shuts down. Never panics: every router-side failure is retried
/// on the next tick.
pub(crate) fn join_loop(shared: &Arc<Shared>, router: &str, advertised: &str, interval: Duration) {
    let mut session: Option<(Client, u64)> = None;
    while !shared.shutdown.load(Ordering::SeqCst) {
        if session.is_none() {
            session = Client::connect(router).ok().and_then(|mut client| {
                let status = shared.status();
                let id = client
                    .register(advertised, shared.workers, status.queue_capacity)
                    .ok()?;
                Some((client, id))
            });
        }
        let healthy = match session.as_mut() {
            Some((client, id)) => {
                let status = shared.status();
                client
                    .heartbeat(*id, status.queue_depth, status.busy)
                    .is_ok()
            }
            None => true, // nothing to tear down; retry registration next tick
        };
        if !healthy {
            session = None;
        }
        sleep_until_shutdown(shared, interval);
    }
}
