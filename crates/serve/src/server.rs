//! The daemon: TCP listener, per-connection reader threads, worker pool,
//! and the shared state tying them to the queue and the cache.
//!
//! # Thread model
//!
//! * **Listener** — one thread in a non-blocking accept loop (so it can
//!   observe the shutdown flag); every accepted connection gets its own
//!   reader thread.
//! * **Connection readers** — read one frame at a time. Cheap requests
//!   (`status`, `stats`, cache hits) are answered inline; a cache miss
//!   becomes a [`Job`] pushed onto the bounded queue — blocking there
//!   *is* the backpressure — and the reader then waits on the job's
//!   reply channel, so each connection has at most one job in flight and
//!   responses stay ordered.
//! * **Workers** — `workers` threads popping jobs. Each job forks the
//!   shared [`OptContext`], runs `xag_mc::run_job`, absorbs the fork back
//!   (so representatives synthesized for one client amortize across all
//!   of them), stores both export formats in the semantic cache, and
//!   sends the result to the waiting reader.
//!
//! Shutdown (a `shutdown` request or [`ServerHandle::shutdown`]) sets the
//! flag and closes the queue: the listener stops accepting, workers drain
//! the queue and exit, blocked submitters get an error response, and
//! readers exit on the next EOF or request.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xag_circuits::{parse_circuit, CircuitFormat};
use xag_mc::{run_job, FlowKind, JobSpec, OptContext};
use xag_network::{write_bristol, write_verilog, Xag};

use crate::cache::{job_key, CacheEntry};
use crate::coalesce::{CoalescingCache, Plan};
use crate::protocol::{
    read_frame, write_frame, FlowTiming, FrameError, OptimizeRequest, OptimizeResult, Request,
    Response, StatsInfo, StatusInfo, ERR_JOB_DROPPED, ERR_SHUTTING_DOWN, MAX_JOB_ROUNDS,
    MAX_JOB_THREADS,
};
use crate::queue::JobQueue;
use crate::sync::lock_unpoisoned;

/// Configuration of [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; use port 0 for an ephemeral port (the bound
    /// address is reported by [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Bound of the job queue (pushes beyond it block).
    pub queue_capacity: usize,
    /// Bound of the semantic result cache (LRU).
    pub cache_capacity: usize,
    /// Address of an `mc-cluster` router to join: the daemon registers
    /// itself there once listening and heartbeats for as long as it
    /// runs. `None` (the default) serves stand-alone.
    pub join: Option<String>,
    /// The address to *announce* to the joined router. Defaults to the
    /// bound address, which is only correct for a concrete bind — a
    /// daemon bound to a wildcard (`0.0.0.0:…`) must set this to the
    /// address the router can actually reach it at.
    pub advertise: Option<String>,
    /// Interval between heartbeats to the joined router.
    pub heartbeat_interval: Duration,
    /// Interval between metric-history snapshots (the sampler thread).
    pub sample_interval: Duration,
    /// Bound of the metric-history ring, in samples.
    pub history_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            queue_capacity: 64,
            cache_capacity: 128,
            join: None,
            advertise: None,
            heartbeat_interval: Duration::from_millis(500),
            sample_interval: Duration::from_secs(1),
            history_capacity: mc_obs::history::DEFAULT_CAPACITY,
        }
    }
}

/// One queued optimization job.
struct Job {
    id: u64,
    xag: Xag,
    spec: JobSpec,
    key: Vec<u8>,
    reply: mpsc::Sender<CacheEntry>,
    /// Trace ID the job runs under (request-supplied or server-assigned).
    trace_id: u64,
    /// When the job entered the queue; the worker's pop time minus this
    /// is the queue-wait latency.
    enqueued: Instant,
}

/// Bound on distinct per-flow statistics rows. Rows are keyed by
/// client-controlled normalized specs, and the spec space is huge — an
/// unbounded map would let a client grow server memory (and every
/// `stats` frame, which the cluster router polls) without limit. Flows
/// beyond the bound aggregate into [`FLOW_ROW_OTHER`].
const MAX_FLOW_ROWS: usize = 64;

/// Catch-all per-flow row once [`MAX_FLOW_ROWS`] distinct specs have
/// been seen. Cannot collide with a real row: normalized specs never
/// start with `(`.
const FLOW_ROW_OTHER: &str = "(other)";

/// Aggregate service counters (everything `stats` reports that the cache
/// does not already count).
#[derive(Debug)]
struct ServiceStats {
    jobs_served: u64,
    /// normalized flow spec → (jobs computed, total optimization
    /// millis); at most [`MAX_FLOW_ROWS`] spec rows plus the catch-all.
    per_flow: BTreeMap<String, (u64, u64)>,
}

impl ServiceStats {
    /// Starts with the canonical flows' rows pre-seeded: they always
    /// satisfy the `contains_key` check in the worker loop, so custom-
    /// spec churn can never displace a canonical flow into the
    /// catch-all row.
    fn new() -> Self {
        Self {
            jobs_served: 0,
            per_flow: FlowKind::ALL
                .iter()
                .map(|f| (f.spec().normalized(), (0, 0)))
                .collect(),
        }
    }
}

pub(crate) struct Shared {
    queue: JobQueue<Job>,
    /// The semantic cache plus the coalescing pending map; internally
    /// locked — see [`CoalescingCache`].
    cache: CoalescingCache,
    ctx: Mutex<OptContext>,
    stats: Mutex<ServiceStats>,
    pub(crate) shutdown: AtomicBool,
    busy: AtomicUsize,
    next_job_id: AtomicU64,
    pub(crate) workers: usize,
    started: Instant,
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    pub(crate) fn status(&self) -> StatusInfo {
        StatusInfo {
            queue_depth: self.queue.len(),
            queue_capacity: self.queue.capacity(),
            workers: self.workers,
            busy: self.busy.load(Ordering::Relaxed),
            running: mc_obs::progress_snapshot(),
        }
    }

    fn stats(&self) -> StatsInfo {
        let cache = self.cache.counters();
        let stats = lock_unpoisoned(&self.stats);
        // Zero-filled rows for the canonical flows keep the per-flow
        // breakdown complete for the router and `serve_bench`; rows are
        // keyed by normalized spec, so alias and expansion submissions
        // aggregate into one row (custom specs get their own).
        let mut per_flow: BTreeMap<String, (u64, u64)> = FlowKind::ALL
            .iter()
            .map(|f| (f.spec().normalized(), (0, 0)))
            .collect();
        for (flow, &counts) in &stats.per_flow {
            per_flow.insert(flow.clone(), counts);
        }
        StatsInfo {
            uptime_secs: self.started.elapsed().as_secs(),
            jobs_served: stats.jobs_served,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_entries: cache.entries,
            cache_capacity: cache.capacity,
            queue_depth: self.queue.len(),
            flows: per_flow
                .iter()
                .map(|(flow, &(jobs, total_millis))| FlowTiming {
                    flow: flow.clone(),
                    jobs,
                    total_millis,
                })
                .collect(),
        }
    }
}

/// The daemon's entry point; see [`Server::bind`].
pub struct Server;

impl Server {
    /// Binds the listener, spawns the worker pool and the accept loop,
    /// and returns a handle to the running service.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bad address, port in use, …).
    pub fn bind(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let addrs: Vec<SocketAddr> = config.addr.to_socket_addrs()?.collect();
        let listener = TcpListener::bind(&addrs[..])?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_capacity),
            cache: CoalescingCache::new(config.cache_capacity),
            ctx: Mutex::new(OptContext::new()),
            stats: Mutex::new(ServiceStats::new()),
            shutdown: AtomicBool::new(false),
            busy: AtomicUsize::new(0),
            next_job_id: AtomicU64::new(1),
            workers,
            started: Instant::now(),
        });

        let mut threads = Vec::with_capacity(workers + 2);
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("mc-serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    // lint: allow(no-panic-in-request-path): bind-time startup; no client connection exists yet
                    .expect("spawn worker thread"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("mc-serve-listener".to_string())
                    .spawn(move || accept_loop(listener, &shared))
                    // lint: allow(no-panic-in-request-path): bind-time startup; no client connection exists yet
                    .expect("spawn listener thread"),
            );
        }
        if let Some(router) = config.join.clone() {
            let shared = Arc::clone(&shared);
            let interval = config.heartbeat_interval;
            let advertised = config
                .advertise
                .clone()
                .unwrap_or_else(|| local_addr.to_string());
            threads.push(
                std::thread::Builder::new()
                    .name("mc-serve-join".to_string())
                    .spawn(move || crate::join::join_loop(&shared, &router, &advertised, interval))
                    // lint: allow(no-panic-in-request-path): bind-time startup; no client connection exists yet
                    .expect("spawn join thread"),
            );
        }
        {
            let shared = Arc::clone(&shared);
            let interval = config.sample_interval;
            let capacity = config.history_capacity;
            threads.push(
                std::thread::Builder::new()
                    .name("mc-serve-sampler".to_string())
                    .spawn(move || sampler_loop(&shared, interval, capacity))
                    // lint: allow(no-panic-in-request-path): bind-time startup; no client connection exists yet
                    .expect("spawn sampler thread"),
            );
        }

        Ok(ServerHandle {
            local_addr,
            joined: config.join,
            shared,
            threads,
        })
    }
}

/// A running daemon: its bound address and the means to stop it.
pub struct ServerHandle {
    local_addr: SocketAddr,
    joined: Option<String>,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The router address this daemon registers with, when started with
    /// a `join` configuration.
    pub fn joined_router(&self) -> Option<&str> {
        self.joined.as_deref()
    }

    /// Blocks until the daemon stops (i.e. until a `shutdown` request
    /// arrives or [`ServerHandle::shutdown`] is called elsewhere).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Initiates shutdown and waits for the listener and workers to
    /// exit. In-queue jobs are drained first; connection readers exit on
    /// their next read.
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        self.join();
    }
}

/// The metrics sampler: every `interval`, refresh the occupancy gauges
/// from the live pool state and push one cumulative snapshot into the
/// process-global history ring — the data behind `MetricsHistory` and
/// everything `mc-top` draws. Exits with the daemon.
fn sampler_loop(shared: &Arc<Shared>, interval: Duration, capacity: usize) {
    let reg = mc_obs::registry();
    mc_obs::history().set_capacity(capacity);
    let queue_gauge = reg.gauge("serve_queue_depth");
    let busy_gauge = reg.gauge("serve_workers_busy");
    let source = mc_obs::HistorySource {
        jobs: reg.counter("serve_jobs_served_total"),
        hits: reg.counter("serve_cache_hits_total"),
        misses: reg.counter("serve_cache_misses_total"),
        retries: reg.counter("serve_retries_total"),
        errors: reg.counter("serve_errors_total"),
        queue_depth: Arc::clone(&queue_gauge),
        busy: Arc::clone(&busy_gauge),
        latency: reg.histogram("serve_run_us"),
    };
    while !shared.shutdown.load(Ordering::SeqCst) {
        queue_gauge.set(shared.queue.len() as u64);
        busy_gauge.set(shared.busy.load(Ordering::Relaxed) as u64);
        mc_obs::history().push(source.sample(mc_obs::epoch_us() / 1000));
        crate::join::sleep_until_shutdown(shared, interval);
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                // Readers are detached: they exit on EOF, error, or the
                // next request after shutdown. Holding their handles
                // would let one idle client block the whole shutdown.
                let _ = std::thread::Builder::new()
                    .name("mc-serve-conn".to_string())
                    .spawn(move || {
                        let _ = stream.set_nonblocking(false);
                        let _ = stream.set_nodelay(true);
                        connection_loop(stream, &shared);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn send(stream: &mut TcpStream, response: &Response) -> bool {
    // write_frame flushes before returning.
    write_frame(&mut *stream, &response.to_payload()).is_ok()
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean EOF
            Err(FrameError::Oversized(n)) => {
                // The frame body was never read, so the stream cannot be
                // resynchronized — answer and drop the connection.
                let _ = send(
                    &mut stream,
                    &Response::Error {
                        message: FrameError::Oversized(n).to_string(),
                    },
                );
                return;
            }
            Err(_) => return, // truncated or broken stream
        };
        let request = match Request::from_payload(&payload) {
            Ok(request) => request,
            Err(message) => {
                if !send(&mut stream, &Response::Error { message }) {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Status => Response::Status(shared.status()),
            Request::Stats => Response::Stats(shared.stats()),
            Request::Ping => Response::Pong,
            // Cluster-handshake frames are the router's business; a plain
            // backend names itself so a misdirected `--join` is obvious.
            Request::Register(_) | Request::Heartbeat(_) | Request::ClusterStats => {
                Response::Error {
                    message: "not a cluster router (this is an mc-serve backend)".to_string(),
                }
            }
            Request::Metrics => Response::Metrics {
                text: mc_obs::registry().render(),
            },
            Request::MetricsHistory => Response::MetricsHistory {
                at_ms: mc_obs::epoch_us() / 1000,
                windows: mc_obs::history().standard_windows(),
            },
            Request::ProfDump => Response::ProfDump {
                phases: mc_obs::prof::snapshot(),
            },
            Request::TraceDump { trace_id } => Response::TraceDump {
                events: mc_obs::trace_dump(trace_id),
            },
            Request::Shutdown => {
                shared.begin_shutdown();
                let _ = send(&mut stream, &Response::ShuttingDown);
                return;
            }
            Request::Optimize(req) => handle_optimize(shared, req),
        };
        if !send(&mut stream, &response) {
            return;
        }
    }
}

fn entry_to_result(
    entry: &CacheEntry,
    cached: bool,
    output: CircuitFormat,
    trace_id: u64,
) -> Response {
    Response::Result(OptimizeResult {
        job_id: entry.job_id,
        cached,
        trace_id,
        netlist: match output {
            CircuitFormat::Bristol => entry.bristol.clone(),
            CircuitFormat::Verilog => entry.verilog.clone(),
        },
        output,
        ands_before: entry.ands_before,
        xors_before: entry.xors_before,
        ands_after: entry.ands_after,
        xors_after: entry.xors_after,
        depth_before: entry.depth_before,
        depth_after: entry.depth_after,
        rounds: entry.rounds,
        converged: entry.converged,
        millis: entry.millis,
    })
}

/// An `optimize` failure: counted (the history windows and SLO error
/// rates read the counter) and answered as a protocol error.
fn optimize_error(message: String) -> Response {
    mc_obs::registry().counter("serve_errors_total").inc();
    Response::Error { message }
}

fn handle_optimize(shared: &Arc<Shared>, req: OptimizeRequest) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return optimize_error(ERR_SHUTTING_DOWN.to_string());
    }
    // A malformed upload is a protocol error, never a worker panic: the
    // parse happens here, behind `Result`, before anything is queued.
    let xag = match parse_circuit(&req.circuit, req.format) {
        Ok(xag) => xag,
        Err(e) => return optimize_error(e.to_string()),
    };
    let spec = JobSpec {
        flow: req.flow,
        threads: req.threads.clamp(1, MAX_JOB_THREADS),
        max_rounds: req.max_rounds.clamp(1, MAX_JOB_ROUNDS),
    };
    let key = job_key(&xag, &spec.flow, spec.max_rounds);

    // The request's trace ID (a router forwarding a traced job) wins;
    // otherwise the job gets its own, so every optimize is traceable.
    let trace_id = if req.trace_id != 0 {
        req.trace_id
    } else {
        mc_obs::next_trace_id()
    };
    let _trace = mc_obs::trace_scope(trace_id);
    let lookup_start = Instant::now();

    // Atomic lookup-or-register in the coalescing cache: a hit answers
    // immediately; a key with an in-flight computation parks a waiter (a
    // coalesced hit, answered at commit); only a genuinely first miss
    // proceeds to compute.
    match shared.cache.plan(&key) {
        Plan::Hit(entry) => {
            // The whole hit path is the locked lookup above — record it,
            // so "how fast is a warm job really" has an answer.
            mc_obs::registry()
                .histogram("serve_cache_hit_us")
                .record(lookup_start.elapsed().as_micros() as u64);
            mc_obs::registry().counter("serve_cache_hits_total").inc();
            mc_obs::registry().counter("serve_jobs_served_total").inc();
            mc_obs::instant("serve:cache_hit", format!("job={}", entry.job_id));
            lock_unpoisoned(&shared.stats).jobs_served += 1;
            entry_to_result(&entry, true, req.output, trace_id)
        }
        Plan::Wait(rx) => match rx.recv() {
            Ok(entry) => {
                mc_obs::registry()
                    .histogram("serve_coalesced_wait_us")
                    .record(lookup_start.elapsed().as_micros() as u64);
                mc_obs::registry().counter("serve_cache_hits_total").inc();
                mc_obs::registry().counter("serve_jobs_served_total").inc();
                mc_obs::instant("serve:coalesced_hit", format!("job={}", entry.job_id));
                lock_unpoisoned(&shared.stats).jobs_served += 1;
                entry_to_result(&entry, true, req.output, trace_id)
            }
            Err(_) => optimize_error(ERR_JOB_DROPPED.to_string()),
        },
        Plan::Compute => {
            mc_obs::registry().counter("serve_cache_misses_total").inc();
            let id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = Job {
                id,
                xag,
                spec,
                key: key.clone(),
                reply: reply_tx,
                trace_id,
                enqueued: Instant::now(),
            };
            // This push blocking on a full queue is the backpressure path.
            if shared.queue.push(job).is_err() {
                // Unregister the pending key; dropping its waiter senders
                // wakes every coalesced request with the same error.
                shared.cache.abort(&key);
                return optimize_error(ERR_SHUTTING_DOWN.to_string());
            }
            match reply_rx.recv() {
                Ok(entry) => {
                    mc_obs::registry().counter("serve_jobs_served_total").inc();
                    lock_unpoisoned(&shared.stats).jobs_served += 1;
                    entry_to_result(&entry, false, req.output, trace_id)
                }
                Err(_) => optimize_error(ERR_JOB_DROPPED.to_string()),
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    // Occupancy gauges are set from the pool itself at every transition,
    // so `Metrics` is live even between sampler ticks.
    let queue_gauge = mc_obs::registry().gauge("serve_queue_depth");
    let busy_gauge = mc_obs::registry().gauge("serve_workers_busy");
    while let Some(job) = shared.queue.pop() {
        let busy = shared.busy.fetch_add(1, Ordering::Relaxed) + 1;
        busy_gauge.set(busy as u64);
        queue_gauge.set(shared.queue.len() as u64);
        // The job ran under the submitter's trace from here on: queue
        // wait, every pass boundary, and the serialize span all join one
        // timeline, and the progress board answers `Status` mid-run.
        let _trace = mc_obs::trace_scope(job.trace_id);
        let _progress = mc_obs::job_scope(job.id, job.trace_id, job.spec.flow.normalized());
        let wait_us = job.enqueued.elapsed().as_micros() as u64;
        mc_obs::registry()
            .histogram("serve_queue_wait_us")
            .record(wait_us);
        mc_obs::record(
            "serve:queue_wait",
            mc_obs::epoch_us().saturating_sub(wait_us),
            wait_us,
            format!("job={}", job.id),
        );
        let entry = compute(shared, job.id, job.xag, &job.spec);
        // Commit into the coalescing cache; waiters racing this cold key
        // are woken from the committed entry (exactly one compute).
        shared.cache.commit(&job.key, &entry);
        {
            let mut stats = lock_unpoisoned(&shared.stats);
            let key = job.spec.flow.normalized();
            let key = if stats.per_flow.contains_key(&key) || stats.per_flow.len() < MAX_FLOW_ROWS {
                key
            } else {
                FLOW_ROW_OTHER.to_string()
            };
            let slot = stats.per_flow.entry(key).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += entry.millis;
        }
        // The reader may have vanished (client hung up); the cache entry
        // is still useful, so ignore the send failure.
        let _ = job.reply.send(entry);
        let busy = shared.busy.fetch_sub(1, Ordering::Relaxed) - 1;
        busy_gauge.set(busy as u64);
    }
}

fn compute(shared: &Arc<Shared>, job_id: u64, mut xag: Xag, spec: &JobSpec) -> CacheEntry {
    // Fork the shared context so the optimization itself runs without
    // holding any lock; absorb afterwards so every worker benefits from
    // the representatives this job synthesized.
    let mut ctx = lock_unpoisoned(&shared.ctx).fork();
    let run_start = Instant::now();
    let result = {
        let mut run_span = mc_obs::span("serve:run");
        run_span.detail(format!("job={job_id} flow={}", spec.flow.normalized()));
        run_job(&mut xag, &mut ctx, spec)
    };
    mc_obs::registry()
        .histogram("serve_run_us")
        .record(run_start.elapsed().as_micros() as u64);
    lock_unpoisoned(&shared.ctx).absorb(ctx);

    let serialize_start = Instant::now();
    let serialize_span = mc_obs::span("serve:serialize");
    let clean = xag.cleanup();
    let mut bristol = Vec::new();
    // lint: allow(no-panic-in-request-path): Vec<u8> sink; io::Write cannot fail in memory
    write_bristol(&clean, &mut bristol).expect("in-memory write cannot fail");
    let mut verilog = Vec::new();
    // lint: allow(no-panic-in-request-path): Vec<u8> sink; io::Write cannot fail in memory
    write_verilog(&clean, "optimized", &mut verilog).expect("in-memory write cannot fail");
    drop(serialize_span);
    mc_obs::registry()
        .histogram("serve_serialize_us")
        .record(serialize_start.elapsed().as_micros() as u64);
    mc_obs::registry()
        .counter("serve_jobs_computed_total")
        .inc();
    CacheEntry {
        job_id,
        // lint: allow(no-panic-in-request-path): both writers emit ASCII only
        bristol: String::from_utf8(bristol).expect("bristol writer emits ASCII"),
        // lint: allow(no-panic-in-request-path): both writers emit ASCII only
        verilog: String::from_utf8(verilog).expect("verilog writer emits ASCII"),
        ands_before: result.ands_before,
        xors_before: result.xors_before,
        depth_before: result.depth_before,
        ands_after: result.ands_after,
        xors_after: result.xors_after,
        depth_after: result.depth_after,
        rounds: result.rounds,
        converged: result.converged,
        millis: result.elapsed.as_millis() as u64,
    }
}
