//! A small, dependency-free, deterministic pseudo-random generator.
//!
//! Two parts of the workspace need randomness, and both need it to be
//! *reproducible forever*:
//!
//! * the benchmark generators in `xag-circuits`, where seeded tables and
//!   seeded control networks are part of the benchmark definition
//!   (DESIGN.md §3) — a different generator would silently change every
//!   gate count the experiments report;
//! * the randomized property tests, which replay fixed seeds so a failure
//!   is always reproducible from the log.
//!
//! The generator is SplitMix64 (Steele, Lea, Flood — "Fast splittable
//! pseudorandom number generators", OOPSLA'14): a 64-bit counter passed
//! through a finalizer with provably full period. It is not
//! cryptographically secure, and does not need to be.
//!
//! # Examples
//!
//! ```
//! use mc_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let a = rng.gen_range(0..10);
//! assert!(a < 10);
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(again.gen_range(0..10), a);
//! ```

/// A SplitMix64 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

pub mod sched {
    //! Seeded schedule-perturbation hooks for concurrency tests.
    //!
    //! The propose/commit engine (`xag-mc`), the job queue and the
    //! coalescing cache (`mc-serve`) call [`yield_point`] at the edges of
    //! their critical sections. In production the hook is a single
    //! relaxed atomic load of a zero and nothing else — the bench gate
    //! holds that cost to the committed trajectory. Under
    //! `tests/schedule_fuzz.rs` the hook is [`enable`]d with a seed, and
    //! every crossing draws from a global SplitMix64 stream to decide
    //! between proceeding, yielding the OS scheduler, or micro-sleeping —
    //! shaking out interleavings that an unperturbed scheduler would
    //! almost never produce, while staying reproducible enough to replay
    //! a failing seed.
    //!
    //! The state is process-global, so tests that enable it must
    //! serialize against each other (the schedule fuzzer takes a shared
    //! mutex per scenario).

    use std::sync::atomic::{AtomicU64, Ordering};

    /// `0` means disabled; any other value is the live SplitMix64 state.
    static STATE: AtomicU64 = AtomicU64::new(0);

    /// Turns the hook on with a seed (coerced away from the reserved
    /// disabled value).
    pub fn enable(seed: u64) {
        STATE.store(seed | 1, Ordering::SeqCst);
    }

    /// Turns the hook off; every later [`yield_point`] is a no-op again.
    pub fn disable() {
        STATE.store(0, Ordering::SeqCst);
    }

    /// True iff the hook is currently enabled.
    pub fn enabled() -> bool {
        STATE.load(Ordering::Relaxed) != 0
    }

    /// A schedule-perturbation point. `site` salts the decision so
    /// distinct call sites diverge under the same seed.
    #[inline]
    pub fn yield_point(site: u32) {
        if STATE.load(Ordering::Relaxed) == 0 {
            return;
        }
        yield_point_enabled(site);
    }

    #[cold]
    fn yield_point_enabled(site: u32) {
        // Advance the global stream only while enabled, so a concurrent
        // `disable` is never resurrected by a straggling increment.
        let prev = STATE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
            (s != 0).then(|| s.wrapping_add(super::GOLDEN_GAMMA))
        });
        let Ok(state) = prev else { return };
        let mut z = state.wrapping_add((site as u64).wrapping_mul(super::GOLDEN_GAMMA));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        match z % 8 {
            0..=2 => std::thread::yield_now(),
            3 => std::thread::sleep(std::time::Duration::from_micros(1 + (z >> 8) % 40)),
            _ => {}
        }
    }

    /// Stable site salts for the workspace's hook crossings, kept in one
    /// place so seeds mean the same schedule across crates.
    pub mod site {
        /// `JobQueue::push`, before taking the queue lock.
        pub const QUEUE_PUSH: u32 = 1;
        /// `JobQueue::pop`, before taking the queue lock.
        pub const QUEUE_POP: u32 = 2;
        /// Coalescing-cache plan (lookup-or-register), before the lock.
        pub const COALESCE_PLAN: u32 = 3;
        /// Coalescing-cache commit, between insert and waiter wakeup.
        pub const COALESCE_COMMIT: u32 = 4;
        /// Shard propose worker, before claiming the next window.
        pub const SHARD_CLAIM: u32 = 5;
        /// Shard propose worker, after building a proposal.
        pub const SHARD_PROPOSE: u32 = 6;
    }
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// streams, on every platform, forever.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniformly distributed `usize` in `range` (which must be
    /// non-empty).
    ///
    /// Uses the widening-multiply range reduction; the bias over a 64-bit
    /// draw is far below anything a test or benchmark generator can
    /// observe.
    pub fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range over an empty range");
        let span = (range.end - range.start) as u64;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// A uniformly distributed `bool`.
    pub fn gen(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit in 1000 draws");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn sched_hook_is_inert_until_enabled_and_off_after_disable() {
        // Not enabled: a crossing must be a pure no-op.
        assert!(!sched::enabled());
        sched::yield_point(sched::site::QUEUE_PUSH);
        sched::enable(0); // reserved seed is coerced to a live state
        assert!(sched::enabled());
        for s in 0..64 {
            sched::yield_point(s); // must terminate quickly, never panic
        }
        sched::disable();
        assert!(!sched::enabled());
        sched::yield_point(sched::site::SHARD_CLAIM);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<u8> = (0..16).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u8>>());
        assert_ne!(v, (0..16).collect::<Vec<u8>>(), "seed 3 must permute");
    }
}
