//! Keccak-f permutation circuits (the SHA-3 core).
//!
//! Keccak is the MPC community's favourite hash precisely because of its
//! multiplicative structure: the only nonlinear step, χ, is *quadratic* —
//! `a ← a ⊕ (¬b · c)` along rows of five — so the whole permutation costs
//! exactly `rounds · b/5 · 5 = rounds · b` AND gates... before synthesis.
//! The generator emits the textbook χ form (one AND per state bit); the
//! optimizer cannot beat one AND per χ term (degree argument) but exercises
//! the θ linear layer heavily.
//!
//! The lane width `w ∈ {1, 2, 4, 8, 16, 32, 64}` selects the permutation
//! size `b = 25·w` (Keccak-f[25] … Keccak-f[1600]); round count is the
//! standard `12 + 2·log₂ w`. Round constants come from the specification's
//! degree-8 LFSR, and rotation offsets from the (x, y)-walk, so no tables
//! are copied in.

use xag_network::{Signal, Xag};

/// Round-constant LFSR of the Keccak specification: `rc(t)` is bit 0 of
/// `x^t mod x⁸+x⁶+x⁵+x⁴+1` over GF(2).
fn rc_bit(t: usize) -> bool {
    let mut r: u16 = 1;
    for _ in 0..t {
        r <<= 1;
        if r & 0x100 != 0 {
            r ^= 0x171; // x⁸+x⁶+x⁵+x⁴+1
        }
    }
    r & 1 == 1
}

/// The 24 round constants for lane width `w`.
fn round_constants(w: usize, rounds: usize) -> Vec<u64> {
    (0..rounds)
        .map(|ir| {
            let mut rc = 0u64;
            for j in 0..=6 {
                let pos = (1usize << j) - 1;
                if pos < w && rc_bit(j + 7 * ir) {
                    rc |= 1 << pos;
                }
            }
            rc
        })
        .collect()
}

/// ρ rotation offsets via the specification's (x, y) walk.
fn rho_offsets(w: usize) -> [[usize; 5]; 5] {
    let mut off = [[0usize; 5]; 5];
    let (mut x, mut y) = (1usize, 0usize);
    for t in 0..24 {
        off[x][y] = ((t + 1) * (t + 2) / 2) % w;
        let nx = y;
        let ny = (2 * x + 3 * y) % 5;
        x = nx;
        y = ny;
    }
    off
}

type Lane = Vec<Signal>;

fn rotl_lane(l: &Lane, r: usize) -> Lane {
    let w = l.len();
    (0..w).map(|i| l[(i + w - (r % w)) % w]).collect()
}

/// Builds the Keccak-f[25·w] permutation circuit: `25·w` inputs and
/// outputs, lane `(x, y)` occupying bits `w·(x + 5y) ..`.
///
/// # Panics
///
/// Panics if `w` is not a power of two in `1..=64`.
pub fn keccak_f(w: usize) -> Xag {
    assert!(
        w.is_power_of_two() && w <= 64,
        "lane width must be 2^l ≤ 64"
    );
    let l = w.trailing_zeros() as usize;
    let rounds = 12 + 2 * l;
    let rcs = round_constants(w, rounds);
    let rho = rho_offsets(w);

    let mut xag = Xag::new();
    let mut lanes: Vec<Vec<Lane>> = (0..5)
        .map(|_| (0..5).map(|_| Vec::new()).collect())
        .collect();
    // Inputs in lane order (x + 5y).
    for y in 0..5 {
        for x in 0..5 {
            lanes[x][y] = (0..w).map(|_| xag.input()).collect();
        }
    }

    for rc in &rcs {
        // θ: column parities.
        let c: Vec<Lane> = (0..5)
            .map(|x| {
                (0..w)
                    .map(|z| {
                        let mut acc = Signal::CONST0;
                        for y in 0..5 {
                            acc = xag.xor(acc, lanes[x][y][z]);
                        }
                        acc
                    })
                    .collect()
            })
            .collect();
        let d: Vec<Lane> = (0..5)
            .map(|x| {
                let rot = rotl_lane(&c[(x + 1) % 5], 1);
                (0..w).map(|z| xag.xor(c[(x + 4) % 5][z], rot[z])).collect()
            })
            .collect();
        for x in 0..5 {
            for y in 0..5 {
                for z in 0..w {
                    lanes[x][y][z] = xag.xor(lanes[x][y][z], d[x][z]);
                }
            }
        }
        // ρ and π.
        let mut b: Vec<Vec<Lane>> = vec![vec![Vec::new(); 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = rotl_lane(&lanes[x][y], rho[x][y]);
            }
        }
        // χ: the quadratic layer, one AND per state bit.
        for x in 0..5 {
            for y in 0..5 {
                lanes[x][y] = (0..w)
                    .map(|z| {
                        let not_b1 = !b[(x + 1) % 5][y][z];
                        let t = xag.and(not_b1, b[(x + 2) % 5][y][z]);
                        xag.xor(b[x][y][z], t)
                    })
                    .collect();
            }
        }
        // ι.
        for z in 0..w {
            if (rc >> z) & 1 == 1 {
                lanes[0][0][z] = !lanes[0][0][z];
            }
        }
    }
    for y in 0..5 {
        for x in 0..5 {
            for z in 0..w {
                xag.output(lanes[x][y][z]);
            }
        }
    }
    xag
}

/// Value-domain model of the same permutation, for validation.
pub fn keccak_f_software(w: usize, state: &mut [u64; 25]) {
    let l = w.trailing_zeros() as usize;
    let rounds = 12 + 2 * l;
    let rcs = round_constants(w, rounds);
    let rho = rho_offsets(w);
    let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
    let rotl = |v: u64, r: usize| -> u64 {
        if r.is_multiple_of(w) {
            v
        } else {
            ((v << (r % w)) | (v >> (w - r % w))) & mask
        }
    };
    let lane = |s: &[u64; 25], x: usize, y: usize| s[x + 5 * y];
    for rc in &rcs {
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = (0..5).fold(0, |a, y| a ^ lane(state, x, y));
        }
        let mut d = [0u64; 5];
        for (x, dx) in d.iter_mut().enumerate() {
            *dx = c[(x + 4) % 5] ^ rotl(c[(x + 1) % 5], 1);
        }
        for x in 0..5 {
            for y in 0..5 {
                state[x + 5 * y] ^= d[x];
            }
        }
        let mut b = [0u64; 25];
        for x in 0..5 {
            for y in 0..5 {
                b[y + 5 * ((2 * x + 3 * y) % 5)] = rotl(lane(state, x, y), rho[x][y]);
            }
        }
        for x in 0..5 {
            for y in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ ((!b[(x + 1) % 5 + 5 * y] & mask) & b[(x + 2) % 5 + 5 * y]);
            }
        }
        state[0] ^= rc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_matches_software_model() {
        for w in [1usize, 2, 4] {
            let xag = keccak_f(w);
            assert_eq!(xag.num_inputs(), 25 * w);
            assert_eq!(xag.num_outputs(), 25 * w);
            // χ: one AND per state bit per round.
            let rounds = 12 + 2 * w.trailing_zeros() as usize;
            assert_eq!(xag.num_ands(), 25 * w * rounds);

            let mut state = [0u64; 25];
            for (i, s) in state.iter_mut().enumerate() {
                *s = ((i as u64).wrapping_mul(0x9e37_79b9) >> 3) & ((1 << w) - 1);
            }
            let mut words = vec![0u64; 25 * w];
            for lane_idx in 0..25 {
                let (x, y) = (lane_idx % 5, lane_idx / 5);
                for z in 0..w {
                    words[w * (x + 5 * y) + z] = if (state[lane_idx] >> z) & 1 == 1 {
                        u64::MAX
                    } else {
                        0
                    };
                }
            }
            let out = xag.simulate(&words);
            keccak_f_software(w, &mut state);
            for lane_idx in 0..25 {
                let (x, y) = (lane_idx % 5, lane_idx / 5);
                let mut got = 0u64;
                for z in 0..w {
                    got |= (out[w * (x + 5 * y) + z] & 1) << z;
                }
                assert_eq!(got, state[lane_idx], "w={w} lane {lane_idx}");
            }
        }
    }

    #[test]
    fn full_keccak1600_has_the_expected_and_count() {
        let xag = keccak_f(64);
        assert_eq!(xag.num_inputs(), 1600);
        assert_eq!(xag.num_ands(), 1600 * 24);
    }

    #[test]
    fn rho_offsets_cover_24_lanes() {
        let off = rho_offsets(64);
        // (0,0) keeps offset 0; all other 24 lanes get assigned.
        assert_eq!(off[0][0], 0);
        // Spot-check two published offsets for w = 64.
        assert_eq!(off[1][0], 1);
        assert_eq!(off[0][2], 3);
    }

    #[test]
    fn smallest_instance_has_textbook_and_count() {
        // Keccak-f[25]: 12 rounds × 25 χ terms, one AND each.
        let xag = keccak_f(1);
        assert_eq!(xag.num_ands(), 300);
        assert!(xag.and_depth() >= 12, "one AND level per round");
    }
}
