//! The MPC / FHE benchmark suite (paper Table 2): block ciphers, hash
//! functions, and the arithmetic kernels published as best-known Bristol
//! circuits by the MPC community.

use xag_network::{Signal, Xag};

use crate::parse::ParseError;

use crate::arith::{
    add_ripple, input_word, less_equal_signed, less_equal_unsigned, less_than_signed,
    less_than_unsigned, multiply_array, output_word,
};
use crate::{aes, des, hash, keccak};

/// A Table-2 benchmark instance.
#[derive(Debug)]
pub struct MpcBenchmark {
    /// Row name as in the paper.
    pub name: &'static str,
    /// The generated circuit.
    pub xag: Xag,
    /// Rough cost class, used by the harness to decide how hard to
    /// optimize in quick mode.
    pub heavy: bool,
}

fn adder(bits: usize) -> Xag {
    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let (sum, carry) = add_ripple(&mut x, &a, &b, Signal::CONST0);
    output_word(&mut x, &sum);
    x.output(carry);
    x
}

fn mult_trunc(bits: usize) -> Xag {
    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let p = multiply_array(&mut x, &a, &b);
    // The published 32×32 multiplier keeps 64 output bits.
    output_word(&mut x, &p);
    x
}

fn comparator(bits: usize, signed: bool, or_equal: bool) -> Xag {
    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let out = match (signed, or_equal) {
        (false, false) => less_than_unsigned(&mut x, &a, &b),
        (false, true) => less_equal_unsigned(&mut x, &a, &b),
        (true, false) => less_than_signed(&mut x, &a, &b),
        (true, true) => less_equal_signed(&mut x, &a, &b),
    };
    x.output(out);
    x
}

/// Generates the full Table-2 suite (14 rows).
///
/// When `quick` is set, the block ciphers and hashes are still generated at
/// full fidelity — they *are* the benchmark — but callers typically limit
/// the number of optimization rounds on the `heavy` entries.
pub fn mpc_suite(include_heavy: bool) -> Vec<MpcBenchmark> {
    let mut out = Vec::new();
    let mut push = |name, xag, heavy| {
        out.push(MpcBenchmark { name, xag, heavy });
    };
    if include_heavy {
        push("AES (No Key Expansion)", aes::aes128(true), true);
        push("AES (Key Expansion)", aes::aes128(false), true);
        push("DES (No Key Expansion)", des::des(true), true);
        push("DES (Key Expansion)", des::des(false), true);
        push("MD5", hash::md5(), true);
        push("SHA-1", hash::sha1(), true);
        push("SHA-256", hash::sha256(), true);
        // Beyond the paper's table: the SHA-3 core, whose χ layer is
        // already quadratic (the MPC-friendly design point).
        push("Keccak-f[400]", keccak::keccak_f(16), true);
    }
    push("32-bit Adder", adder(32), false);
    push("64-bit Adder", adder(64), false);
    push("32x32-bit Multiplier", mult_trunc(32), true);
    push(
        "Comp. 32-bit Signed LTEQ",
        comparator(32, true, true),
        false,
    );
    push("Comp. 32-bit Signed LT", comparator(32, true, false), false);
    push(
        "Comp. 32-bit Unsigned LTEQ",
        comparator(32, false, true),
        false,
    );
    push(
        "Comp. 32-bit Unsigned LT",
        comparator(32, false, false),
        false,
    );
    out
}

/// Looks up one Table-2 benchmark by its row name.
///
/// Like [`crate::epfl::benchmark`], this is the Result-based entry point
/// for name-driven requests. The heavy rows (ciphers, hashes) are
/// included in the search, so looking one up generates it.
///
/// # Errors
///
/// Returns [`ParseError::UnknownBenchmark`] when no row is called `name`.
pub fn benchmark(name: &str) -> Result<MpcBenchmark, ParseError> {
    let light = mpc_suite(false).into_iter().find(|b| b.name == name);
    match light {
        Some(b) => Ok(b),
        // Only generate the expensive cipher/hash rows when the light
        // suite cannot satisfy the name.
        None => mpc_suite(true)
            .into_iter()
            .find(|b| b.name == name)
            .ok_or_else(|| ParseError::UnknownBenchmark(name.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_suite_shapes_match_table2() {
        let suite = mpc_suite(false);
        let by_name = |n: &str| {
            suite
                .iter()
                .find(|b| b.name == n)
                .expect("row listed in Table 2")
        };
        let a32 = by_name("32-bit Adder");
        assert_eq!(a32.xag.num_inputs(), 64);
        assert_eq!(a32.xag.num_outputs(), 33);
        let a64 = by_name("64-bit Adder");
        assert_eq!(a64.xag.num_inputs(), 128);
        assert_eq!(a64.xag.num_outputs(), 65);
        let m = by_name("32x32-bit Multiplier");
        assert_eq!(m.xag.num_inputs(), 64);
        assert_eq!(m.xag.num_outputs(), 64);
        for c in suite.iter().filter(|b| b.name.starts_with("Comp.")) {
            assert_eq!(c.xag.num_inputs(), 64);
            assert_eq!(c.xag.num_outputs(), 1);
        }
    }

    #[test]
    fn benchmark_lookup_finds_light_rows_and_rejects_unknown() {
        let a = benchmark("32-bit Adder").expect("light row");
        assert_eq!(a.xag.num_inputs(), 64);
        assert!(matches!(
            benchmark("ChaCha20"),
            Err(ParseError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn comparators_behave() {
        let lt = &benchmark("Comp. 32-bit Unsigned LT")
            .expect("comparator is a Table-2 row")
            .xag;
        // Drive with 64 input words: a = 5, b = 9.
        let mut words = vec![0u64; 64];
        for i in 0..32 {
            words[i] = if (5u64 >> i) & 1 == 1 { u64::MAX } else { 0 };
            words[32 + i] = if (9u64 >> i) & 1 == 1 { u64::MAX } else { 0 };
        }
        assert_eq!(lt.simulate(&words)[0] & 1, 1);
    }
}
