//! The EPFL-style combinational benchmark suite (paper Table 1).
//!
//! Arithmetic benchmarks are faithful implementations; the four control
//! benchmarks without public functional specifications are seeded random
//! control networks (see [`crate::control::random_control`] and DESIGN.md
//! §3). [`Scale::Full`] matches the paper's I/O sizes; [`Scale::Reduced`]
//! shrinks word widths so the whole Table-1 experiment runs in seconds,
//! preserving every structural property the optimization exercises.

use xag_network::{Signal, Xag};

use crate::parse::ParseError;

use crate::arith::{
    add_ripple, barrel_shift_left, divide_restoring, input_word, isqrt_restoring,
    log2_fixed_with_width, max_word, multiply_array, output_word, sine_poly, square,
};
use crate::control::{
    decoder, int_to_float, priority_encoder, random_control, round_robin_arbiter, voter,
};

/// Benchmark instance: a name (matching the paper's Table 1 rows) and the
/// generated network.
#[derive(Debug)]
pub struct Benchmark {
    /// Row name as in the paper.
    pub name: &'static str,
    /// The generated circuit.
    pub xag: Xag,
    /// Whether this row belongs to the arithmetic half of Table 1.
    pub arithmetic: bool,
}

/// Benchmark sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Paper-sized instances (some take minutes to optimize).
    Full,
    /// Scaled-down instances for quick experiments and CI.
    #[default]
    Reduced,
}

fn adder(bits: usize) -> Xag {
    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let (sum, carry) = add_ripple(&mut x, &a, &b, Signal::CONST0);
    output_word(&mut x, &sum);
    x.output(carry);
    x
}

fn barrel(bits: usize) -> Xag {
    let mut x = Xag::new();
    let data = input_word(&mut x, bits);
    let shift_bits = (usize::BITS - (bits - 1).leading_zeros()) as usize;
    let shift = input_word(&mut x, shift_bits);
    let out = barrel_shift_left(&mut x, &data, &shift);
    output_word(&mut x, &out);
    x
}

fn divisor(bits: usize) -> Xag {
    let mut x = Xag::new();
    let n = input_word(&mut x, bits);
    let d = input_word(&mut x, bits);
    let (q, r) = divide_restoring(&mut x, &n, &d);
    output_word(&mut x, &q);
    output_word(&mut x, &r);
    x
}

fn log2(bits: usize, frac: usize, mant: usize) -> Xag {
    let mut x = Xag::new();
    let v = input_word(&mut x, bits);
    let l = log2_fixed_with_width(&mut x, &v, frac, mant);
    output_word(&mut x, &l);
    x
}

fn max4(bits: usize) -> Xag {
    let mut x = Xag::new();
    let words: Vec<_> = (0..4).map(|_| input_word(&mut x, bits)).collect();
    let m01 = max_word(&mut x, &words[0], &words[1]);
    let m23 = max_word(&mut x, &words[2], &words[3]);
    let m = max_word(&mut x, &m01, &m23);
    output_word(&mut x, &m);
    // Two tie-breaking flags, as the original has a couple of extra outputs.
    let f0 = crate::arith::less_than_unsigned(&mut x, &words[0], &words[1]);
    let f1 = crate::arith::less_than_unsigned(&mut x, &words[2], &words[3]);
    x.output(f0);
    x.output(f1);
    x
}

fn multiplier(bits: usize) -> Xag {
    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let p = multiply_array(&mut x, &a, &b);
    output_word(&mut x, &p);
    x
}

fn sine(bits: usize) -> Xag {
    let mut x = Xag::new();
    let v = input_word(&mut x, bits);
    let s = sine_poly(&mut x, &v);
    output_word(&mut x, &s);
    x
}

fn sqrt(bits2: usize) -> Xag {
    let mut x = Xag::new();
    let v = input_word(&mut x, bits2);
    let r = isqrt_restoring(&mut x, &v);
    output_word(&mut x, &r);
    x
}

fn squarer(bits: usize) -> Xag {
    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let p = square(&mut x, &a);
    output_word(&mut x, &p);
    x
}

/// Generates the full Table-1 suite (9 arithmetic + 10 control rows).
pub fn epfl_suite(scale: Scale) -> Vec<Benchmark> {
    let full = scale == Scale::Full;
    let mut out = Vec::new();
    let mut arith = |name, xag| {
        out.push(Benchmark {
            name,
            xag,
            arithmetic: true,
        })
    };
    arith("adder", adder(if full { 128 } else { 32 }));
    arith("bar", barrel(if full { 128 } else { 32 }));
    arith("div", divisor(if full { 64 } else { 12 }));
    arith(
        "log2",
        if full {
            log2(32, 27, 16)
        } else {
            log2(12, 8, 8)
        },
    );
    arith("max", max4(if full { 128 } else { 24 }));
    arith("multiplier", multiplier(if full { 64 } else { 12 }));
    arith("sin", sine(if full { 24 } else { 10 }));
    arith("sqrt", sqrt(if full { 128 } else { 24 }));
    arith("square", squarer(if full { 64 } else { 12 }));

    let ctrl = |out: &mut Vec<Benchmark>, name, xag| {
        out.push(Benchmark {
            name,
            xag,
            arithmetic: false,
        })
    };
    ctrl(
        &mut out,
        "arbiter",
        round_robin_arbiter(if full { 128 } else { 24 }),
    );
    ctrl(&mut out, "ctrl", random_control(0xA10, 7, 26, 90));
    ctrl(
        &mut out,
        "cavlc",
        random_control(0xCA71C, 10, 11, if full { 550 } else { 160 }),
    );
    ctrl(&mut out, "dec", decoder(if full { 8 } else { 6 }));
    ctrl(
        &mut out,
        "i2c",
        random_control(0x12C, 147, 142, if full { 840 } else { 220 }),
    );
    ctrl(&mut out, "int2float", int_to_float(11, 3, 3));
    ctrl(
        &mut out,
        "mem_ctrl",
        random_control(0x3E3, 120, 128, if full { 7400 } else { 600 }),
    );
    ctrl(
        &mut out,
        "priority",
        priority_encoder(if full { 128 } else { 64 }),
    );
    ctrl(&mut out, "router", random_control(0x707, 60, 30, 95));
    ctrl(&mut out, "voter", voter(if full { 1001 } else { 101 }));
    out
}

/// Looks up one Table-1 benchmark by its row name.
///
/// This is the lookup the service layer and the CLI tools use for
/// `--bench <name>` style requests: an unknown name is a recoverable
/// [`ParseError::UnknownBenchmark`], never a panic in whatever thread
/// handled the request.
///
/// # Errors
///
/// Returns [`ParseError::UnknownBenchmark`] when no row is called `name`.
pub fn benchmark(name: &str, scale: Scale) -> Result<Benchmark, ParseError> {
    epfl_suite(scale)
        .into_iter()
        .find(|b| b.name == name)
        .ok_or_else(|| ParseError::UnknownBenchmark(name.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_suite_builds_and_is_nontrivial() {
        let suite = epfl_suite(Scale::Reduced);
        assert_eq!(suite.len(), 19);
        for b in &suite {
            assert!(b.xag.num_inputs() > 0, "{}", b.name);
            assert!(b.xag.num_outputs() > 0, "{}", b.name);
            assert!(b.xag.num_gates() > 0, "{}", b.name);
        }
        let arith_count = suite.iter().filter(|b| b.arithmetic).count();
        assert_eq!(arith_count, 9);
    }

    #[test]
    fn adder_has_textbook_and_cost() {
        let adder = benchmark("adder", Scale::Reduced).expect("adder is a Table-1 row");
        // 3 ANDs per bit with the textbook full adder, minus two folded
        // away at bit 0 (constant carry-in).
        assert_eq!(adder.xag.num_ands(), 3 * 32 - 2);
    }

    #[test]
    fn decoder_has_no_xors() {
        let dec = benchmark("dec", Scale::Reduced).expect("dec is a Table-1 row");
        assert_eq!(dec.xag.num_xors(), 0);
    }

    #[test]
    fn unknown_benchmark_is_a_recoverable_error() {
        let err = benchmark("no-such-row", Scale::Reduced).unwrap_err();
        assert!(matches!(err, ParseError::UnknownBenchmark(_)));
        assert!(err.to_string().contains("no-such-row"));
    }
}
