//! Uniform circuit parsing for uploaded netlists.
//!
//! The benchmark generators in this crate *build* circuits; the service
//! layer (`mc-serve`) additionally *receives* them as text. This module is
//! the single entry point for that path: [`CircuitFormat`] names the two
//! supported interchange formats, [`CircuitFormat::sniff`] detects which
//! one a blob of text is in, and [`parse_circuit`] turns the text into an
//! [`Xag`] behind one [`ParseError`] type — so a malformed upload becomes
//! a `Result::Err` the caller can turn into a protocol error, never a
//! panic inside a worker thread.

use xag_network::{read_bristol, read_verilog, ParseBristolError, ParseVerilogError, Xag};

/// The circuit interchange formats the toolkit reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CircuitFormat {
    /// Bristol-fashion (`xag_network::read_bristol` /
    /// `xag_network::write_bristol`) — the MPC community's format.
    #[default]
    Bristol,
    /// The structural Verilog subset (`xag_network::read_verilog` /
    /// `xag_network::write_verilog`).
    Verilog,
}

impl CircuitFormat {
    /// The stable lowercase name used on the wire and on CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            CircuitFormat::Bristol => "bristol",
            CircuitFormat::Verilog => "verilog",
        }
    }

    /// Parses a format name (as produced by [`CircuitFormat::name`]).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "bristol" => Some(CircuitFormat::Bristol),
            "verilog" => Some(CircuitFormat::Verilog),
            _ => None,
        }
    }

    /// Guesses the format of a circuit text: a Verilog netlist starts with
    /// a `module` header (possibly after comments), a Bristol file with
    /// two integers (gate and wire counts).
    pub fn sniff(text: &str) -> Option<Self> {
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with("//") {
                continue;
            }
            if line.starts_with("module") {
                return Some(CircuitFormat::Verilog);
            }
            let mut it = line.split_whitespace();
            let two_ints = it.next().is_some_and(|t| t.parse::<usize>().is_ok())
                && it.next().is_some_and(|t| t.parse::<usize>().is_ok());
            return two_ints.then_some(CircuitFormat::Bristol);
        }
        None
    }
}

impl core::fmt::Display for CircuitFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Any failure turning external text into a circuit: a syntactically
/// broken netlist, text in no recognizable format, or a benchmark-by-name
/// lookup ([`crate::epfl::benchmark`], [`crate::mpc::benchmark`]) that
/// matches nothing.
#[derive(Debug)]
pub enum ParseError {
    /// The text claimed (or sniffed) as Bristol failed to parse.
    Bristol(ParseBristolError),
    /// The text claimed (or sniffed) as Verilog failed to parse.
    Verilog(ParseVerilogError),
    /// The text matches neither format's shape.
    UnknownFormat,
    /// No benchmark with the given name exists.
    UnknownBenchmark(String),
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseError::Bristol(e) => write!(f, "{e}"),
            ParseError::Verilog(e) => write!(f, "{e}"),
            ParseError::UnknownFormat => {
                write!(
                    f,
                    "unrecognized circuit format (expected bristol or verilog)"
                )
            }
            ParseError::UnknownBenchmark(name) => write!(f, "unknown benchmark: {name}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Bristol(e) => Some(e),
            ParseError::Verilog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseBristolError> for ParseError {
    fn from(e: ParseBristolError) -> Self {
        ParseError::Bristol(e)
    }
}

impl From<ParseVerilogError> for ParseError {
    fn from(e: ParseVerilogError) -> Self {
        ParseError::Verilog(e)
    }
}

/// Parses a circuit text in the given format, sniffing the format when
/// `format` is `None`.
///
/// # Errors
///
/// Returns [`ParseError::UnknownFormat`] if no format was given and none
/// could be sniffed, and the wrapped parser error if the text is
/// malformed.
pub fn parse_circuit(text: &str, format: Option<CircuitFormat>) -> Result<Xag, ParseError> {
    let format = match format.or_else(|| CircuitFormat::sniff(text)) {
        Some(f) => f,
        None => return Err(ParseError::UnknownFormat),
    };
    match format {
        CircuitFormat::Bristol => Ok(read_bristol(text.as_bytes())?),
        CircuitFormat::Verilog => Ok(read_verilog(text.as_bytes())?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xag_network::{write_bristol, write_verilog};

    fn sample() -> Xag {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let g = x.and(a, !b);
        x.output(g);
        x
    }

    #[test]
    fn sniffs_both_formats() {
        let x = sample();
        let mut b = Vec::new();
        write_bristol(&x, &mut b).unwrap();
        let b = String::from_utf8(b).unwrap();
        assert_eq!(CircuitFormat::sniff(&b), Some(CircuitFormat::Bristol));
        let mut v = Vec::new();
        write_verilog(&x, "m", &mut v).unwrap();
        let v = String::from_utf8(v).unwrap();
        assert_eq!(CircuitFormat::sniff(&v), Some(CircuitFormat::Verilog));
        assert_eq!(CircuitFormat::sniff("garbage in\n"), None);
        assert_eq!(
            CircuitFormat::sniff("// comment\nmodule x ();"),
            Some(CircuitFormat::Verilog)
        );
    }

    #[test]
    fn parses_with_and_without_explicit_format() {
        let x = sample();
        let mut b = Vec::new();
        write_bristol(&x, &mut b).unwrap();
        let text = String::from_utf8(b).unwrap();
        let sniffed = parse_circuit(&text, None).unwrap();
        let explicit = parse_circuit(&text, Some(CircuitFormat::Bristol)).unwrap();
        assert_eq!(sniffed.num_inputs(), 2);
        assert_eq!(explicit.num_outputs(), 1);
    }

    #[test]
    fn malformed_text_is_an_error_not_a_panic() {
        assert!(matches!(
            parse_circuit("not a circuit", None),
            Err(ParseError::UnknownFormat)
        ));
        // Sniffs as Bristol, then fails structurally.
        assert!(matches!(
            parse_circuit("3 4\n1 2\n1 1\n\n2 1 0 1 99 AND\n", None),
            Err(ParseError::Bristol(_))
        ));
        // Sniffs as Verilog, then fails structurally.
        assert!(matches!(
            parse_circuit("module m (a);\n  input a;\n", None),
            Err(ParseError::Verilog(_))
        ));
    }

    #[test]
    fn format_names_round_trip() {
        for f in [CircuitFormat::Bristol, CircuitFormat::Verilog] {
            assert_eq!(CircuitFormat::from_name(f.name()), Some(f));
        }
        assert_eq!(CircuitFormat::from_name("blif"), None);
    }
}
