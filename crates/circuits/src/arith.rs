//! Word-level arithmetic circuit generators.
//!
//! All generators deliberately use *textbook* AND/OR/XOR structures (e.g.
//! the full-adder carry `(a·b) ∨ ((a⊕b)·cin)` with three AND gates per bit
//! after De Morgan), not the MC-optimal forms: the generated circuits are
//! the *inputs* of the optimization experiments, mirroring the paper's
//! starting points (whose 32-bit adder also spends ≈ 4 AND/bit before
//! optimization).

use xag_network::{Signal, Xag};

/// A little-endian word of signals (`bits[0]` is the least significant).
pub type Word = Vec<Signal>;

/// Creates `n` fresh primary inputs as a word.
pub fn input_word(xag: &mut Xag, n: usize) -> Word {
    (0..n).map(|_| xag.input()).collect()
}

/// Marks every bit of a word as a primary output.
pub fn output_word(xag: &mut Xag, word: &Word) {
    for &b in word {
        xag.output(b);
    }
}

/// One textbook full adder: `(sum, cout)` with three AND gates.
pub fn full_adder(xag: &mut Xag, a: Signal, b: Signal, c: Signal) -> (Signal, Signal) {
    let axb = xag.xor(a, b);
    let sum = xag.xor(axb, c);
    let ab = xag.and(a, b);
    let t = xag.and(axb, c);
    let cout = xag.or(ab, t);
    (sum, cout)
}

/// Ripple-carry addition of two equal-width words; returns `(sum, carry)`.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn add_ripple(xag: &mut Xag, a: &Word, b: &Word, mut carry: Signal) -> (Word, Signal) {
    assert_eq!(a.len(), b.len(), "word widths differ");
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_adder(xag, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Modular addition (the carry out is dropped), as used by hash functions.
pub fn add_mod(xag: &mut Xag, a: &Word, b: &Word) -> Word {
    add_ripple(xag, a, b, Signal::CONST0).0
}

/// Two's-complement subtraction `a - b`; returns `(difference, borrow)`
/// where `borrow` is high when `a < b` (unsigned).
pub fn sub_ripple(xag: &mut Xag, a: &Word, b: &Word) -> (Word, Signal) {
    let nb: Word = b.iter().map(|&s| !s).collect();
    let (diff, carry) = add_ripple(xag, a, &nb, Signal::CONST1);
    (diff, !carry)
}

/// Unsigned comparison `a < b`.
pub fn less_than_unsigned(xag: &mut Xag, a: &Word, b: &Word) -> Signal {
    sub_ripple(xag, a, b).1
}

/// Unsigned comparison `a ≤ b`.
pub fn less_equal_unsigned(xag: &mut Xag, a: &Word, b: &Word) -> Signal {
    !less_than_unsigned(xag, b, a)
}

/// Signed (two's-complement) comparison `a < b`.
pub fn less_than_signed(xag: &mut Xag, a: &Word, b: &Word) -> Signal {
    assert!(!a.is_empty());
    // Flip the sign bits and compare unsigned.
    let mut a2 = a.clone();
    let mut b2 = b.clone();
    let top = a.len() - 1;
    a2[top] = !a2[top];
    b2[top] = !b2[top];
    less_than_unsigned(xag, &a2, &b2)
}

/// Signed comparison `a ≤ b`.
pub fn less_equal_signed(xag: &mut Xag, a: &Word, b: &Word) -> Signal {
    !less_than_signed(xag, b, a)
}

/// Textbook two-input multiplexer `sel ? t : e` with three AND gates
/// (`(sel·t) ∨ (!sel·e)`) — the unoptimized form the barrel shifter and
/// `max` benchmarks are built from.
pub fn mux_textbook(xag: &mut Xag, sel: Signal, t: Signal, e: Signal) -> Signal {
    let st = xag.and(sel, t);
    let se = xag.and(!sel, e);
    xag.or(st, se)
}

/// Word-level multiplexer.
pub fn mux_word(xag: &mut Xag, sel: Signal, t: &Word, e: &Word) -> Word {
    assert_eq!(t.len(), e.len());
    t.iter()
        .zip(e)
        .map(|(&x, &y)| mux_textbook(xag, sel, x, y))
        .collect()
}

/// Logical barrel shifter (left shift by `shift`, zero fill): `log₂ w`
/// mux layers.
///
/// # Panics
///
/// Panics if `1 << shift.len()` is smaller than `data.len()`'s required
/// shift range (shift is simply truncated otherwise it panics on overflow).
pub fn barrel_shift_left(xag: &mut Xag, data: &Word, shift: &Word) -> Word {
    let mut cur = data.clone();
    for (k, &s) in shift.iter().enumerate() {
        let amount = 1usize << k;
        let shifted: Word = (0..cur.len())
            .map(|i| {
                if i >= amount {
                    cur[i - amount]
                } else {
                    Signal::CONST0
                }
            })
            .collect();
        cur = mux_word(xag, s, &shifted, &cur);
    }
    cur
}

/// Unsigned maximum of two words (comparator plus mux layer).
pub fn max_word(xag: &mut Xag, a: &Word, b: &Word) -> Word {
    let a_lt_b = less_than_unsigned(xag, a, b);
    mux_word(xag, a_lt_b, b, a)
}

/// Unsigned array multiplier; returns the full `2n`-bit product.
pub fn multiply_array(xag: &mut Xag, a: &Word, b: &Word) -> Word {
    let n = a.len();
    let m = b.len();
    let mut acc: Word = vec![Signal::CONST0; n + m];
    for (j, &bj) in b.iter().enumerate() {
        // Partial product row j.
        let row: Word = a.iter().map(|&ai| xag.and(ai, bj)).collect();
        let mut carry = Signal::CONST0;
        for (i, &p) in row.iter().enumerate() {
            let (s, c) = full_adder(xag, acc[i + j], p, carry);
            acc[i + j] = s;
            carry = c;
        }
        // Propagate the final carry.
        let mut k = j + n;
        while k < n + m {
            let (s, c) = full_adder(xag, acc[k], carry, Signal::CONST0);
            acc[k] = s;
            carry = c;
            k += 1;
        }
    }
    acc
}

/// Squarer (array multiplier applied to one operand).
pub fn square(xag: &mut Xag, a: &Word) -> Word {
    multiply_array(xag, a, &a.clone())
}

/// Restoring unsigned division; returns `(quotient, remainder)`.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn divide_restoring(xag: &mut Xag, num: &Word, den: &Word) -> (Word, Word) {
    assert_eq!(num.len(), den.len());
    let n = num.len();
    // The running remainder needs one extra bit: after the shift it can be
    // up to 2·den − 1.
    let mut rem: Word = vec![Signal::CONST0; n + 1];
    let mut den_ext = den.clone();
    den_ext.push(Signal::CONST0);
    let mut quo: Word = vec![Signal::CONST0; n];
    for i in (0..n).rev() {
        // rem = (rem << 1) | num[i]
        rem.rotate_right(1);
        rem[0] = num[i];
        let (diff, borrow) = sub_ripple(xag, &rem, &den_ext);
        let fits = !borrow;
        rem = mux_word(xag, fits, &diff, &rem);
        quo[i] = fits;
    }
    rem.truncate(n);
    (quo, rem)
}

/// Restoring integer square root of a `2n`-bit word; returns the `n`-bit
/// root.
pub fn isqrt_restoring(xag: &mut Xag, x: &Word) -> Word {
    let n2 = x.len();
    let n = n2 / 2;
    let mut root: Word = vec![Signal::CONST0; n];
    let mut rem: Word = vec![Signal::CONST0; n2 + 2];
    for i in (0..n).rev() {
        // Bring down two bits of x.
        rem.rotate_right(2);
        rem[1] = x[2 * i + 1];
        rem[0] = x[2 * i];
        // Trial subtrahend: (root << 2) | 01, aligned.
        let mut trial: Word = vec![Signal::CONST0; n2 + 2];
        trial[0] = Signal::CONST1;
        for (k, &r) in root.iter().enumerate() {
            trial[k + 2] = r;
        }
        let (diff, borrow) = sub_ripple(xag, &rem, &trial);
        let fits = !borrow;
        rem = mux_word(xag, fits, &diff, &rem);
        // root = (root << 1) | fits
        root.rotate_right(1);
        root[0] = fits;
    }
    root
}

/// Fixed-point binary logarithm: integer part by priority encoding, `frac`
/// fractional bits by repeated squaring of the normalized mantissa
/// (truncated to `mant_width` bits per step). This is the stand-in for the
/// EPFL `log2` benchmark (multiplier-dominated, as the original).
pub fn log2_fixed_with_width(xag: &mut Xag, x: &Word, frac: usize, mant_width: usize) -> Word {
    let n = x.len();
    let log_bits = (usize::BITS - (n - 1).leading_zeros()) as usize;
    // Priority encode the leading one.
    let mut seen = Signal::CONST0;
    let mut msb_onehot: Word = vec![Signal::CONST0; n];
    for i in (0..n).rev() {
        let here = xag.and(x[i], !seen);
        msb_onehot[i] = here;
        seen = xag.or(seen, x[i]);
    }
    // Integer part: binary encode of the one-hot position.
    let mut int_part: Word = vec![Signal::CONST0; log_bits];
    for (i, &h) in msb_onehot.iter().enumerate() {
        for (k, ip) in int_part.iter_mut().enumerate() {
            if (i >> k) & 1 == 1 {
                *ip = xag.or(*ip, h);
            }
        }
    }
    // Normalize: mantissa = x << (n-1-msb), so the leading one lands at
    // position n-1. Build with mux layers driven by the one-hot.
    let mut mant: Word = vec![Signal::CONST0; n];
    for (i, &h) in msb_onehot.iter().enumerate() {
        let shift = n - 1 - i;
        for k in 0..n {
            if k >= shift {
                let contrib = xag.and(h, x[k - shift]);
                mant[k] = xag.or(mant[k], contrib);
            }
        }
    }
    // Fraction bits: square the mantissa; if the product overflows past
    // 2.0 the next fraction bit is 1 and we keep the upper half.
    let mut out = int_part;
    let mut m = mant;
    if m.len() > mant_width {
        // Keep the top `mant_width` bits (the leading one stays at the top).
        m = m[m.len() - mant_width..].to_vec();
    }
    for _ in 0..frac {
        let sq = multiply_array(xag, &m, &m.clone());
        // m is Q1.(n-1); m² is Q2.(2n-2). Bit 2n-1 is the ≥2 flag.
        let ge2 = sq[2 * m.len() - 1];
        let hi: Word = (0..m.len()).map(|k| sq[k + m.len()]).collect();
        let lo: Word = (0..m.len()).map(|k| sq[k + m.len() - 1]).collect();
        m = mux_word(xag, ge2, &hi, &lo);
        out.push(ge2);
    }
    out
}

/// [`log2_fixed_with_width`] with an untruncated mantissa.
pub fn log2_fixed(xag: &mut Xag, x: &Word, frac: usize) -> Word {
    let width = x.len();
    log2_fixed_with_width(xag, x, frac, width)
}

/// Odd polynomial approximation of sine on fixed-point input — the
/// stand-in for the EPFL `sine` benchmark (multiplier chains, like the
/// original).
pub fn sine_poly(xag: &mut Xag, x: &Word) -> Word {
    let n = x.len();
    // s1 = x², truncated back to n bits (Q format handwave: the benchmark's
    // value is its multiplier/adder structure, not numerical accuracy).
    let x2full = square(xag, x);
    let x2: Word = (0..n).map(|k| x2full[k + n / 2]).collect();
    // x³ = x·x²
    let x3full = multiply_array(xag, x, &x2);
    let x3: Word = (0..n).map(|k| x3full[k + n / 2]).collect();
    // x⁵ = x³·x²
    let x5full = multiply_array(xag, &x3, &x2);
    let x5: Word = (0..n).map(|k| x5full[k + n / 2]).collect();
    // sin(x) ≈ x − x³/6 + x⁵/120: divisions by constants via shifts
    // (1/6 ≈ 1/8 + 1/32, 1/120 ≈ 1/128).
    let shift_right = |w: &Word, k: usize| -> Word {
        (0..w.len())
            .map(|i| {
                if i + k < w.len() {
                    w[i + k]
                } else {
                    Signal::CONST0
                }
            })
            .collect()
    };
    let t3a = shift_right(&x3, 3);
    let t3b = shift_right(&x3, 5);
    let t3 = add_mod(xag, &t3a, &t3b);
    let t5 = shift_right(&x5, 7);
    let (acc, _) = sub_ripple(xag, x, &t3);
    add_mod(xag, &acc, &t5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_word(values: &[bool]) -> u64 {
        values
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
    }

    fn run(xag: &Xag, inputs: u64) -> Vec<bool> {
        xag.evaluate(inputs)
    }

    #[test]
    fn adder_matches_arithmetic() {
        let mut x = Xag::new();
        let a = input_word(&mut x, 5);
        let b = input_word(&mut x, 5);
        let (sum, carry) = add_ripple(&mut x, &a, &b, Signal::CONST0);
        output_word(&mut x, &sum);
        x.output(carry);
        for av in [0u64, 1, 7, 19, 31] {
            for bv in [0u64, 2, 13, 30, 31] {
                let out = run(&x, av | (bv << 5));
                let got = eval_word(&out);
                assert_eq!(got, av + bv, "{av}+{bv}");
            }
        }
        // Textbook cost: 3 ANDs per bit, minus two folded at bit 0
        // (carry-in is constant zero).
        assert_eq!(x.num_ands(), 13);
    }

    #[test]
    fn subtract_and_compare() {
        let mut x = Xag::new();
        let a = input_word(&mut x, 4);
        let b = input_word(&mut x, 4);
        let lt = less_than_unsigned(&mut x, &a, &b);
        let le = less_equal_unsigned(&mut x, &a, &b);
        let slt = less_than_signed(&mut x, &a, &b);
        x.output(lt);
        x.output(le);
        x.output(slt);
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let out = run(&x, av | (bv << 4));
                assert_eq!(out[0], av < bv, "{av} < {bv}");
                assert_eq!(out[1], av <= bv, "{av} <= {bv}");
                let sa = ((av as i64) << 60) >> 60;
                let sb = ((bv as i64) << 60) >> 60;
                assert_eq!(out[2], sa < sb, "signed {sa} < {sb}");
            }
        }
    }

    #[test]
    fn multiplier_matches_arithmetic() {
        let mut x = Xag::new();
        let a = input_word(&mut x, 4);
        let b = input_word(&mut x, 4);
        let p = multiply_array(&mut x, &a, &b);
        output_word(&mut x, &p);
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let out = run(&x, av | (bv << 4));
                assert_eq!(eval_word(&out), av * bv, "{av}*{bv}");
            }
        }
    }

    #[test]
    fn divider_matches_arithmetic() {
        let mut x = Xag::new();
        let n = input_word(&mut x, 4);
        let d = input_word(&mut x, 4);
        let (q, r) = divide_restoring(&mut x, &n, &d);
        output_word(&mut x, &q);
        output_word(&mut x, &r);
        for nv in 0..16u64 {
            for dv in 1..16u64 {
                let out = run(&x, nv | (dv << 4));
                let qv = eval_word(&out[..4]);
                let rv = eval_word(&out[4..]);
                assert_eq!(qv, nv / dv, "{nv}/{dv}");
                assert_eq!(rv, nv % dv, "{nv}%{dv}");
            }
        }
    }

    #[test]
    fn isqrt_matches_arithmetic() {
        let mut x = Xag::new();
        let v = input_word(&mut x, 8);
        let r = isqrt_restoring(&mut x, &v);
        output_word(&mut x, &r);
        for val in 0..256u64 {
            let out = run(&x, val);
            let got = eval_word(&out);
            let want = (val as f64).sqrt().floor() as u64;
            assert_eq!(got, want, "isqrt({val})");
        }
    }

    #[test]
    fn barrel_shifter_matches() {
        let mut x = Xag::new();
        let data = input_word(&mut x, 8);
        let shift = input_word(&mut x, 3);
        let out = barrel_shift_left(&mut x, &data, &shift);
        output_word(&mut x, &out);
        for dv in [0x01u64, 0x81, 0xff, 0x5a] {
            for sv in 0..8u64 {
                let o = run(&x, dv | (sv << 8));
                assert_eq!(eval_word(&o), (dv << sv) & 0xff, "{dv} << {sv}");
            }
        }
    }

    #[test]
    fn max_matches() {
        let mut x = Xag::new();
        let a = input_word(&mut x, 4);
        let b = input_word(&mut x, 4);
        let m = max_word(&mut x, &a, &b);
        output_word(&mut x, &m);
        for av in 0..16u64 {
            for bv in 0..16u64 {
                let out = run(&x, av | (bv << 4));
                assert_eq!(eval_word(&out), av.max(bv));
            }
        }
    }

    #[test]
    fn log2_integer_part() {
        let mut x = Xag::new();
        let v = input_word(&mut x, 8);
        let l = log2_fixed(&mut x, &v, 2);
        output_word(&mut x, &l);
        for val in 1..256u64 {
            let out = run(&x, val);
            let int_part = eval_word(&out[..3]);
            assert_eq!(
                int_part,
                63 - val.leading_zeros() as u64,
                "log2({val}) int part"
            );
        }
    }

    #[test]
    fn sine_is_monotone_on_small_inputs() {
        // The polynomial approximation should at least track x for small x
        // (x³ corrections are tiny there) and produce a well-formed circuit.
        let mut x = Xag::new();
        let v = input_word(&mut x, 8);
        let s = sine_poly(&mut x, &v);
        output_word(&mut x, &s);
        assert!(x.num_ands() > 100, "multiplier-dominated benchmark");
        let small = run(&x, 4);
        let larger = run(&x, 8);
        assert!(eval_word(&larger) >= eval_word(&small));
    }
}
