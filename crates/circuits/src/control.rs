//! Random-control circuit generators (the second half of the EPFL suite).
//!
//! The arbiter, decoder, priority encoder, voter and int-to-float converter
//! are faithful implementations. The four EPFL benchmarks without a public
//! functional specification (`cavlc`, `i2c`, `mem_ctrl`, `router`) are
//! replaced by seeded pseudo-random AND/OR-dominated control networks of
//! comparable size and role; see DESIGN.md §3 for the substitution
//! rationale.

use mc_rng::Rng;
use xag_network::{Signal, Xag};

use crate::arith::{add_ripple, input_word, mux_textbook, output_word, Word};

/// Round-robin-style arbiter: `n` request lines plus a one-hot-ish `n`-bit
/// priority mask; produces `n` grant lines and a "granted" flag. Two
/// priority sweeps (masked and unmasked) joined by a fallback, all in
/// AND/OR logic.
pub fn round_robin_arbiter(n: usize) -> Xag {
    let mut x = Xag::new();
    let req = input_word(&mut x, n);
    let mask = input_word(&mut x, n);

    let sweep = |x: &mut Xag, reqs: &Word| -> (Word, Signal) {
        let mut taken = Signal::CONST0;
        let mut grants = Vec::with_capacity(reqs.len());
        for &r in reqs {
            let g = x.and(r, !taken);
            grants.push(g);
            taken = x.or(taken, r);
        }
        (grants, taken)
    };

    // Masked requests first (requests at or above the priority point).
    let masked: Word = req.iter().zip(&mask).map(|(&r, &m)| x.and(r, m)).collect();
    let (g1, any1) = sweep(&mut x, &masked);
    let (g2, any2) = sweep(&mut x, &req);
    let grants: Word = g1
        .iter()
        .zip(&g2)
        .map(|(&a, &b)| {
            let fallback = x.and(b, !any1);
            x.or(a, fallback)
        })
        .collect();
    output_word(&mut x, &grants);
    let any = x.or(any1, any2);
    x.output(any);
    x
}

/// Priority encoder: `n` inputs to `⌈log₂ n⌉` outputs plus a valid flag.
pub fn priority_encoder(n: usize) -> Xag {
    let mut x = Xag::new();
    let inp = input_word(&mut x, n);
    let bits = (usize::BITS - (n - 1).leading_zeros()) as usize;
    let mut seen = Signal::CONST0;
    let mut code: Word = vec![Signal::CONST0; bits];
    // Highest index wins.
    for i in (0..n).rev() {
        let here = x.and(inp[i], !seen);
        for (k, c) in code.iter_mut().enumerate() {
            if (i >> k) & 1 == 1 {
                *c = x.or(*c, here);
            }
        }
        seen = x.or(seen, inp[i]);
    }
    output_word(&mut x, &code);
    x.output(seen);
    x
}

/// Full decoder: `n` inputs to `2^n` one-hot outputs (an AND tree per
/// output — XOR-free, like the EPFL decoder that the paper cannot improve).
pub fn decoder(n: usize) -> Xag {
    let mut x = Xag::new();
    let inp = input_word(&mut x, n);
    // Build recursively to share AND subtrees between outputs. Splitting on
    // the most significant input first makes the last-processed input the
    // least significant index bit, so output k fires exactly on input k.
    let mut layer: Vec<Signal> = vec![Signal::CONST1];
    for &i in inp.iter().rev() {
        let mut next = Vec::with_capacity(layer.len() * 2);
        for &s in &layer {
            next.push(x.and(s, !i));
            next.push(x.and(s, i));
        }
        layer = next;
    }
    for &s in &layer {
        x.output(s);
    }
    x
}

/// Majority voter over `n` (odd) inputs: a population-count adder tree and
/// a threshold comparison.
pub fn voter(n: usize) -> Xag {
    assert!(n % 2 == 1, "voter needs an odd input count");
    let mut x = Xag::new();
    let inp = input_word(&mut x, n);
    // Adder tree over 1-bit counts.
    let mut counts: Vec<Word> = inp.iter().map(|&s| vec![s]).collect();
    while counts.len() > 1 {
        let mut next = Vec::with_capacity(counts.len() / 2 + 1);
        let mut idx = 0;
        while idx + 1 < counts.len() {
            let a = counts[idx].clone();
            let b = counts[idx + 1].clone();
            let w = a.len().max(b.len());
            let pad = |mut v: Word| {
                while v.len() < w {
                    v.push(Signal::CONST0);
                }
                v
            };
            let (mut sum, carry) = add_ripple(&mut x, &pad(a), &pad(b), Signal::CONST0);
            sum.push(carry);
            next.push(sum);
            idx += 2;
        }
        if idx < counts.len() {
            next.push(counts[idx].clone());
        }
        counts = next;
    }
    let total = counts.pop().expect("nonempty");
    // Majority iff total > n/2, i.e. total ≥ (n+1)/2.
    let threshold = (n as u64).div_ceil(2);
    let thr_word: Word = (0..total.len())
        .map(|k| {
            if (threshold >> k) & 1 == 1 {
                Signal::CONST1
            } else {
                Signal::CONST0
            }
        })
        .collect();
    let lt = crate::arith::less_than_unsigned(&mut x, &total, &thr_word);
    x.output(!lt);
    x
}

/// Integer-to-float converter: `n`-bit unsigned integer to a small float
/// with `e` exponent and `m` mantissa bits (leading-one normalization).
pub fn int_to_float(n: usize, e: usize, m: usize) -> Xag {
    let mut x = Xag::new();
    let inp = input_word(&mut x, n);
    // Find the leading one.
    let mut seen = Signal::CONST0;
    let mut onehot: Word = vec![Signal::CONST0; n];
    for i in (0..n).rev() {
        onehot[i] = x.and(inp[i], !seen);
        seen = x.or(seen, inp[i]);
    }
    // Exponent = position of leading one (0 when input is zero).
    let mut exp: Word = vec![Signal::CONST0; e];
    for (i, &h) in onehot.iter().enumerate() {
        for (k, ex) in exp.iter_mut().enumerate() {
            if (i >> k) & 1 == 1 {
                *ex = x.or(*ex, h);
            }
        }
    }
    // Mantissa: the m bits below the leading one (normalized shift).
    let mut mant: Word = vec![Signal::CONST0; m];
    for (i, &h) in onehot.iter().enumerate() {
        for (k, mb) in mant.iter_mut().enumerate().take(m) {
            // Bit i-1-k of the input, when the leading one is at i.
            if i > k {
                let contrib = x.and(h, inp[i - 1 - k]);
                *mb = x.or(*mb, contrib);
            }
        }
    }
    output_word(&mut x, &exp);
    output_word(&mut x, &mant);
    x.output(seen); // non-zero flag
    x
}

/// Seeded pseudo-random control network: layered AND/OR-dominated logic
/// with occasional XOR and MUX cells, standing in for EPFL control
/// benchmarks without public netlists (`cavlc`, `i2c`, `mem_ctrl`,
/// `router`, `alu control`).
pub fn random_control(seed: u64, inputs: usize, outputs: usize, gates: usize) -> Xag {
    let mut rng = Rng::seed_from_u64(seed);
    let mut x = Xag::new();
    let mut pool: Vec<Signal> = (0..inputs).map(|_| x.input()).collect();
    // `capacity()` counts allocated nodes (constant + inputs + gates) in
    // O(1); using `num_gates()` here would make generation quadratic.
    while x.capacity() - 1 - inputs < gates {
        let pick = |rng: &mut Rng, pool: &[Signal]| {
            let s = pool[rng.gen_range(0..pool.len())];
            if rng.gen_bool(0.3) {
                !s
            } else {
                s
            }
        };
        let a = pick(&mut rng, &pool);
        let b = pick(&mut rng, &pool);
        let s = match rng.gen_range(0..10) {
            0..=4 => x.and(a, b),
            5..=7 => x.or(a, b),
            8 => x.xor(a, b),
            _ => {
                let c = pick(&mut rng, &pool);
                mux_textbook(&mut x, a, b, c)
            }
        };
        pool.push(s);
    }
    // Outputs: the most recently created signals (deep logic).
    for i in 0..outputs {
        let s = pool[pool.len() - 1 - (i % pool.len().min(gates.max(1)))];
        x.output(s);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_is_one_hot() {
        let d = decoder(4);
        for v in 0..16u64 {
            let out = d.evaluate(v);
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i as u64 == v, "decoder({v}) bit {i}");
            }
        }
        // XOR-free AND network (the paper's decoder row has 0 XORs).
        assert_eq!(d.num_xors(), 0);
    }

    #[test]
    fn priority_encoder_picks_highest() {
        let p = priority_encoder(8);
        for v in 1..256u64 {
            let out = p.evaluate(v);
            let want = 63 - v.leading_zeros() as u64;
            let got = out[..3]
                .iter()
                .enumerate()
                .fold(0u64, |a, (i, &b)| a | ((b as u64) << i));
            assert_eq!(got, want, "encode({v:#b})");
            assert!(out[3]);
        }
        assert!(!p.evaluate(0)[3]);
    }

    #[test]
    fn voter_matches_majority() {
        let v = voter(9);
        for pattern in [
            0u64,
            0b1,
            0b1111,
            0b11111,
            0b101010101,
            0b111111111,
            0b110110110,
        ] {
            let out = v.evaluate(pattern);
            assert_eq!(out[0], pattern.count_ones() >= 5, "voter({pattern:#b})");
        }
    }

    #[test]
    fn arbiter_grants_at_most_one() {
        let a = round_robin_arbiter(6);
        for req in 0..64u64 {
            for mask in [0u64, 0b000111, 0b111000, 0b010101] {
                let out = a.evaluate(req | (mask << 6));
                let grants = out[..6].iter().filter(|&&g| g).count();
                assert!(grants <= 1, "req={req:#b} mask={mask:#b}");
                assert_eq!(grants == 1, req != 0, "grant iff any request");
                if let Some(g) = out[..6].iter().position(|&g| g) {
                    assert!((req >> g) & 1 == 1, "granted a non-requester");
                }
            }
        }
    }

    #[test]
    fn int_to_float_normalizes() {
        let f = int_to_float(11, 4, 4);
        for v in [1u64, 2, 3, 37, 1024, 2047] {
            let out = f.evaluate(v);
            let exp = out[..4]
                .iter()
                .enumerate()
                .fold(0u64, |a, (i, &b)| a | ((b as u64) << i));
            assert_eq!(exp, 63 - v.leading_zeros() as u64, "exp({v})");
            assert!(out[8], "nonzero flag");
        }
    }

    #[test]
    fn random_control_is_deterministic() {
        let a = random_control(7, 20, 10, 150);
        let b = random_control(7, 20, 10, 150);
        assert_eq!(a.num_ands(), b.num_ands());
        assert_eq!(a.num_xors(), b.num_xors());
        // 150 gates were created; a substantial fraction must stay live
        // behind the outputs.
        assert!(a.capacity() >= 150);
        assert!(a.num_gates() >= 40, "only {} live gates", a.num_gates());
        // AND/OR dominated: more ANDs than XORs, as in control logic.
        assert!(a.num_ands() > a.num_xors());
    }
}
