//! Hash-function compression circuits: MD5, SHA-1, SHA-256.
//!
//! Each circuit is one compression of a single message block (512 input
//! bits) with the standard initial chaining value baked in as constants —
//! the same shape as the best-known MPC benchmarks of the paper's Table 2
//! (512 inputs; 128/160/256 outputs). Round constants are computed at
//! generation time from their mathematical definitions (⌊2³²·|sin(i)|⌋ for
//! MD5, √2-style cube/square roots for SHA), so no tables are copied in.
//!
//! All word arithmetic uses the textbook ripple adder (3 AND/bit) and the
//! boolean round functions use their AND/OR forms, making these circuits
//! faithful "unoptimized" starting points for AND minimization.

use xag_network::{Signal, Xag};

use crate::arith::{add_mod, input_word, output_word, Word};

/// 32-bit constant as a word of constant signals (little-endian bits).
fn const_word(value: u32) -> Word {
    (0..32)
        .map(|k| {
            if (value >> k) & 1 == 1 {
                Signal::CONST1
            } else {
                Signal::CONST0
            }
        })
        .collect()
}

/// Left rotation (pure wiring).
fn rotl(w: &Word, r: usize) -> Word {
    let n = w.len();
    (0..n).map(|i| w[(i + n - (r % n)) % n]).collect()
}

/// Right rotation (pure wiring).
fn rotr(w: &Word, r: usize) -> Word {
    rotl(w, w.len() - (r % w.len()))
}

/// Logical right shift (zero fill).
fn shr(w: &Word, r: usize) -> Word {
    (0..w.len())
        .map(|i| {
            if i + r < w.len() {
                w[i + r]
            } else {
                Signal::CONST0
            }
        })
        .collect()
}

fn xor_word(x: &mut Xag, a: &Word, b: &Word) -> Word {
    a.iter().zip(b).map(|(&p, &q)| x.xor(p, q)).collect()
}

fn and_word(x: &mut Xag, a: &Word, b: &Word) -> Word {
    a.iter().zip(b).map(|(&p, &q)| x.and(p, q)).collect()
}

fn or_word(x: &mut Xag, a: &Word, b: &Word) -> Word {
    a.iter().zip(b).map(|(&p, &q)| x.or(p, q)).collect()
}

fn not_word(a: &Word) -> Word {
    a.iter().map(|&p| !p).collect()
}

/// Choice: `(b ∧ c) ∨ (¬b ∧ d)` in its textbook AND/OR form.
fn ch(x: &mut Xag, b: &Word, c: &Word, d: &Word) -> Word {
    let t = and_word(x, b, c);
    let e = and_word(x, &not_word(b), d);
    or_word(x, &t, &e)
}

/// Majority: `(b∧c) ∨ (b∧d) ∨ (c∧d)`.
fn maj3(x: &mut Xag, b: &Word, c: &Word, d: &Word) -> Word {
    let bc = and_word(x, b, c);
    let bd = and_word(x, b, d);
    let cd = and_word(x, c, d);
    let t = or_word(x, &bc, &bd);
    or_word(x, &t, &cd)
}

/// One-block MD5 compression: 512 message bits in, 128 digest bits out.
pub fn md5() -> Xag {
    let mut x = Xag::new();
    let msg: Vec<Word> = (0..16).map(|_| input_word(&mut x, 32)).collect();

    // K[i] = floor(2^32 * |sin(i+1)|), the standard derivation.
    let k: Vec<u32> = (0..64)
        .map(|i| (((i as f64) + 1.0).sin().abs() * 4294967296.0) as u32)
        .collect();
    const S: [[usize; 4]; 4] = [
        [7, 12, 17, 22],
        [5, 9, 14, 20],
        [4, 11, 16, 23],
        [6, 10, 15, 21],
    ];
    let (mut a, mut b, mut c, mut d) = (
        const_word(0x6745_2301),
        const_word(0xefcd_ab89),
        const_word(0x98ba_dcfe),
        const_word(0x1032_5476),
    );
    let (a0, b0, c0, d0) = (a.clone(), b.clone(), c.clone(), d.clone());

    for i in 0..64 {
        let (f, g) = match i / 16 {
            0 => (ch(&mut x, &b, &c, &d), i),
            1 => (ch(&mut x, &d, &b, &c), (5 * i + 1) % 16),
            2 => {
                let t = xor_word(&mut x, &b, &c);
                (xor_word(&mut x, &t, &d), (3 * i + 5) % 16)
            }
            _ => {
                // I(b,c,d) = c ⊕ (b ∨ ¬d)
                let t = or_word(&mut x, &b, &not_word(&d));
                (xor_word(&mut x, &c, &t), (7 * i) % 16)
            }
        };
        let t1 = add_mod(&mut x, &a, &f);
        let t2 = add_mod(&mut x, &t1, &const_word(k[i]));
        let t3 = add_mod(&mut x, &t2, &msg[g]);
        let rot = rotl(&t3, S[i / 16][i % 4]);
        let nb = add_mod(&mut x, &b, &rot);
        a = d.clone();
        d = c.clone();
        c = b.clone();
        b = nb;
    }
    let fa = add_mod(&mut x, &a0, &a);
    let fb = add_mod(&mut x, &b0, &b);
    let fc = add_mod(&mut x, &c0, &c);
    let fd = add_mod(&mut x, &d0, &d);
    for w in [fa, fb, fc, fd] {
        output_word(&mut x, &w);
    }
    x
}

/// One-block SHA-1 compression: 512 message bits in, 160 digest bits out.
pub fn sha1() -> Xag {
    let mut x = Xag::new();
    let msg: Vec<Word> = (0..16).map(|_| input_word(&mut x, 32)).collect();

    // Message schedule.
    let mut w: Vec<Word> = msg;
    for t in 16..80 {
        let t1 = xor_word(&mut x, &w[t - 3], &w[t - 8]);
        let t2 = xor_word(&mut x, &t1, &w[t - 14]);
        let t3 = xor_word(&mut x, &t2, &w[t - 16]);
        w.push(rotl(&t3, 1));
    }

    let (mut a, mut b, mut c, mut d, mut e) = (
        const_word(0x6745_2301),
        const_word(0xefcd_ab89),
        const_word(0x98ba_dcfe),
        const_word(0x1032_5476),
        const_word(0xc3d2_e1f0),
    );
    let init = (a.clone(), b.clone(), c.clone(), d.clone(), e.clone());

    for t in 0..80 {
        let (f, kc) = match t / 20 {
            0 => (ch(&mut x, &b, &c, &d), 0x5a82_7999u32),
            1 => {
                let t1 = xor_word(&mut x, &b, &c);
                (xor_word(&mut x, &t1, &d), 0x6ed9_eba1)
            }
            2 => (maj3(&mut x, &b, &c, &d), 0x8f1b_bcdc),
            _ => {
                let t1 = xor_word(&mut x, &b, &c);
                (xor_word(&mut x, &t1, &d), 0xca62_c1d6)
            }
        };
        let t1 = add_mod(&mut x, &rotl(&a, 5), &f);
        let t2 = add_mod(&mut x, &t1, &e);
        let t3 = add_mod(&mut x, &t2, &w[t]);
        let temp = add_mod(&mut x, &t3, &const_word(kc));
        e = d.clone();
        d = c.clone();
        c = rotl(&b, 30);
        b = a.clone();
        a = temp;
    }
    let fa = add_mod(&mut x, &init.0, &a);
    let fb = add_mod(&mut x, &init.1, &b);
    let fc = add_mod(&mut x, &init.2, &c);
    let fd = add_mod(&mut x, &init.3, &d);
    let fe = add_mod(&mut x, &init.4, &e);
    for word in [fa, fb, fc, fd, fe] {
        output_word(&mut x, &word);
    }
    x
}

/// The first 64 primes, for SHA-256 constant derivation.
fn primes(n: usize) -> Vec<u64> {
    let mut out = Vec::new();
    let mut cand = 2u64;
    while out.len() < n {
        if (2..cand)
            .take_while(|d| d * d <= cand)
            .all(|d| !cand.is_multiple_of(d))
        {
            out.push(cand);
        }
        cand += 1;
    }
    out
}

/// One-block SHA-256 compression: 512 message bits in, 256 digest bits out.
pub fn sha256() -> Xag {
    let mut x = Xag::new();
    let msg: Vec<Word> = (0..16).map(|_| input_word(&mut x, 32)).collect();

    let ps = primes(64);
    // H0..H7 = frac(sqrt(p)) and K = frac(cbrt(p)), scaled to 32 bits.
    let frac32 = |v: f64| -> u32 { ((v - v.floor()) * 4294967296.0) as u32 };
    let h0: Vec<u32> = ps[..8].iter().map(|&p| frac32((p as f64).sqrt())).collect();
    let k: Vec<u32> = ps.iter().map(|&p| frac32((p as f64).cbrt())).collect();

    // Message schedule with σ0/σ1.
    let mut w: Vec<Word> = msg;
    for t in 16..64 {
        let s0 = {
            let r7 = rotr(&w[t - 15], 7);
            let r18 = rotr(&w[t - 15], 18);
            let s3 = shr(&w[t - 15], 3);
            let t1 = xor_word(&mut x, &r7, &r18);
            xor_word(&mut x, &t1, &s3)
        };
        let s1 = {
            let r17 = rotr(&w[t - 2], 17);
            let r19 = rotr(&w[t - 2], 19);
            let s10 = shr(&w[t - 2], 10);
            let t1 = xor_word(&mut x, &r17, &r19);
            xor_word(&mut x, &t1, &s10)
        };
        let t1 = add_mod(&mut x, &w[t - 16], &s0);
        let t2 = add_mod(&mut x, &t1, &w[t - 7]);
        w.push(add_mod(&mut x, &t2, &s1));
    }

    let mut state: Vec<Word> = h0.iter().map(|&h| const_word(h)).collect();
    let init = state.clone();
    for t in 0..64 {
        let (a, b, c, d, e, f, g, h) = (
            state[0].clone(),
            state[1].clone(),
            state[2].clone(),
            state[3].clone(),
            state[4].clone(),
            state[5].clone(),
            state[6].clone(),
            state[7].clone(),
        );
        let big_s1 = {
            let r6 = rotr(&e, 6);
            let r11 = rotr(&e, 11);
            let r25 = rotr(&e, 25);
            let t1 = xor_word(&mut x, &r6, &r11);
            xor_word(&mut x, &t1, &r25)
        };
        let chv = ch(&mut x, &e, &f, &g);
        let tmp1 = {
            let t1 = add_mod(&mut x, &h, &big_s1);
            let t2 = add_mod(&mut x, &t1, &chv);
            let t3 = add_mod(&mut x, &t2, &const_word(k[t]));
            add_mod(&mut x, &t3, &w[t])
        };
        let big_s0 = {
            let r2 = rotr(&a, 2);
            let r13 = rotr(&a, 13);
            let r22 = rotr(&a, 22);
            let t1 = xor_word(&mut x, &r2, &r13);
            xor_word(&mut x, &t1, &r22)
        };
        let majv = maj3(&mut x, &a, &b, &c);
        let tmp2 = add_mod(&mut x, &big_s0, &majv);

        state[7] = g;
        state[6] = f;
        state[5] = e;
        state[4] = add_mod(&mut x, &d, &tmp1);
        state[3] = c;
        state[2] = b;
        state[1] = a;
        state[0] = add_mod(&mut x, &tmp1, &tmp2);
    }
    for (s, i) in state.iter().zip(init.iter()) {
        let out = add_mod(&mut x, s, i);
        output_word(&mut x, &out);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Software MD5 of one raw block (no padding), mirroring the circuit.
    fn md5_block_sw(block: &[u32; 16]) -> [u32; 4] {
        let k: Vec<u32> = (0..64)
            .map(|i| (((i as f64) + 1.0).sin().abs() * 4294967296.0) as u32)
            .collect();
        const S: [[u32; 4]; 4] = [
            [7, 12, 17, 22],
            [5, 9, 14, 20],
            [4, 11, 16, 23],
            [6, 10, 15, 21],
        ];
        let (mut a, mut b, mut c, mut d) = (
            0x6745_2301u32,
            0xefcd_ab89u32,
            0x98ba_dcfeu32,
            0x1032_5476u32,
        );
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = a
                .wrapping_add(f)
                .wrapping_add(k[i])
                .wrapping_add(block[g])
                .rotate_left(S[i / 16][i % 4]);
            let nb = b.wrapping_add(tmp);
            a = d;
            d = c;
            c = b;
            b = nb;
        }
        [
            0x6745_2301u32.wrapping_add(a),
            0xefcd_ab89u32.wrapping_add(b),
            0x98ba_dcfeu32.wrapping_add(c),
            0x1032_5476u32.wrapping_add(d),
        ]
    }

    fn sha1_block_sw(block: &[u32; 16]) -> [u32; 5] {
        let mut w = [0u32; 80];
        w[..16].copy_from_slice(block);
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (
            0x6745_2301u32,
            0xefcd_ab89u32,
            0x98ba_dcfeu32,
            0x1032_5476u32,
            0xc3d2_e1f0u32,
        );
        for t in 0..80 {
            let (f, k) = match t / 20 {
                0 => ((b & c) | (!b & d), 0x5a82_7999),
                1 => (b ^ c ^ d, 0x6ed9_eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(w[t])
                .wrapping_add(k);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        [
            0x6745_2301u32.wrapping_add(a),
            0xefcd_ab89u32.wrapping_add(b),
            0x98ba_dcfeu32.wrapping_add(c),
            0x1032_5476u32.wrapping_add(d),
            0xc3d2_e1f0u32.wrapping_add(e),
        ]
    }

    fn sha256_block_sw(block: &[u32; 16]) -> [u32; 8] {
        let ps = primes(64);
        let frac32 = |v: f64| -> u32 { ((v - v.floor()) * 4294967296.0) as u32 };
        let mut h: Vec<u32> = ps[..8].iter().map(|&p| frac32((p as f64).sqrt())).collect();
        let k: Vec<u32> = ps.iter().map(|&p| frac32((p as f64).cbrt())).collect();
        let mut w = [0u32; 64];
        w[..16].copy_from_slice(block);
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let init = h.clone();
        for t in 0..64 {
            let s1 = h[4].rotate_right(6) ^ h[4].rotate_right(11) ^ h[4].rotate_right(25);
            let ch = (h[4] & h[5]) ^ (!h[4] & h[6]);
            let tmp1 = h[7]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[t])
                .wrapping_add(w[t]);
            let s0 = h[0].rotate_right(2) ^ h[0].rotate_right(13) ^ h[0].rotate_right(22);
            let maj = (h[0] & h[1]) ^ (h[0] & h[2]) ^ (h[1] & h[2]);
            let tmp2 = s0.wrapping_add(maj);
            h[7] = h[6];
            h[6] = h[5];
            h[5] = h[4];
            h[4] = h[3].wrapping_add(tmp1);
            h[3] = h[2];
            h[2] = h[1];
            h[1] = h[0];
            h[0] = tmp1.wrapping_add(tmp2);
        }
        let mut out = [0u32; 8];
        for i in 0..8 {
            out[i] = h[i].wrapping_add(init[i]);
        }
        out
    }

    fn run_words(x: &Xag, block: &[u32; 16]) -> Vec<u32> {
        let words: Vec<u64> = (0..512)
            .map(|i| {
                let w = block[i / 32];
                if (w >> (i % 32)) & 1 == 1 {
                    u64::MAX
                } else {
                    0
                }
            })
            .collect();
        let out = x.simulate(&words);
        out.chunks(32)
            .map(|c| {
                c.iter()
                    .enumerate()
                    .fold(0u32, |a, (i, &w)| a | (((w & 1) as u32) << i))
            })
            .collect()
    }

    #[test]
    fn md5_circuit_matches_software() {
        let x = md5();
        assert_eq!(x.num_inputs(), 512);
        assert_eq!(x.num_outputs(), 128);
        let mut block = [0u32; 16];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as u32).wrapping_mul(0x9e37_79b9) ^ 0x1234_5678;
        }
        assert_eq!(run_words(&x, &block), md5_block_sw(&block).to_vec());
        assert_eq!(run_words(&x, &[0; 16]), md5_block_sw(&[0; 16]).to_vec());
    }

    #[test]
    fn sha1_circuit_matches_software() {
        let x = sha1();
        assert_eq!(x.num_inputs(), 512);
        assert_eq!(x.num_outputs(), 160);
        let mut block = [0u32; 16];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as u32).wrapping_mul(0x0123_4567) ^ 0xdead_beef;
        }
        assert_eq!(run_words(&x, &block), sha1_block_sw(&block).to_vec());
    }

    #[test]
    fn sha256_circuit_matches_software() {
        let x = sha256();
        assert_eq!(x.num_inputs(), 512);
        assert_eq!(x.num_outputs(), 256);
        let mut block = [0u32; 16];
        for (i, b) in block.iter_mut().enumerate() {
            *b = (i as u32).wrapping_mul(0xabcd_ef01) ^ 0x0f0f_1234;
        }
        assert_eq!(run_words(&x, &block), sha256_block_sw(&block).to_vec());
        // Shape check: adder/choice/majority dominated.
        assert!(x.num_ands() > 10_000);
    }

    #[test]
    fn sha256_constants_are_the_standard_ones() {
        // Spot-check the derived constants against the published values.
        let ps = primes(64);
        let frac32 = |v: f64| -> u32 { ((v - v.floor()) * 4294967296.0) as u32 };
        assert_eq!(frac32((ps[0] as f64).sqrt()), 0x6a09_e667);
        assert_eq!(frac32((ps[0] as f64).cbrt()), 0x428a_2f98);
        assert_eq!(frac32((ps[63] as f64).cbrt()), 0xc671_78f2);
    }
}
