//! AES-128 encryption circuit with a tower-field S-box.
//!
//! The S-box is built the way low-AND hardware implementations build it
//! (Satoh/Canright style): map GF(2⁸) to the tower GF((2⁴)²) through a
//! field isomorphism computed at generation time, invert there —
//! `(aY + b)⁻¹ = aΔ⁻¹·Y + (a + b)Δ⁻¹` with `Δ = a²ν + ab + b²` — and map
//! back through the inverse isomorphism composed with the AES affine
//! transform. Only the GF(2⁴) multiplications and the 4-bit inversion
//! consume AND gates; all the isomorphisms, squarings and constant
//! multiplications are GF(2)-linear and therefore pure XOR networks. This
//! gives a starting point that is already multiplicative-complexity-frugal,
//! matching the paper's observation that its AES benchmarks admit 0%
//! further improvement.
//!
//! MixColumns and ShiftRows are linear/wiring; AddRoundKey is XOR. The key
//! schedule (when generated in-circuit) adds four S-boxes per round.

use xag_network::{Signal, Xag};
use xag_synth::Synthesizer;
use xag_tt::Tt;

/// GF(2⁴) multiplication modulo w⁴ + w + 1 (value domain).
pub fn mul16(a: u8, b: u8) -> u8 {
    let mut r = 0u8;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            r ^= a;
        }
        a <<= 1;
        if a & 0x10 != 0 {
            a ^= 0x13;
        }
        b >>= 1;
    }
    r & 0xf
}

/// GF(2⁸) multiplication modulo x⁸ + x⁴ + x³ + x + 1 (the AES field).
pub fn mul256(a: u8, b: u8) -> u8 {
    let mut r = 0u8;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            r ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    r
}

fn inv16(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    (1..16).find(|&x| mul16(a, x) == 1).expect("field inverse")
}

/// Chooses ν such that Y² + Y + ν is irreducible over GF(2⁴).
fn choose_nu() -> u8 {
    let image: Vec<u8> = (0..16).map(|t| mul16(t, t) ^ t).collect();
    (1..16)
        .find(|nu| !image.contains(nu))
        .expect("irreducible ν exists")
}

/// Multiplication in the tower GF((2⁴)²) with elements `hi·Y + lo`.
fn tower_mul(a: (u8, u8), b: (u8, u8), nu: u8) -> (u8, u8) {
    let (ah, al) = a;
    let (bh, bl) = b;
    let hh = mul16(ah, bh);
    let hi = mul16(ah, bl) ^ mul16(al, bh) ^ hh;
    let lo = mul16(al, bl) ^ mul16(hh, nu);
    (hi, lo)
}

/// Computes the isomorphism GF(2⁸) → GF((2⁴)²) as a byte-indexed table
/// (tower element packed as `hi << 4 | lo`), plus its inverse.
fn isomorphism(nu: u8) -> (Vec<u8>, Vec<u8>) {
    // Discrete log table for the AES field generator 0x03.
    let g = 0x03u8;
    let mut pow = vec![0u8; 255];
    let mut acc = 1u8;
    for p in pow.iter_mut() {
        *p = acc;
        acc = mul256(acc, g);
    }
    assert_eq!(acc, 1, "0x03 generates GF(256)*");

    // Try every nonzero tower element as the image of the generator and
    // keep the first that induces an additive (hence field) isomorphism.
    for h_packed in 1..=255u8 {
        let h = (h_packed >> 4, h_packed & 0xf);
        let mut phi = vec![0u8; 256];
        let mut hacc = (0u8, 1u8); // tower 1
        let mut ok = true;
        for p in &pow {
            let packed = (hacc.0 << 4) | hacc.1;
            if phi[*p as usize] != 0 {
                ok = false; // h has smaller multiplicative order
                break;
            }
            phi[*p as usize] = packed;
            hacc = tower_mul(hacc, h, nu);
        }
        if !ok || hacc != (0, 1) {
            continue;
        }
        // Additivity check on a basis is sufficient for linear maps, but
        // φ was defined multiplicatively — verify on all pairs of basis
        // elements and a sample of sums.
        let additive = (0..8).all(|i| {
            (0..256).step_by(7).all(|v| {
                let v = v as u8;
                phi[(v ^ (1 << i)) as usize] == phi[v as usize] ^ phi[1usize << i]
            })
        }) && (0..256).all(|v| {
            let v = v as u8;
            phi[(v ^ 0x5a) as usize] == phi[v as usize] ^ phi[0x5a]
        });
        if !additive {
            continue;
        }
        let mut inv = vec![0u8; 256];
        for (x, &y) in phi.iter().enumerate() {
            inv[y as usize] = x as u8;
        }
        return (phi, inv);
    }
    panic!("no isomorphism found (impossible for a correct tower)");
}

/// Extracts the GF(2)-matrix of a linear byte map given by a table:
/// `columns[i] = table[1 << i]`.
fn linear_columns(table: &[u8]) -> [u8; 8] {
    let mut cols = [0u8; 8];
    for (i, c) in cols.iter_mut().enumerate() {
        *c = table[1usize << i];
    }
    cols
}

/// Applies a GF(2)-linear byte map (given by its columns) to 8 signals —
/// a pure XOR network.
fn apply_linear(x: &mut Xag, cols: &[u8; 8], bits: &[Signal]) -> Vec<Signal> {
    (0..8)
        .map(|out| {
            let mut acc = Signal::CONST0;
            for (i, &c) in cols.iter().enumerate() {
                if (c >> out) & 1 == 1 {
                    acc = x.xor(acc, bits[i]);
                }
            }
            acc
        })
        .collect()
}

/// GF(2⁴) multiplier circuit: schoolbook partial products plus the
/// w⁴ = w + 1 reduction (16 ANDs before structural sharing).
fn mul16_circuit(x: &mut Xag, a: &[Signal], b: &[Signal]) -> Vec<Signal> {
    let mut c = [Signal::CONST0; 7];
    for i in 0..4 {
        for j in 0..4 {
            let p = x.and(a[i], b[j]);
            c[i + j] = x.xor(c[i + j], p);
        }
    }
    // w⁴→w+1, w⁵→w²+w, w⁶→w³+w².
    let o0 = x.xor(c[0], c[4]);
    let t1 = x.xor(c[1], c[4]);
    let o1 = x.xor(t1, c[5]);
    let t2 = x.xor(c[2], c[5]);
    let o2 = x.xor(t2, c[6]);
    let o3 = x.xor(c[3], c[6]);
    vec![o0, o1, o2, o3]
}

/// The S-box generator, reusable across all AES rounds.
pub struct SboxBuilder {
    nu: u8,
    phi_cols: [u8; 8],
    inv_cols: [u8; 8],
    synth: Synthesizer,
    inv16_tts: [Tt; 4],
}

impl SboxBuilder {
    /// Prepares the tower-field constants and the 4-bit inverter tables.
    pub fn new() -> Self {
        let nu = choose_nu();
        let (phi, inv) = isomorphism(nu);
        let inv16_tts =
            core::array::from_fn(|bit| Tt::from_fn(4, |m| (inv16(m as u8) >> bit) & 1 == 1));
        Self {
            nu,
            phi_cols: linear_columns(&phi),
            inv_cols: linear_columns(&inv),
            synth: Synthesizer::new(),
            inv16_tts,
        }
    }

    /// Value-domain S-box (for validation).
    pub fn sbox_value(&self, v: u8) -> u8 {
        let inv = if v == 0 {
            0
        } else {
            (1..=255u8).find(|&x| mul256(v, x) == 1).expect("inverse")
        };
        let mut out = 0x63u8;
        for i in 0..8 {
            let bit = ((inv >> i)
                ^ (inv >> ((i + 4) % 8))
                ^ (inv >> ((i + 5) % 8))
                ^ (inv >> ((i + 6) % 8))
                ^ (inv >> ((i + 7) % 8)))
                & 1;
            out ^= bit << i;
        }
        out
    }

    /// Emits one S-box instance over 8 input signals.
    pub fn build(&mut self, x: &mut Xag, bits: &[Signal]) -> Vec<Signal> {
        assert_eq!(bits.len(), 8);
        // Into the tower.
        let t = apply_linear(x, &self.phi_cols, bits);
        let (lo, hi) = (t[..4].to_vec(), t[4..].to_vec());
        // Δ = ν·hi² ⊕ hi·lo ⊕ lo².
        let hi2 = mul16_circuit(x, &hi, &hi);
        let nu_cols: [u8; 8] = {
            let mut cols = [0u8; 8];
            for (i, c) in cols.iter_mut().enumerate().take(4) {
                *c = mul16(self.nu, 1 << i);
            }
            cols
        };
        let nu_hi2: Vec<Signal> = (0..4)
            .map(|out| {
                let mut acc = Signal::CONST0;
                for i in 0..4 {
                    if (nu_cols[i] >> out) & 1 == 1 {
                        acc = x.xor(acc, hi2[i]);
                    }
                }
                acc
            })
            .collect();
        let hilo = mul16_circuit(x, &hi, &lo);
        let lo2 = mul16_circuit(x, &lo, &lo);
        let delta: Vec<Signal> = (0..4)
            .map(|i| {
                let t = x.xor(nu_hi2[i], hilo[i]);
                x.xor(t, lo2[i])
            })
            .collect();
        // Δ⁻¹ via synthesized 4-bit inversion.
        let tts = self.inv16_tts;
        let dinv: Vec<Signal> = tts
            .iter()
            .map(|tt| {
                let frag = self.synth.synthesize(*tt);
                frag.instantiate(x, &delta)
            })
            .collect();
        // out_hi = hi·Δ⁻¹, out_lo = (hi ⊕ lo)·Δ⁻¹.
        let out_hi = mul16_circuit(x, &hi, &dinv);
        let hi_xor_lo: Vec<Signal> = hi.iter().zip(&lo).map(|(&a, &b)| x.xor(a, b)).collect();
        let out_lo = mul16_circuit(x, &hi_xor_lo, &dinv);
        // Back to GF(2⁸), then the AES affine transform.
        let packed: Vec<Signal> = out_lo.into_iter().chain(out_hi).collect();
        let z = apply_linear(x, &self.inv_cols, &packed);
        (0..8)
            .map(|i| {
                let mut acc = if (0x63 >> i) & 1 == 1 {
                    Signal::CONST1
                } else {
                    Signal::CONST0
                };
                for k in [0usize, 4, 5, 6, 7] {
                    acc = x.xor(acc, z[(i + k) % 8]);
                }
                acc
            })
            .collect()
    }
}

impl Default for SboxBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// xtime (multiplication by 0x02 in the AES field) — GF(2)-linear.
fn xtime_circuit(x: &mut Xag, b: &[Signal]) -> Vec<Signal> {
    (0..8)
        .map(|i| {
            let shifted = if i == 0 { Signal::CONST0 } else { b[i - 1] };
            if (0x1b >> i) & 1 == 1 {
                x.xor(shifted, b[7])
            } else {
                shifted
            }
        })
        .collect()
}

fn xor_bytes(x: &mut Xag, a: &[Signal], b: &[Signal]) -> Vec<Signal> {
    a.iter().zip(b).map(|(&p, &q)| x.xor(p, q)).collect()
}

/// MixColumns on one column of four bytes.
fn mix_column(x: &mut Xag, col: &[Vec<Signal>]) -> Vec<Vec<Signal>> {
    let two: Vec<Vec<Signal>> = col.iter().map(|b| xtime_circuit(x, b)).collect();
    let three: Vec<Vec<Signal>> = (0..4).map(|i| xor_bytes(x, &two[i], &col[i])).collect();
    (0..4)
        .map(|r| {
            let t1 = xor_bytes(x, &two[r], &three[(r + 1) % 4]);
            let t2 = xor_bytes(x, &t1, &col[(r + 2) % 4]);
            xor_bytes(x, &t2, &col[(r + 3) % 4])
        })
        .collect()
}

/// AES-128 encryption of one block.
///
/// * `expand_key == true`: 256 inputs (128 plaintext, 128 key); the key
///   schedule runs in-circuit (40 extra S-boxes).
/// * `expand_key == false`: 128 + 11·128 inputs (plaintext plus round
///   keys).
pub fn aes128(expand_key: bool) -> Xag {
    let mut x = Xag::new();
    let mut sbox = SboxBuilder::new();

    // Byte k of the state is row k%4, column k/4 (FIPS-197 ordering); each
    // byte is 8 signals, LSB first.
    let pt: Vec<Vec<Signal>> = (0..16)
        .map(|_| (0..8).map(|_| x.input()).collect())
        .collect();
    let round_keys: Vec<Vec<Vec<Signal>>> = if expand_key {
        let key: Vec<Vec<Signal>> = (0..16)
            .map(|_| (0..8).map(|_| x.input()).collect())
            .collect();
        expand_key_schedule(&mut x, &mut sbox, key)
    } else {
        (0..11)
            .map(|_| {
                (0..16)
                    .map(|_| (0..8).map(|_| x.input()).collect())
                    .collect()
            })
            .collect()
    };

    let mut state = pt;
    state = add_round_key(&mut x, &state, &round_keys[0]);
    for round in 1..=10 {
        // SubBytes.
        state = state.iter().map(|b| sbox.build(&mut x, b)).collect();
        // ShiftRows: row r rotates left by r. Byte index = r + 4c.
        let mut shifted = state.clone();
        for r in 1..4 {
            for c in 0..4 {
                shifted[r + 4 * c] = state[r + 4 * ((c + r) % 4)].clone();
            }
        }
        state = shifted;
        // MixColumns (skipped in the last round).
        if round != 10 {
            let mut mixed = Vec::with_capacity(16);
            for c in 0..4 {
                let col: Vec<Vec<Signal>> = (0..4).map(|r| state[r + 4 * c].clone()).collect();
                let out = mix_column(&mut x, &col);
                mixed.extend(out);
            }
            // mixed is column-major already (r + 4c order per column).
            state = mixed;
        }
        state = add_round_key(&mut x, &state, &round_keys[round]);
    }
    for byte in &state {
        for &bit in byte {
            x.output(bit);
        }
    }
    x
}

fn add_round_key(x: &mut Xag, state: &[Vec<Signal>], rk: &[Vec<Signal>]) -> Vec<Vec<Signal>> {
    state
        .iter()
        .zip(rk)
        .map(|(s, k)| xor_bytes(x, s, k))
        .collect()
}

fn expand_key_schedule(
    x: &mut Xag,
    sbox: &mut SboxBuilder,
    key: Vec<Vec<Signal>>,
) -> Vec<Vec<Vec<Signal>>> {
    // Words are columns: word w = bytes 4w..4w+4.
    let mut words: Vec<Vec<Vec<Signal>>> = (0..4)
        .map(|w| (0..4).map(|b| key[4 * w + b].clone()).collect())
        .collect();
    let mut rcon = 1u8;
    for w in 4..44 {
        let prev = words[w - 1].clone();
        let mut temp = if w % 4 == 0 {
            // RotWord + SubWord + Rcon.
            let rot: Vec<Vec<Signal>> = (0..4).map(|i| prev[(i + 1) % 4].clone()).collect();
            let mut sub: Vec<Vec<Signal>> = rot.iter().map(|b| sbox.build(x, b)).collect();
            for i in 0..8 {
                if (rcon >> i) & 1 == 1 {
                    sub[0][i] = !sub[0][i];
                }
            }
            rcon = mul256(rcon, 2);
            sub
        } else {
            prev
        };
        for (b, byte) in temp.iter_mut().enumerate() {
            *byte = xor_bytes(x, byte, &words[w - 4][b]);
        }
        words.push(temp);
    }
    (0..11)
        .map(|round| {
            (0..16)
                .map(|k| {
                    let (r, c) = (k % 4, k / 4);
                    words[4 * round + c][r].clone()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_circuit_matches_value_domain() {
        let mut sb = SboxBuilder::new();
        let mut x = Xag::new();
        let bits: Vec<Signal> = (0..8).map(|_| x.input()).collect();
        let out = sb.build(&mut x, &bits);
        for &b in &out {
            x.output(b);
        }
        for v in 0..=255u64 {
            let o = x.evaluate(v);
            let got = o
                .iter()
                .enumerate()
                .fold(0u8, |a, (i, &bit)| a | ((bit as u8) << i));
            assert_eq!(got, sb.sbox_value(v as u8), "S({v:#04x})");
        }
    }

    #[test]
    fn sbox_matches_fips_values() {
        // Canonical AES S-box spot values.
        let sb = SboxBuilder::new();
        assert_eq!(sb.sbox_value(0x00), 0x63);
        assert_eq!(sb.sbox_value(0x01), 0x7c);
        assert_eq!(sb.sbox_value(0x53), 0xed);
        assert_eq!(sb.sbox_value(0xff), 0x16);
    }

    /// Software AES-128 built from the same byte-level primitives.
    fn aes128_software(pt: &[u8; 16], key: &[u8; 16]) -> [u8; 16] {
        let sb = SboxBuilder::new();
        let s = |v: u8| sb.sbox_value(v);
        // Key expansion.
        let mut words: Vec<[u8; 4]> = (0..4)
            .map(|w| core::array::from_fn(|b| key[4 * w + b]))
            .collect();
        let mut rcon = 1u8;
        for w in 4..44 {
            let prev = words[w - 1];
            let mut temp = if w % 4 == 0 {
                let rot: [u8; 4] = core::array::from_fn(|i| prev[(i + 1) % 4]);
                let mut sub: [u8; 4] = core::array::from_fn(|i| s(rot[i]));
                sub[0] ^= rcon;
                rcon = mul256(rcon, 2);
                sub
            } else {
                prev
            };
            for b in 0..4 {
                temp[b] ^= words[w - 4][b];
            }
            words.push(temp);
        }
        let rk = |round: usize, k: usize| -> u8 {
            let (r, c) = (k % 4, k / 4);
            words[4 * round + c][r]
        };
        let mut st: [u8; 16] = *pt;
        for k in 0..16 {
            st[k] ^= rk(0, k);
        }
        for round in 1..=10 {
            for b in st.iter_mut() {
                *b = s(*b);
            }
            let mut sh = st;
            for r in 1..4 {
                for c in 0..4 {
                    sh[r + 4 * c] = st[r + 4 * ((c + r) % 4)];
                }
            }
            st = sh;
            if round != 10 {
                let mut mixed = [0u8; 16];
                for c in 0..4 {
                    let col: [u8; 4] = core::array::from_fn(|r| st[r + 4 * c]);
                    for r in 0..4 {
                        mixed[r + 4 * c] = mul256(col[r], 2)
                            ^ mul256(col[(r + 1) % 4], 3)
                            ^ col[(r + 2) % 4]
                            ^ col[(r + 3) % 4];
                    }
                }
                st = mixed;
            }
            for k in 0..16 {
                st[k] ^= rk(round, k);
            }
        }
        st
    }

    #[test]
    fn software_aes_matches_fips_vector() {
        // FIPS-197 Appendix B.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(aes128_software(&pt, &key), expect);
    }

    #[test]
    fn circuit_matches_software_aes() {
        let x = aes128(true);
        assert_eq!(x.num_inputs(), 256);
        assert_eq!(x.num_outputs(), 128);
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (17 * i as u16 + 3) as u8);
        let mut inputs = vec![0u64; 256];
        for k in 0..16 {
            for b in 0..8 {
                inputs[8 * k + b] = if (pt[k] >> b) & 1 == 1 { u64::MAX } else { 0 };
                inputs[128 + 8 * k + b] = if (key[k] >> b) & 1 == 1 { u64::MAX } else { 0 };
            }
        }
        let out = x.simulate(&inputs);
        let mut got = [0u8; 16];
        for k in 0..16 {
            for b in 0..8 {
                got[k] |= ((out[8 * k + b] & 1) as u8) << b;
            }
        }
        assert_eq!(got, aes128_software(&pt, &key));
    }
}
