//! DES-structured Feistel cipher.
//!
//! The circuit reproduces the exact DES *topology*: 16 Feistel rounds, the
//! formulaic E expansion (32→48 bits), eight 6→4 S-boxes per round whose
//! outputs pass through a 32-bit permutation, and the shift-register key
//! schedule with the standard per-round rotation amounts. Two published
//! lookup tables that are pure data (the S-box entries and the P/PC
//! permutations) are *not* copied from the standard; they are generated
//! from a fixed seed with the same structural properties (each S-box row is
//! a permutation of 0..16, P is a permutation, PC-2 is a 48-of-56
//! selection). See DESIGN.md §3: the benchmark's value for the paper's
//! experiment is the multiplicative-complexity structure of 6→4 S-box
//! logic, which seeded tables preserve.
//!
//! S-boxes are synthesized into XAG fragments by [`xag_synth`] — exactly
//! the 6-input table-logic case the DAC'19 database targets.

use mc_rng::Rng;
use xag_network::{Signal, Xag};
use xag_synth::Synthesizer;
use xag_tt::Tt;

/// Fixed seed: the tables are part of the benchmark definition.
const TABLE_SEED: u64 = 0xDE5_0001;

/// Per-round left-rotation amounts of the DES key schedule.
const KEY_ROTATIONS: [usize; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The benchmark's S-box tables: 8 boxes × 4 rows × 16 entries, each row a
/// permutation of 0..16 (the classical DES S-box property).
pub fn sbox_tables() -> [[[u8; 16]; 4]; 8] {
    let mut rng = Rng::seed_from_u64(TABLE_SEED);
    let mut boxes = [[[0u8; 16]; 4]; 8];
    for b in boxes.iter_mut() {
        for row in b.iter_mut() {
            let mut vals: Vec<u8> = (0..16).collect();
            rng.shuffle(&mut vals);
            row.copy_from_slice(&vals);
        }
    }
    boxes
}

/// The benchmark's P permutation (32-bit) and PC-2 selection (48-of-56).
fn permutations() -> (Vec<usize>, Vec<usize>) {
    let mut rng = Rng::seed_from_u64(TABLE_SEED ^ 0xBEEF);
    let mut p: Vec<usize> = (0..32).collect();
    rng.shuffle(&mut p);
    let mut pc2: Vec<usize> = (0..56).collect();
    rng.shuffle(&mut pc2);
    pc2.truncate(48);
    (p, pc2)
}

/// S-box lookup with DES input indexing: row = (b5, b0), column = b4..b1.
fn sbox_eval(table: &[[u8; 16]; 4], input6: u8) -> u8 {
    let row = (((input6 >> 5) & 1) << 1 | (input6 & 1)) as usize;
    let col = ((input6 >> 1) & 0xf) as usize;
    table[row][col]
}

/// Expansion E: output bit `6i + j` reads input bit `(4i + j - 1) mod 32`
/// (the formulaic structure of the standard E table).
fn expansion(r: &[Signal]) -> Vec<Signal> {
    (0..48)
        .map(|k| {
            let (i, j) = (k / 6, k % 6);
            r[(4 * i + j + 31) % 32]
        })
        .collect()
}

/// The Feistel round function f(R, K).
fn feistel_f(
    x: &mut Xag,
    synth: &mut Synthesizer,
    tables: &[[[u8; 16]; 4]; 8],
    p: &[usize],
    r: &[Signal],
    k: &[Signal],
) -> Vec<Signal> {
    let e = expansion(r);
    let xored: Vec<Signal> = e.iter().zip(k).map(|(&a, &b)| x.xor(a, b)).collect();
    let mut s_out = Vec::with_capacity(32);
    for (b, table) in tables.iter().enumerate() {
        let ins = &xored[6 * b..6 * b + 6];
        for bit in 0..4 {
            let tt = Tt::from_fn(6, |m| (sbox_eval(table, m as u8) >> bit) & 1 == 1);
            let frag = synth.synthesize(tt);
            let sig = frag.instantiate(x, ins);
            s_out.push(sig);
        }
    }
    p.iter().map(|&src| s_out[src]).collect()
}

/// Builds the cipher circuit.
///
/// * `expand_key == true`: 128 inputs (64 plaintext, 64 key with 8 ignored
///   parity positions); the key schedule runs inside the circuit (pure
///   wiring, as in DES).
/// * `expand_key == false`: 64 + 16·48 inputs (plaintext plus explicit
///   round keys).
pub fn des(expand_key: bool) -> Xag {
    let mut x = Xag::new();
    let mut synth = Synthesizer::new();
    let tables = sbox_tables();
    let (p, pc2) = permutations();

    let pt: Vec<Signal> = (0..64).map(|_| x.input()).collect();
    let round_keys: Vec<Vec<Signal>> = if expand_key {
        let key: Vec<Signal> = (0..64).map(|_| x.input()).collect();
        // PC-1 stand-in: drop the 8 "parity" bits (indices 7 mod 8).
        let mut cd: Vec<Signal> = (0..64).filter(|i| i % 8 != 7).map(|i| key[i]).collect();
        let mut rks = Vec::with_capacity(16);
        for rot in KEY_ROTATIONS {
            // Rotate the two 28-bit halves independently.
            let (c, d) = cd.split_at(28);
            let mut c = c.to_vec();
            let mut d = d.to_vec();
            c.rotate_left(rot);
            d.rotate_left(rot);
            cd = c.into_iter().chain(d).collect();
            rks.push(pc2.iter().map(|&i| cd[i]).collect());
        }
        rks
    } else {
        (0..16)
            .map(|_| (0..48).map(|_| x.input()).collect())
            .collect()
    };

    let (mut l, mut r): (Vec<Signal>, Vec<Signal>) = (pt[..32].to_vec(), pt[32..].to_vec());
    for rk in &round_keys {
        let f = feistel_f(&mut x, &mut synth, &tables, &p, &r, rk);
        let new_r: Vec<Signal> = l.iter().zip(&f).map(|(&a, &b)| x.xor(a, b)).collect();
        l = r;
        r = new_r;
    }
    // Final swap, as in DES.
    for &s in r.iter().chain(l.iter()) {
        x.output(s);
    }
    x
}

/// Software model of the same cipher, for validation.
pub fn des_software(pt: u64, key: u64) -> u64 {
    let tables = sbox_tables();
    let (p, pc2) = permutations();
    let bit = |v: u64, i: usize| -> u64 { (v >> i) & 1 };

    let mut cd: Vec<u64> = (0..64)
        .filter(|i| i % 8 != 7)
        .map(|i| bit(key, i))
        .collect();
    let mut round_keys = Vec::with_capacity(16);
    for rot in KEY_ROTATIONS {
        let (c, d) = cd.split_at(28);
        let mut c = c.to_vec();
        let mut d = d.to_vec();
        c.rotate_left(rot);
        d.rotate_left(rot);
        cd = c.into_iter().chain(d).collect();
        let rk: Vec<u64> = pc2.iter().map(|&i| cd[i]).collect();
        round_keys.push(rk);
    }

    let mut l: Vec<u64> = (0..32).map(|i| bit(pt, i)).collect();
    let mut r: Vec<u64> = (32..64).map(|i| bit(pt, i)).collect();
    for rk in &round_keys {
        // E expansion + key XOR.
        let xored: Vec<u64> = (0..48)
            .map(|k| r[(4 * (k / 6) + (k % 6) + 31) % 32] ^ rk[k])
            .collect();
        let mut s_out = Vec::with_capacity(32);
        for (b, table) in tables.iter().enumerate() {
            let mut in6 = 0u8;
            for j in 0..6 {
                in6 |= (xored[6 * b + j] as u8) << j;
            }
            let v = sbox_eval(table, in6);
            for bitk in 0..4 {
                s_out.push(((v >> bitk) & 1) as u64);
            }
        }
        let f: Vec<u64> = p.iter().map(|&src| s_out[src]).collect();
        let new_r: Vec<u64> = l.iter().zip(&f).map(|(&a, &b)| a ^ b).collect();
        l = r;
        r = new_r;
    }
    let mut out = 0u64;
    for (i, &b) in r.iter().chain(l.iter()).enumerate() {
        out |= b << i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circuit_matches_software_model() {
        let x = des(true);
        assert_eq!(x.num_inputs(), 128);
        assert_eq!(x.num_outputs(), 64);
        for (pt, key) in [
            (0u64, 0u64),
            (0x0123_4567_89ab_cdef, 0x1337_c0de_dead_beef),
            (u64::MAX, 0x0f0f_0f0f_f0f0_f0f0),
        ] {
            let mut inputs = vec![0u64; 128];
            for i in 0..64 {
                inputs[i] = if (pt >> i) & 1 == 1 { u64::MAX } else { 0 };
                inputs[64 + i] = if (key >> i) & 1 == 1 { u64::MAX } else { 0 };
            }
            let out = x.simulate(&inputs);
            let got = out
                .iter()
                .enumerate()
                .fold(0u64, |a, (i, &w)| a | ((w & 1) << i));
            assert_eq!(got, des_software(pt, key), "pt={pt:#x} key={key:#x}");
        }
    }

    #[test]
    fn sbox_rows_are_permutations() {
        for table in sbox_tables() {
            for row in table {
                let mut seen = [false; 16];
                for v in row {
                    assert!(!seen[v as usize]);
                    seen[v as usize] = true;
                }
            }
        }
    }

    #[test]
    fn avalanche_on_plaintext_bit() {
        // Flipping one plaintext bit must change many ciphertext bits.
        let a = des_software(0, 0x1234_5678_9abc_def0);
        let b = des_software(1, 0x1234_5678_9abc_def0);
        assert!(
            (a ^ b).count_ones() > 16,
            "weak diffusion: {}",
            (a ^ b).count_ones()
        );
    }

    #[test]
    fn explicit_round_key_variant_shape() {
        let x = des(false);
        assert_eq!(x.num_inputs(), 64 + 16 * 48);
        assert_eq!(x.num_outputs(), 64);
        // S-box dominated AND count.
        assert!(x.num_ands() > 1000);
    }
}
