// The cipher/hash generators index state arrays with the round/lane/word
// variables of their standards (FIPS 197/180-4/202); iterator rewrites
// would obscure the correspondence.
#![allow(clippy::needless_range_loop)]

//! Benchmark circuit generators for the DAC'19 reproduction.
//!
//! This crate builds, from scratch, XAG versions of every circuit the
//! paper's evaluation uses:
//!
//! * [`epfl`] — the EPFL combinational benchmark suite of Table 1
//!   (arithmetic: adder, barrel shifter, divisor, log2, max, multiplier,
//!   sine, square-root, square; random-control: arbiter, ALU control,
//!   cavlc, decoder, i2c, int2float, memory controller, priority encoder,
//!   router, voter);
//! * [`mpc`] — the MPC/FHE suite of Table 2 (AES-128 with a tower-field
//!   S-box, a DES-structured Feistel cipher, MD5, SHA-1, SHA-256, adders,
//!   a 32×32 multiplier, and four comparators);
//! * [`arith`] / [`control`] — the word-level building blocks, exposed for
//!   user circuits.
//!
//! Generators intentionally use *textbook* gate-level structures (AND/OR
//! full adders, three-AND multiplexers) rather than multiplicative-
//! complexity-optimal forms: they are the unoptimized starting points of
//! the paper's experiments. Substitutions relative to the paper's exact
//! benchmark files are documented in DESIGN.md §3.
//!
//! # Examples
//!
//! ```
//! use xag_circuits::epfl::{epfl_suite, Scale};
//!
//! let suite = epfl_suite(Scale::Reduced);
//! let adder = suite.iter().find(|b| b.name == "adder").expect("present");
//! assert_eq!(adder.xag.num_ands(), 94); // 3 textbook ANDs per bit − folding
//! ```

pub mod aes;
pub mod arith;
pub mod control;
pub mod des;
pub mod epfl;
pub mod hash;
pub mod keccak;
pub mod mpc;
pub mod parse;

pub use parse::{parse_circuit, CircuitFormat, ParseError};
