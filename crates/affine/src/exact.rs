//! Exact affine classification for functions of up to four variables.
//!
//! The space of `n ≤ 4`-variable functions has at most 65 536 members, so we
//! flood every affine orbit once per variable count and store, per function,
//! its orbit representative plus a predecessor pointer for operation-path
//! reconstruction. Tables are built lazily and shared process-wide.

use std::collections::VecDeque;
use std::sync::OnceLock;

use xag_tt::{AffineOp, Tt};

use crate::generators::generators;
use crate::Classification;

/// Largest variable count handled by the exact tables.
pub const MAX_EXACT_VARS: usize = 4;

struct Table {
    /// Representative truth table per function.
    rep: Vec<u16>,
    /// Predecessor function on the BFS path toward the representative.
    parent: Vec<u16>,
    /// Index into `generators(n)` of the op with `op(parent) = function`;
    /// `u8::MAX` marks representatives themselves.
    op: Vec<u8>,
    gens: Vec<AffineOp>,
    classes: usize,
}

fn build_table(n: usize) -> Table {
    let size = 1usize << (1usize << n);
    let gens = generators(n);
    let mut rep = vec![u16::MAX; size];
    let mut parent = vec![0u16; size];
    let mut op = vec![u8::MAX; size];
    let mut visited = vec![false; size];
    let mut classes = 0;

    // Scan functions in increasing order; the first unvisited function of an
    // orbit is automatically its lexicographic minimum.
    for f_bits in 0..size {
        if visited[f_bits] {
            continue;
        }
        classes += 1;
        visited[f_bits] = true;
        rep[f_bits] = f_bits as u16;
        op[f_bits] = u8::MAX;
        let mut queue = VecDeque::new();
        queue.push_back(f_bits);
        while let Some(g_bits) = queue.pop_front() {
            let g = Tt::from_bits(g_bits as u64, n);
            for (k, &gen) in gens.iter().enumerate() {
                let h = gen.apply(g).bits() as usize;
                if !visited[h] {
                    visited[h] = true;
                    rep[h] = f_bits as u16;
                    parent[h] = g_bits as u16;
                    op[h] = k as u8;
                    queue.push_back(h);
                }
            }
        }
    }
    Table {
        rep,
        parent,
        op,
        gens,
        classes,
    }
}

fn table(n: usize) -> &'static Table {
    static TABLES: [OnceLock<Table>; 5] = [
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
        OnceLock::new(),
    ];
    assert!(n <= MAX_EXACT_VARS, "exact tables cover up to 4 variables");
    TABLES[n].get_or_init(|| build_table(n))
}

/// Exactly classifies a function of at most four variables.
///
/// # Panics
///
/// Panics if `f` has more than four variables.
pub fn classify(f: Tt) -> Classification {
    let n = f.vars();
    let t = table(n);
    let f_bits = f.bits() as usize;
    let rep = Tt::from_bits(t.rep[f_bits] as u64, n);
    // Walk predecessor pointers: each stored op maps parent → function, and
    // every affine op is an involution, so the same op maps function →
    // parent. Collecting ops root-ward yields the f → representative path.
    let mut ops = Vec::new();
    let mut cur = f_bits;
    while t.op[cur] != u8::MAX {
        ops.push(t.gens[t.op[cur] as usize]);
        cur = t.parent[cur] as usize;
    }
    debug_assert_eq!(cur, t.rep[f_bits] as usize);
    Classification {
        representative: rep,
        ops,
        exact: true,
    }
}

/// Number of affine classes of `n`-variable functions (`n ≤ 4`).
///
/// # Panics
///
/// Panics if `n > 4`.
pub fn count_classes(n: usize) -> usize {
    table(n).classes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_vars_has_one_class() {
        // Constants 0 and 1 are related by output complement.
        assert_eq!(count_classes(0), 1);
    }

    #[test]
    fn representatives_are_orbit_minima() {
        // For every 3-variable function, the representative is ≤ the
        // function and classification is idempotent.
        for bits in 0..256u64 {
            let f = Tt::from_bits(bits, 3);
            let c = classify(f);
            assert!(c.representative.bits() <= bits);
            let c2 = classify(c.representative);
            assert_eq!(c2.representative, c.representative);
            assert!(c2.ops.is_empty());
        }
    }

    #[test]
    fn replay_reaches_representative_for_all_4var_functions() {
        // Spot-check replay on a stride through all 65 536 functions.
        for bits in (0..65_536u64).step_by(17) {
            let f = Tt::from_bits(bits, 4);
            let c = classify(f);
            assert_eq!(AffineOp::apply_all(f, &c.ops), c.representative);
        }
    }

    #[test]
    fn class_members_share_representatives() {
        let f = Tt::from_bits(0xcafe, 4);
        let base = classify(f).representative;
        for gen in generators(4) {
            let g = gen.apply(f);
            assert_eq!(classify(g).representative, base, "{gen:?}");
        }
    }
}
