//! Heuristic affine classification for five- and six-variable functions.
//!
//! The exact orbit of a 6-variable function under the affine group is far
//! too large to enumerate (the group has ≈ 2×10¹³ elements), so — like the
//! paper, which runs the Miller–Soeken spectral classifier under an
//! iteration limit — we search heuristically:
//!
//! 1. the *linear part* of the function (constant and degree-1 ANF terms) is
//!    normalized away exactly, using disjoint translations and the output
//!    complement; this alone maps every affine function to the zero
//!    representative;
//! 2. a deterministic beam search over the remaining generators (input
//!    complements, translations, swaps) minimizes the linear-normalized
//!    truth table lexicographically, bounded by an iteration budget.
//!
//! The result is always a valid class member reachable from the input (the
//! operation sequence is returned and replayed in tests); when the budget
//! runs out before the search stabilizes, the classification is still
//! sound, merely a coarser canonical form (`exact == false` in all
//! heuristic cases).

use std::collections::HashSet;

use xag_tt::{AffineOp, Tt};

use crate::{Classification, ClassifyConfig};

#[derive(Clone)]
struct Candidate {
    tt: Tt,
    rank: (u32, u64),
    ops: Vec<AffineOp>,
}

impl Candidate {
    fn new(tt: Tt, ops: Vec<AffineOp>) -> Self {
        Self {
            tt,
            rank: rank(tt),
            ops,
        }
    }
}

/// Search ranking: prefer sparse ANFs (fewer monomials), then
/// lexicographically small truth tables. Sparser forms are closer to the
/// standard representatives and make the search landscape smoother than raw
/// lexicographic comparison.
fn rank(tt: Tt) -> (u32, u64) {
    (tt.anf().count_ones(), tt.bits())
}

/// Removes the constant and all linear terms from the ANF of `tt`,
/// appending the corresponding operations to `ops`.
fn normalize_linear(mut tt: Tt, ops: &mut Vec<AffineOp>) -> Tt {
    let anf = tt.anf();
    for i in 0..tt.vars() {
        if (anf >> (1u64 << i)) & 1 == 1 {
            let op = AffineOp::XorOutput(i);
            tt = op.apply(tt);
            ops.push(op);
        }
    }
    if anf & 1 == 1 {
        tt = !tt;
        ops.push(AffineOp::FlipOutput);
    }
    tt
}

/// Generators used on linear-normalized functions: the linear output part is
/// re-normalized after each application, so disjoint translations and the
/// output complement need not be searched explicitly.
fn structural_generators(n: usize) -> Vec<AffineOp> {
    let mut gens = Vec::new();
    for i in 0..n {
        gens.push(AffineOp::FlipInput(i));
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                gens.push(AffineOp::Translate { dst: i, src: j });
            }
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            gens.push(AffineOp::Swap(i, j));
        }
    }
    gens
}

/// Classifies a function by linear normalization plus beam search.
pub fn classify(f: Tt, config: &ClassifyConfig) -> Classification {
    let gens = structural_generators(f.vars());
    let width = config.beam_width.max(1);

    let mut initial_ops = Vec::new();
    let start = normalize_linear(f, &mut initial_ops);
    let mut best = Candidate::new(start, initial_ops);
    let mut beam = vec![best.clone()];
    let mut seen: HashSet<Tt> = HashSet::new();
    seen.insert(start);
    let mut iterations = 0usize;
    let mut stale = 0usize;

    'outer: while stale < config.patience && iterations < config.iteration_limit {
        let mut expansions: Vec<Candidate> = Vec::new();
        for cand in &beam {
            for &gen in &gens {
                iterations += 1;
                let mut ops = cand.ops.clone();
                ops.push(gen);
                let tt = normalize_linear(gen.apply(cand.tt), &mut ops);
                if seen.insert(tt) {
                    expansions.push(Candidate::new(tt, ops));
                }
                if iterations >= config.iteration_limit {
                    if expansions.is_empty() {
                        break 'outer;
                    }
                    break;
                }
            }
        }
        if expansions.is_empty() {
            break;
        }
        expansions.sort_by(|a, b| a.rank.cmp(&b.rank).then(a.ops.len().cmp(&b.ops.len())));
        expansions.truncate(width);
        if expansions[0].rank < best.rank {
            best = expansions[0].clone();
            stale = 0;
        } else {
            stale += 1;
        }
        beam = expansions;
    }

    Classification {
        representative: best.tt,
        ops: best.ops,
        exact: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify_default(f: Tt) -> Classification {
        classify(f, &ClassifyConfig::default())
    }

    #[test]
    fn replay_is_valid() {
        for bits in [
            0xdead_beef_cafe_f00du64,
            0x0123_4567_89ab_cdef,
            0x8000_0000_0000_0001,
            0x6996_9669_9669_6996,
        ] {
            let f = Tt::from_bits(bits, 6);
            let c = classify_default(f);
            assert_eq!(AffineOp::apply_all(f, &c.ops), c.representative);
            assert!(!c.exact);
        }
    }

    #[test]
    fn affine_functions_reach_zero() {
        let parity6 = Tt::from_fn(6, |m| m.count_ones() % 2 == 1);
        let c = classify_default(parity6);
        assert!(c.representative.is_zero());
        let mixed = Tt::from_fn(5, |m| ((m >> 1) ^ (m >> 4) ^ 1) & 1 == 1);
        assert!(classify_default(mixed).representative.is_zero());
        assert!(classify_default(Tt::one(6)).representative.is_zero());
    }

    #[test]
    fn representative_has_no_linear_part() {
        let f = Tt::from_bits(0x1ee7_5eed_0b57_ac1e, 6);
        let c = classify_default(f);
        let anf = c.representative.anf();
        assert_eq!(anf & 1, 0, "constant term survived");
        for i in 0..6 {
            assert_eq!((anf >> (1u64 << i)) & 1, 0, "linear term x{i} survived");
        }
    }

    #[test]
    fn classification_is_idempotent() {
        let f = Tt::from_bits(0x1ee7_5eed_0b57_ac1e, 6);
        let c = classify_default(f);
        let c2 = classify_default(c.representative);
        assert_eq!(c2.representative, c.representative);
    }

    #[test]
    fn generator_images_mostly_share_representatives() {
        // Heuristic consistency: for a sample function, most single-generator
        // images classify to the same representative.
        let f = Tt::from_bits(0x0007_0013_0037_1248, 6);
        let base = classify_default(f).representative;
        let gens = crate::generators::generators(6);
        let matches = gens
            .iter()
            .filter(|&&gen| classify_default(gen.apply(f)).representative == base)
            .count();
        // The heuristic cannot guarantee full class consistency (neither can
        // the paper's iteration-limited spectral classifier); we require a
        // meaningful fraction of single-step neighbours to agree.
        assert!(
            matches * 3 >= gens.len(),
            "only {matches}/{} generator images agreed",
            gens.len()
        );
    }

    #[test]
    fn iteration_limit_is_respected() {
        let tight = ClassifyConfig {
            beam_width: 4,
            iteration_limit: 120,
            patience: 2,
        };
        let f = Tt::from_bits(0xfedc_ba98_7654_3210, 6);
        let c = classify(f, &tight);
        assert_eq!(AffineOp::apply_all(f, &c.ops), c.representative);
    }

    #[test]
    fn and_of_six_vars_classifies_compactly() {
        // x0∧…∧x5 is already linear-free; its representative should be no
        // larger than itself.
        let and6 = Tt::from_fn(6, |m| m == 63);
        let c = classify_default(and6);
        // AND6 has a single ANF monomial; no class member can be sparser, so
        // the search must keep an equally sparse representative.
        assert_eq!(c.representative.anf().count_ones(), 1);
        assert_eq!(AffineOp::apply_all(and6, &c.ops), c.representative);
    }
}
