//! Affine classification of Boolean functions.
//!
//! Two Boolean functions are *affine-equivalent* if one can be obtained from
//! the other by a sequence of the five operations of the paper's
//! Definition 2.1: variable swaps, input complements, output complement,
//! translations `x_i ← x_i ⊕ x_j` and disjoint translations `f ← f ⊕ x_i`.
//! Multiplicative complexity is invariant under all five, so the DAC'19 flow
//! only needs MC-optimal circuits for one *representative* per class
//! (1, 2, 3, 8, 48 and 150 357 classes for 1–6 variables).
//!
//! This crate computes representatives and the operation sequence reaching
//! them:
//!
//! * **Exactly** for functions of up to four variables, by flooding the
//!   entire function space once (the representative is the lexicographically
//!   smallest truth table in the orbit);
//! * **Heuristically** for five and six variables, by a deterministic beam
//!   search over the affine generators with an iteration limit — mirroring
//!   the paper, which also runs its spectral classifier under an iteration
//!   limit and omits the classes it cannot finish.
//!
//! The returned [`Classification`] is always *sound*: replaying
//! `ops` on the input function yields `representative` (this is checked by a
//! debug assertion and by the property tests). Heuristic classification may
//! split one true class into a few pseudo-classes, which only reduces
//! database sharing downstream, never correctness.
//!
//! # Examples
//!
//! ```
//! use xag_affine::AffineClassifier;
//! use xag_tt::{AffineOp, Tt};
//!
//! let mut cls = AffineClassifier::new();
//! // The majority function is affine-equivalent to AND (paper Example 2.3).
//! let maj = cls.classify(Tt::from_bits(0xe8, 3));
//! let and = cls.classify(Tt::from_bits(0x88, 3));
//! assert_eq!(maj.representative, and.representative);
//! assert_eq!(AffineOp::apply_all(Tt::from_bits(0xe8, 3), &maj.ops), maj.representative);
//! ```

use xag_tt::hash::FxHashMap;
use xag_tt::{AffineOp, Tt};

mod beam;
mod exact;
mod generators;

pub use generators::generators;

/// Result of classifying a function: its class representative and the
/// operation sequence mapping the function onto the representative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// The class representative (for the exact classifier, the
    /// lexicographically smallest truth table in the affine orbit).
    pub representative: Tt,
    /// Operations such that applying them to the classified function, in
    /// order, yields `representative`.
    pub ops: Vec<AffineOp>,
    /// True iff the representative is the exact orbit minimum (always the
    /// case for functions of at most four variables).
    pub exact: bool,
}

/// Tuning knobs for the heuristic (5- and 6-variable) classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifyConfig {
    /// Number of candidate functions kept per beam-search round.
    pub beam_width: usize,
    /// Upper bound on generator applications before the search gives up and
    /// returns the best representative found so far (the paper uses an
    /// iteration limit of 100 000 on its classification routine).
    pub iteration_limit: usize,
    /// Rounds without improvement before the search stops early.
    pub patience: usize,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        Self {
            beam_width: 8,
            iteration_limit: 20_000,
            patience: 2,
        }
    }
}

/// Affine classifier with a per-instance memoization cache.
///
/// The cache mirrors the paper's §4.1: "we maintain a cache of computed
/// representatives and affine operations for all considered Boolean
/// functions during rewriting", so no function is classified twice.
#[derive(Debug, Clone, Default)]
pub struct AffineClassifier {
    config: ClassifyConfig,
    cache: FxHashMap<Tt, Classification>,
    hits: u64,
    misses: u64,
}

impl AffineClassifier {
    /// Creates a classifier with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a classifier with a custom configuration.
    pub fn with_config(config: ClassifyConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// Classifies `f`, returning its representative and the operations
    /// mapping `f` to it. Results are memoized, and classification is
    /// idempotent: the representative always classifies to itself.
    pub fn classify(&mut self, f: Tt) -> Classification {
        if let Some(c) = self.cache.get(&f) {
            self.hits += 1;
            return c.clone();
        }
        self.misses += 1;
        let c = if f.vars() <= exact::MAX_EXACT_VARS {
            exact::classify(f)
        } else {
            // The beam search is not naturally idempotent (a restart from
            // the found representative may descend further); iterate to a
            // fixpoint and pin the final representative in the cache.
            let mut c = beam::classify(f, &self.config);
            for _ in 0..8 {
                let next = beam::classify(c.representative, &self.config);
                if next.representative == c.representative {
                    break;
                }
                c.ops.extend(next.ops);
                c.representative = next.representative;
            }
            self.cache.insert(
                c.representative,
                Classification {
                    representative: c.representative,
                    ops: Vec::new(),
                    exact: false,
                },
            );
            c
        };
        debug_assert_eq!(
            AffineOp::apply_all(f, &c.ops),
            c.representative,
            "classification replay mismatch"
        );
        self.cache.insert(f, c.clone());
        c
    }

    /// `(cache hits, cache misses)` since construction.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Clones the classifier for a worker thread: the fork keeps the whole
    /// memoization cache but starts its hit/miss statistics at zero, so a
    /// later [`AffineClassifier::absorb`] adds exactly the work the fork
    /// did (instead of double-counting the parent's history).
    pub fn fork(&self) -> AffineClassifier {
        AffineClassifier {
            config: self.config,
            cache: self.cache.clone(),
            hits: 0,
            misses: 0,
        }
    }

    /// Merges a fork's memoized results into this classifier. Both compute
    /// identical results for identical inputs (the search is
    /// deterministic), so merge order does not matter; existing entries
    /// are kept. Used to fold worker-local classifiers back into a shared
    /// one after a parallel rewriting round.
    pub fn absorb(&mut self, other: AffineClassifier) {
        for (f, c) in other.cache {
            self.cache.entry(f).or_insert(c);
        }
        self.hits = self.hits.saturating_add(other.hits);
        self.misses = self.misses.saturating_add(other.misses);
    }

    /// Number of distinct affine classes among all functions of `n ≤ 4`
    /// variables (computed from the exact tables).
    ///
    /// # Panics
    ///
    /// Panics if `n > 4`.
    pub fn count_classes(n: usize) -> usize {
        exact::count_classes(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_class_counts() {
        // The paper quotes 1, 2, 3, 8 classes for 1..4 variables.
        assert_eq!(AffineClassifier::count_classes(1), 1);
        assert_eq!(AffineClassifier::count_classes(2), 2);
        assert_eq!(AffineClassifier::count_classes(3), 3);
        assert_eq!(AffineClassifier::count_classes(4), 8);
    }

    #[test]
    fn majority_and_and_share_a_class() {
        let mut cls = AffineClassifier::new();
        let maj = cls.classify(Tt::from_bits(0xe8, 3));
        let and = cls.classify(Tt::from_bits(0x88, 3));
        assert_eq!(maj.representative, and.representative);
        assert!(maj.exact);
    }

    #[test]
    fn affine_functions_map_to_zero() {
        let mut cls = AffineClassifier::new();
        for n in 1..=4usize {
            let parity = Tt::from_fn(n, |m| m.count_ones() % 2 == 1);
            let c = cls.classify(parity);
            assert!(c.representative.is_zero(), "n={n}");
        }
    }

    #[test]
    fn replay_is_checked_for_wide_functions() {
        let mut cls = AffineClassifier::new();
        let f = Tt::from_bits(0xdead_beef_0bad_f00d, 6);
        let c = cls.classify(f);
        assert_eq!(AffineOp::apply_all(f, &c.ops), c.representative);
        // The search never returns a denser ANF than the input's.
        assert!(c.representative.anf().count_ones() <= f.anf().count_ones());
    }

    #[test]
    fn cache_hits_are_counted() {
        let mut cls = AffineClassifier::new();
        let f = Tt::from_bits(0xe8, 3);
        let _ = cls.classify(f);
        let _ = cls.classify(f);
        let (hits, misses) = cls.cache_stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
    }
}
