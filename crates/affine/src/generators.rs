use xag_tt::AffineOp;

/// The generator set of the affine group action used by both classifiers:
/// output complement, input complements, disjoint translations, pairwise
/// translations, and swaps (swaps are products of three translations but are
/// included to shorten operation sequences).
pub fn generators(n: usize) -> Vec<AffineOp> {
    let mut gens = vec![AffineOp::FlipOutput];
    for i in 0..n {
        gens.push(AffineOp::FlipInput(i));
        gens.push(AffineOp::XorOutput(i));
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                gens.push(AffineOp::Translate { dst: i, src: j });
            }
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            gens.push(AffineOp::Swap(i, j));
        }
    }
    gens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_count() {
        // 1 + 2n + n(n-1) + n(n-1)/2
        assert_eq!(generators(3).len(), 1 + 6 + 6 + 3);
        assert_eq!(generators(6).len(), 1 + 12 + 30 + 15);
    }
}
