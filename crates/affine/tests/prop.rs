//! Property-based tests for affine classification.

use proptest::prelude::*;
use xag_affine::{AffineClassifier, ClassifyConfig};
use xag_tt::{AffineOp, Tt};

fn arb_tt() -> impl Strategy<Value = Tt> {
    (any::<u64>(), 1usize..=6).prop_map(|(bits, vars)| Tt::from_bits(bits, vars))
}

fn arb_op(vars: usize) -> impl Strategy<Value = AffineOp> {
    prop_oneof![
        (0..vars, 0..vars)
            .prop_filter("distinct", |(i, j)| i != j)
            .prop_map(|(i, j)| AffineOp::Swap(i, j)),
        (0..vars).prop_map(AffineOp::FlipInput),
        Just(AffineOp::FlipOutput),
        (0..vars, 0..vars)
            .prop_filter("distinct", |(i, j)| i != j)
            .prop_map(|(dst, src)| AffineOp::Translate { dst, src }),
        (0..vars).prop_map(AffineOp::XorOutput),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replay_always_reaches_the_representative(f in arb_tt()) {
        let mut cls = AffineClassifier::new();
        let c = cls.classify(f);
        prop_assert_eq!(AffineOp::apply_all(f, &c.ops), c.representative);
    }

    #[test]
    fn classification_is_idempotent(f in arb_tt()) {
        let mut cls = AffineClassifier::new();
        let c = cls.classify(f);
        let c2 = cls.classify(c.representative);
        prop_assert_eq!(c2.representative, c.representative);
    }

    #[test]
    fn exact_classifier_is_class_invariant(
        bits in any::<u16>(),
        ops in proptest::collection::vec(arb_op(4), 1..6),
    ) {
        // For ≤ 4 variables classification is exact: any chain of affine
        // operations lands in the same class.
        let f = Tt::from_bits(bits as u64, 4);
        let g = AffineOp::apply_all(f, &ops);
        let mut cls = AffineClassifier::new();
        prop_assert_eq!(cls.classify(f).representative, cls.classify(g).representative);
    }

    #[test]
    fn tight_budgets_stay_sound(f in arb_tt(), limit in 10usize..500) {
        let mut cls = AffineClassifier::with_config(ClassifyConfig {
            beam_width: 2,
            iteration_limit: limit,
            patience: 1,
        });
        let c = cls.classify(f);
        prop_assert_eq!(AffineOp::apply_all(f, &c.ops), c.representative);
    }

    #[test]
    fn representative_is_linear_free_for_wide_functions(bits in any::<u64>()) {
        let f = Tt::from_bits(bits, 6);
        let mut cls = AffineClassifier::new();
        let rep = cls.classify(f).representative;
        let anf = rep.anf();
        prop_assert_eq!(anf & 1, 0);
        for i in 0..6 {
            prop_assert_eq!((anf >> (1u64 << i)) & 1, 0, "linear term x{} survived", i);
        }
    }
}
