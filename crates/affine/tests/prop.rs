//! Randomized property tests for affine classification, driven by a
//! fixed-seed deterministic generator.

use mc_rng::Rng;
use xag_affine::{AffineClassifier, ClassifyConfig};
use xag_tt::{AffineOp, Tt};

fn arb_tt(rng: &mut Rng) -> Tt {
    let vars = rng.gen_range(1..7);
    Tt::from_bits(rng.next_u64(), vars)
}

fn arb_op(rng: &mut Rng, vars: usize) -> AffineOp {
    loop {
        match rng.gen_range(0..5) {
            0 => {
                let i = rng.gen_range(0..vars);
                let j = rng.gen_range(0..vars);
                if i != j {
                    return AffineOp::Swap(i, j);
                }
            }
            1 => return AffineOp::FlipInput(rng.gen_range(0..vars)),
            2 => return AffineOp::FlipOutput,
            3 => {
                let dst = rng.gen_range(0..vars);
                let src = rng.gen_range(0..vars);
                if dst != src {
                    return AffineOp::Translate { dst, src };
                }
            }
            _ => return AffineOp::XorOutput(rng.gen_range(0..vars)),
        }
    }
}

#[test]
fn replay_always_reaches_the_representative() {
    let mut rng = Rng::seed_from_u64(0xAF01);
    for _ in 0..64 {
        let f = arb_tt(&mut rng);
        let mut cls = AffineClassifier::new();
        let c = cls.classify(f);
        assert_eq!(AffineOp::apply_all(f, &c.ops), c.representative, "{f:?}");
    }
}

#[test]
fn classification_is_idempotent() {
    let mut rng = Rng::seed_from_u64(0xAF02);
    for _ in 0..64 {
        let f = arb_tt(&mut rng);
        let mut cls = AffineClassifier::new();
        let c = cls.classify(f);
        let c2 = cls.classify(c.representative);
        assert_eq!(c2.representative, c.representative, "{f:?}");
    }
}

#[test]
fn exact_classifier_is_class_invariant() {
    // For ≤ 4 variables classification is exact: any chain of affine
    // operations lands in the same class.
    let mut rng = Rng::seed_from_u64(0xAF03);
    for _ in 0..64 {
        let f = Tt::from_bits(rng.next_u64() & 0xffff, 4);
        let ops: Vec<AffineOp> = (0..rng.gen_range(1..6))
            .map(|_| arb_op(&mut rng, 4))
            .collect();
        let g = AffineOp::apply_all(f, &ops);
        let mut cls = AffineClassifier::new();
        assert_eq!(
            cls.classify(f).representative,
            cls.classify(g).representative,
            "{f:?} {ops:?}"
        );
    }
}

#[test]
fn tight_budgets_stay_sound() {
    let mut rng = Rng::seed_from_u64(0xAF04);
    for _ in 0..64 {
        let f = arb_tt(&mut rng);
        let limit = rng.gen_range(10..500);
        let mut cls = AffineClassifier::with_config(ClassifyConfig {
            beam_width: 2,
            iteration_limit: limit,
            patience: 1,
        });
        let c = cls.classify(f);
        assert_eq!(
            AffineOp::apply_all(f, &c.ops),
            c.representative,
            "{f:?} limit {limit}"
        );
    }
}

#[test]
fn representative_is_linear_free_for_wide_functions() {
    let mut rng = Rng::seed_from_u64(0xAF05);
    for _ in 0..64 {
        let f = Tt::from_bits(rng.next_u64(), 6);
        let mut cls = AffineClassifier::new();
        let rep = cls.classify(f).representative;
        let anf = rep.anf();
        assert_eq!(anf & 1, 0, "{f:?}");
        for i in 0..6 {
            assert_eq!(
                (anf >> (1u64 << i)) & 1,
                0,
                "{f:?}: linear term x{i} survived"
            );
        }
    }
}
