//! Randomized property tests for the truth-table kernel, driven by a
//! fixed-seed deterministic generator (every failure reproduces from the
//! seed in the assertion message).

use mc_rng::Rng;
use xag_tt::{AffineOp, Tt};

fn arb_tt(rng: &mut Rng) -> Tt {
    let vars = rng.gen_range(1..7);
    Tt::from_bits(rng.next_u64(), vars)
}

fn arb_op(rng: &mut Rng, vars: usize) -> AffineOp {
    loop {
        match rng.gen_range(0..5) {
            0 => {
                let i = rng.gen_range(0..vars);
                let j = rng.gen_range(0..vars);
                if i != j {
                    return AffineOp::Swap(i, j);
                }
            }
            1 => return AffineOp::FlipInput(rng.gen_range(0..vars)),
            2 => return AffineOp::FlipOutput,
            3 => {
                let dst = rng.gen_range(0..vars);
                let src = rng.gen_range(0..vars);
                if dst != src {
                    return AffineOp::Translate { dst, src };
                }
            }
            _ => return AffineOp::XorOutput(rng.gen_range(0..vars)),
        }
    }
}

#[test]
fn anf_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x7701);
    for _ in 0..256 {
        let t = arb_tt(&mut rng);
        assert_eq!(Tt::from_anf(t.anf(), t.vars()), t, "{t:?}");
    }
}

#[test]
fn walsh_parseval() {
    let mut rng = Rng::seed_from_u64(0x7702);
    for _ in 0..256 {
        let t = arb_tt(&mut rng);
        let s = t.walsh_spectrum();
        let sum: i64 = s.iter().map(|&v| (v as i64) * (v as i64)).sum();
        assert_eq!(sum, 1i64 << (2 * t.vars()), "{t:?}");
    }
}

#[test]
fn shannon_reconstruction() {
    let mut rng = Rng::seed_from_u64(0x7703);
    for _ in 0..256 {
        let t = arb_tt(&mut rng);
        let i = rng.gen_range(0..t.vars());
        let xi = Tt::projection(i, t.vars());
        assert_eq!(
            (xi & t.cofactor1(i)) | (!xi & t.cofactor0(i)),
            t,
            "{t:?}/{i}"
        );
    }
}

#[test]
fn ops_are_involutions() {
    let mut rng = Rng::seed_from_u64(0x7704);
    for _ in 0..256 {
        let t = arb_tt(&mut rng);
        let vars = t.vars().max(2);
        let t = t.extend_to(vars);
        let op = arb_op(&mut rng, vars);
        assert_eq!(op.apply(op.apply(t)), t, "{t:?} {op:?}");
    }
}

#[test]
fn ops_preserve_weight_structure() {
    let mut rng = Rng::seed_from_u64(0x7705);
    for _ in 0..256 {
        let t = arb_tt(&mut rng);
        let vars = t.vars().max(2);
        let t = t.extend_to(vars);
        let ops: Vec<AffineOp> = (0..rng.gen_range(0..8))
            .map(|_| arb_op(&mut rng, vars))
            .collect();
        // Affine ops preserve algebraic degree for degree ≥ 2 (XOR-ing
        // linear terms cannot change higher-order ANF coefficients).
        let g = AffineOp::apply_all(t, &ops);
        if t.degree() >= 2 {
            assert_eq!(g.degree(), t.degree(), "{t:?} {ops:?}");
        } else {
            assert!(g.degree() <= 1, "{t:?} {ops:?}");
        }
        assert_eq!(AffineOp::undo_all(g, &ops), t, "{t:?} {ops:?}");
    }
}

#[test]
fn support_shrink_preserves_semantics() {
    let mut rng = Rng::seed_from_u64(0x7706);
    for _ in 0..256 {
        let t = arb_tt(&mut rng);
        let (g, map) = t.shrink_to_support();
        assert_eq!(g.vars(), map.len(), "{t:?}");
        for m in 0..(1u64 << t.vars()) {
            let mut reduced = 0u64;
            for (k, &orig) in map.iter().enumerate() {
                reduced |= ((m >> orig) & 1) << k;
            }
            assert_eq!(t.eval(m), g.eval(reduced), "{t:?} minterm {m}");
        }
    }
}
