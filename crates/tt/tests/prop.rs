//! Property-based tests for the truth-table kernel.

use proptest::prelude::*;
use xag_tt::{AffineOp, Tt};

fn arb_tt() -> impl Strategy<Value = Tt> {
    (any::<u64>(), 1usize..=6).prop_map(|(bits, vars)| Tt::from_bits(bits, vars))
}

fn arb_op(vars: usize) -> impl Strategy<Value = AffineOp> {
    let v = vars;
    prop_oneof![
        (0..v, 0..v)
            .prop_filter("distinct", |(i, j)| i != j)
            .prop_map(|(i, j)| AffineOp::Swap(i, j)),
        (0..v).prop_map(AffineOp::FlipInput),
        Just(AffineOp::FlipOutput),
        (0..v, 0..v)
            .prop_filter("distinct", |(i, j)| i != j)
            .prop_map(|(dst, src)| AffineOp::Translate { dst, src }),
        (0..v).prop_map(AffineOp::XorOutput),
    ]
}

proptest! {
    #[test]
    fn anf_roundtrip(t in arb_tt()) {
        prop_assert_eq!(Tt::from_anf(t.anf(), t.vars()), t);
    }

    #[test]
    fn walsh_parseval(t in arb_tt()) {
        let s = t.walsh_spectrum();
        let sum: i64 = s.iter().map(|&v| (v as i64) * (v as i64)).sum();
        prop_assert_eq!(sum, 1i64 << (2 * t.vars()));
    }

    #[test]
    fn shannon_reconstruction(t in arb_tt(), i in 0usize..6) {
        let i = i % t.vars();
        let xi = Tt::projection(i, t.vars());
        prop_assert_eq!((xi & t.cofactor1(i)) | (!xi & t.cofactor0(i)), t);
    }

    #[test]
    fn ops_are_involutions(t in arb_tt().prop_flat_map(|t| {
        let vars = t.vars().max(2);
        let t = t.extend_to(vars);
        arb_op(vars).prop_map(move |op| (t, op))
    })) {
        let (t, op) = t;
        prop_assert_eq!(op.apply(op.apply(t)), t);
    }

    #[test]
    fn ops_preserve_weight_structure(t in arb_tt().prop_flat_map(|t| {
        let vars = t.vars().max(2);
        let t = t.extend_to(vars);
        proptest::collection::vec(arb_op(vars), 0..8).prop_map(move |ops| (t, ops))
    })) {
        // Affine ops preserve algebraic degree for degree ≥ 2 (XOR-ing
        // linear terms cannot change higher-order ANF coefficients).
        let (t, ops) = t;
        let g = AffineOp::apply_all(t, &ops);
        if t.degree() >= 2 {
            prop_assert_eq!(g.degree(), t.degree());
        } else {
            prop_assert!(g.degree() <= 1);
        }
        prop_assert_eq!(AffineOp::undo_all(g, &ops), t);
    }

    #[test]
    fn support_shrink_preserves_semantics(t in arb_tt()) {
        let (g, map) = t.shrink_to_support();
        prop_assert_eq!(g.vars(), map.len());
        for m in 0..(1u64 << t.vars()) {
            let mut reduced = 0u64;
            for (k, &orig) in map.iter().enumerate() {
                reduced |= ((m >> orig) & 1) << k;
            }
            prop_assert_eq!(t.eval(m), g.eval(reduced));
        }
    }
}
