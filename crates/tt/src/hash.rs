//! A fast, non-cryptographic hasher for interior maps.
//!
//! The rewrite hot path hashes millions of tiny keys — 8-byte strash keys,
//! `u64` truth tables, dense `u32` node ids. The standard library's default
//! SipHash-1-3 is keyed and HashDoS-resistant, but on 8–16-byte keys the
//! per-hash setup dominates and the resistance buys nothing: every map it
//! feeds is interior to the optimizer, keyed by data we generate ourselves
//! (structural hashes, canonical truth tables), never by attacker-chosen
//! input. [`FxHasher`] is the rustc-style multiply-rotate hash — one rotate,
//! one xor, one multiply per word — which is the conventional replacement for
//! exactly this situation.
//!
//! # Examples
//!
//! ```
//! use xag_tt::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(0xe8, "maj3");
//! assert_eq!(m.get(&0xe8), Some(&"maj3"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Builder producing default-initialized [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Multiplicative constant: `2^64 / φ`, the classic Fibonacci-hashing seed.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style FxHash state.
///
/// Each ingested word updates the state as
/// `hash = (hash.rotate_left(5) ^ word) * SEED`. This is not collision- or
/// DoS-resistant; use it only for maps whose keys the program itself
/// produces.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Dense node ids are the common key shape; neighbours must not
        // collide wholesale.
        let hashes: Vec<u64> = (0u32..1000).map(|i| hash_of(&i)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), hashes.len());
    }

    #[test]
    fn byte_writes_cover_remainder() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let full = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(full, h2.finish());
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        let mut s: FxHashSet<u32> = FxHashSet::default();
        for i in 0..100 {
            m.insert(i, i * 2);
            s.insert(i);
        }
        assert_eq!(m.len(), 100);
        assert!((0..100).all(|i| m[&i] == i * 2 && s.contains(&i)));
    }
}
