use crate::VarCountError;

/// Maximum number of variables representable by [`Tt`].
pub const MAX_VARS: usize = 6;

/// Truth tables of the six variable projections `x0..x5`.
///
/// `PROJECTIONS[i]` has bit `m` set iff `(m >> i) & 1 == 1`.
const PROJECTIONS: [u64; 6] = [
    0xaaaa_aaaa_aaaa_aaaa,
    0xcccc_cccc_cccc_cccc,
    0xf0f0_f0f0_f0f0_f0f0,
    0xff00_ff00_ff00_ff00,
    0xffff_0000_ffff_0000,
    0xffff_ffff_0000_0000,
];

/// A complete truth table of a Boolean function with up to six variables.
///
/// The entire table lives in one `u64`: bit `m` stores `f(m)` where variable
/// `i` of minterm `m` is `(m >> i) & 1`. This is the representation the DAC'19
/// paper uses for cut functions ("truth tables for 6-input functions can be
/// efficiently stored as a single 64-bit unsigned integer").
///
/// Bits above `2^vars` are always kept zero, so `==` is semantic equality for
/// tables with the same variable count.
///
/// # Examples
///
/// ```
/// use xag_tt::Tt;
///
/// let a = Tt::projection(0, 2);
/// let b = Tt::projection(1, 2);
/// assert_eq!((a & b).bits(), 0x8); // AND of two variables
/// assert_eq!((a ^ b).bits(), 0x6); // XOR of two variables
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tt {
    bits: u64,
    vars: u8,
}

impl core::fmt::Debug for Tt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Tt({:#018x}, {} vars)", self.bits, self.vars)
    }
}

impl core::fmt::Display for Tt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let digits = (1usize << self.vars).div_ceil(4);
        write!(f, "{:0width$x}", self.bits, width = digits.max(1))
    }
}

impl core::fmt::LowerHex for Tt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl core::fmt::Binary for Tt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Binary::fmt(&self.bits, f)
    }
}

impl Tt {
    /// Full bit mask for a table over `vars` variables.
    #[inline]
    pub(crate) fn mask(vars: usize) -> u64 {
        if vars >= MAX_VARS {
            u64::MAX
        } else {
            (1u64 << (1usize << vars)) - 1
        }
    }

    /// Creates a truth table from raw bits.
    ///
    /// Bits above position `2^vars` are silently cleared.
    ///
    /// # Panics
    ///
    /// Panics if `vars > 6`. Use [`Tt::try_from_bits`] for a fallible
    /// variant.
    #[inline]
    pub fn from_bits(bits: u64, vars: usize) -> Self {
        Self::try_from_bits(bits, vars).expect("too many variables")
    }

    /// Fallible variant of [`Tt::from_bits`].
    ///
    /// # Errors
    ///
    /// Returns [`VarCountError`] if `vars > 6`.
    #[inline]
    pub fn try_from_bits(bits: u64, vars: usize) -> Result<Self, VarCountError> {
        if vars > MAX_VARS {
            return Err(VarCountError { vars });
        }
        Ok(Self {
            bits: bits & Self::mask(vars),
            vars: vars as u8,
        })
    }

    /// The constant-zero function over `vars` variables.
    #[inline]
    pub fn zero(vars: usize) -> Self {
        Self::from_bits(0, vars)
    }

    /// The constant-one function over `vars` variables.
    #[inline]
    pub fn one(vars: usize) -> Self {
        Self::from_bits(u64::MAX, vars)
    }

    /// The constant function with the given value.
    #[inline]
    pub fn constant(value: bool, vars: usize) -> Self {
        if value {
            Self::one(vars)
        } else {
            Self::zero(vars)
        }
    }

    /// The projection `f(x) = x_i` over `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `i >= vars` or `vars > 6`.
    #[inline]
    pub fn projection(i: usize, vars: usize) -> Self {
        assert!(
            i < vars,
            "projection index {i} out of range for {vars} vars"
        );
        Self::from_bits(PROJECTIONS[i], vars)
    }

    /// Builds a table by evaluating `f` on every minterm.
    ///
    /// ```
    /// use xag_tt::Tt;
    /// let maj = Tt::from_fn(3, |m| (m.count_ones() >= 2) as u64 == 1);
    /// assert_eq!(maj.bits(), 0xe8);
    /// ```
    pub fn from_fn(vars: usize, mut f: impl FnMut(u64) -> bool) -> Self {
        let mut bits = 0u64;
        for m in 0..(1u64 << vars) {
            if f(m) {
                bits |= 1 << m;
            }
        }
        Self::from_bits(bits, vars)
    }

    /// Raw bits of the table (bits above `2^vars` are zero).
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of variables of the function.
    #[inline]
    pub fn vars(self) -> usize {
        self.vars as usize
    }

    /// Number of minterms (table length).
    #[inline]
    pub fn len(self) -> usize {
        1usize << self.vars
    }

    /// Always false: a truth table has at least one entry.
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Evaluates the function at a minterm.
    #[inline]
    pub fn eval(self, minterm: u64) -> bool {
        debug_assert!(minterm < (1 << self.vars));
        (self.bits >> minterm) & 1 == 1
    }

    /// Number of minterms on which the function is one.
    #[inline]
    pub fn count_ones(self) -> u32 {
        self.bits.count_ones()
    }

    /// True iff the function is constant zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// True iff the function is constant one.
    #[inline]
    pub fn is_one(self) -> bool {
        self.bits == Self::mask(self.vars())
    }

    /// True iff the function is constant.
    #[inline]
    pub fn is_constant(self) -> bool {
        self.is_zero() || self.is_one()
    }

    /// Reinterprets the function over a larger variable count (new variables
    /// are don't-cares; the table is replicated).
    ///
    /// # Panics
    ///
    /// Panics if `vars` is smaller than the current count or exceeds 6.
    pub fn extend_to(self, vars: usize) -> Self {
        assert!(vars >= self.vars() && vars <= MAX_VARS);
        let mut bits = self.bits;
        for v in self.vars()..vars {
            bits |= bits << (1usize << v);
        }
        Self::from_bits(bits, vars)
    }

    /// Negative cofactor: `f` with `x_i = 0` (result independent of `x_i`).
    #[inline]
    pub fn cofactor0(self, i: usize) -> Self {
        assert!(i < self.vars());
        let lo = self.bits & !PROJECTIONS[i];
        Self {
            bits: lo | (lo << (1usize << i)),
            vars: self.vars,
        }
    }

    /// Positive cofactor: `f` with `x_i = 1` (result independent of `x_i`).
    #[inline]
    pub fn cofactor1(self, i: usize) -> Self {
        assert!(i < self.vars());
        let hi = self.bits & PROJECTIONS[i];
        Self {
            bits: hi | (hi >> (1usize << i)),
            vars: self.vars,
        }
    }

    /// Boolean difference `∂f/∂x_i = f|x_i=0 ⊕ f|x_i=1`.
    #[inline]
    pub fn derivative(self, i: usize) -> Self {
        self.cofactor0(i) ^ self.cofactor1(i)
    }

    /// True iff the function depends on variable `i`.
    #[inline]
    pub fn depends_on(self, i: usize) -> bool {
        !self.derivative(i).is_zero()
    }

    /// Bit mask of variables the function actually depends on.
    pub fn support(self) -> u64 {
        let mut s = 0;
        for i in 0..self.vars() {
            if self.depends_on(i) {
                s |= 1 << i;
            }
        }
        s
    }

    /// Number of variables the function actually depends on.
    #[inline]
    pub fn support_size(self) -> usize {
        self.support().count_ones() as usize
    }

    /// Compacts the function onto its support.
    ///
    /// Returns the reduced table together with the original indices of the
    /// surviving variables (in increasing order): entry `k` of the vector is
    /// the original variable feeding new variable `k`.
    pub fn shrink_to_support(self) -> (Self, Vec<usize>) {
        let mut t = self;
        let mut map = Vec::new();
        let mut next = 0usize;
        for i in 0..self.vars() {
            if t.depends_on(i) {
                if i != next {
                    t = t.swap_vars(next, i);
                }
                map.push(i);
                next += 1;
            }
        }
        let bits = t.bits & Self::mask(next);
        (Self::from_bits(bits, next), map)
    }

    /// Replaces `x_i` by `x_i ⊕ x_j` (the paper's translational operation).
    ///
    /// The result `g` satisfies `g(x) = f(x_0, …, x_i ⊕ x_j, …)`. Applying the
    /// same operation twice yields the original function.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn translate(self, i: usize, j: usize) -> Self {
        assert!(i != j && i < self.vars() && j < self.vars());
        // For minterms with x_j = 1 the value comes from the minterm with
        // x_i flipped; minterms with x_j = 0 are unchanged.
        let flipped = self.flip_var(i).bits;
        Self {
            bits: (self.bits & !PROJECTIONS[j]) | (flipped & PROJECTIONS[j]),
            vars: self.vars,
        }
    }

    /// Complements input `x_i`: returns `g(x) = f(x_0, …, !x_i, …)`.
    #[inline]
    pub fn flip_var(self, i: usize) -> Self {
        assert!(i < self.vars());
        let shift = 1usize << i;
        let hi = self.bits & PROJECTIONS[i];
        let lo = self.bits & !PROJECTIONS[i];
        Self {
            bits: (hi >> shift) | (lo << shift),
            vars: self.vars,
        }
    }

    /// Swaps variables `x_i` and `x_j`.
    pub fn swap_vars(self, i: usize, j: usize) -> Self {
        if i == j {
            return self;
        }
        // Swap via three translations, mirroring the XOR-swap identity.
        self.translate(i, j).translate(j, i).translate(i, j)
    }

    /// XORs input `x_i` into the output: returns `g = f ⊕ x_i` (the paper's
    /// disjoint translational operation).
    #[inline]
    pub fn xor_input(self, i: usize) -> Self {
        assert!(i < self.vars());
        Self {
            bits: self.bits ^ (PROJECTIONS[i] & Self::mask(self.vars())),
            vars: self.vars,
        }
    }

    /// Algebraic normal form (positive-polarity Reed–Muller) coefficients.
    ///
    /// Bit `S` of the result is the ANF coefficient of the monomial
    /// `∏_{i ∈ S} x_i`. The transform is an involution, see [`Tt::from_anf`].
    ///
    /// ```
    /// use xag_tt::Tt;
    /// let maj = Tt::from_bits(0xe8, 3);
    /// // maj = x0x1 ⊕ x0x2 ⊕ x1x2: coefficients at 0b011, 0b101, 0b110.
    /// assert_eq!(maj.anf(), 0b0110_1000);
    /// ```
    pub fn anf(self) -> u64 {
        let mut t = self.bits;
        for (i, p) in PROJECTIONS.iter().enumerate().take(self.vars()) {
            t ^= (t & !p) << (1usize << i);
        }
        t & Self::mask(self.vars())
    }

    /// Builds a truth table from ANF coefficients (inverse of [`Tt::anf`]).
    pub fn from_anf(anf: u64, vars: usize) -> Self {
        // The Möbius transform over GF(2) is an involution.
        Self::from_bits(Tt::from_bits(anf, vars).anf(), vars)
    }

    /// Algebraic degree (0 for constants; 1 for non-constant affine
    /// functions).
    pub fn degree(self) -> u32 {
        let anf = self.anf();
        let mut best = 0;
        for s in 0..(1u64 << self.vars()) {
            if (anf >> s) & 1 == 1 {
                best = best.max(s.count_ones());
            }
        }
        best
    }

    /// True iff the function is affine: `f = c ⊕ ⨁_{i∈S} x_i`.
    pub fn is_affine(self) -> bool {
        self.degree() <= 1
    }

    /// Decomposes an affine function into `(variable mask, constant)` such
    /// that `f = constant ⊕ ⨁_{i ∈ mask} x_i`, or `None` if `f` is not
    /// affine.
    pub fn affine_decomposition(self) -> Option<(u64, bool)> {
        let anf = self.anf();
        let constant = anf & 1 == 1;
        let mut mask = 0u64;
        let mut rest = anf & !1;
        while rest != 0 {
            let s = rest.trailing_zeros() as u64;
            if s.count_ones() != 1 {
                return None;
            }
            mask |= s;
            rest &= rest - 1;
        }
        Some((mask, constant))
    }

    /// Re-expresses the function over a wider variable set.
    ///
    /// `positions` gives, for each current variable `k` (in order), its index
    /// in the new variable set; it must be strictly increasing with entries
    /// below `vars`. Variables of the result not named in `positions` are
    /// don't-cares. This is the lifting step of the one-sweep cut-function
    /// computation: a fanin cut's table over its own leaves becomes a table
    /// over the merged cut's leaves.
    ///
    /// ```
    /// use xag_tt::Tt;
    /// // x0 & x1 lifted onto a 4-var set as x1 & x3.
    /// let f = Tt::projection(0, 2) & Tt::projection(1, 2);
    /// let g = f.expand(&[1, 3], 4);
    /// assert_eq!(g, Tt::projection(1, 4) & Tt::projection(3, 4));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `positions.len() != self.vars()`, `vars > 6`, or `positions`
    /// is not strictly increasing within range.
    pub fn expand(self, positions: &[usize], vars: usize) -> Self {
        assert!(vars <= MAX_VARS, "too many variables");
        assert_eq!(positions.len(), self.vars(), "one position per variable");
        let mut bits = self.bits;
        let mut cur = self.vars();
        let mut k = 0usize;
        for j in 0..vars {
            if k < positions.len() && positions[k] == j {
                k += 1;
            } else {
                bits = insert_dummy_var(bits, cur, j);
                cur += 1;
            }
        }
        assert_eq!(k, positions.len(), "positions not increasing or in range");
        Self::from_bits(bits, vars)
    }

    /// Rademacher–Walsh spectrum: `S_w = Σ_m (-1)^{f(m) ⊕ w·m}`.
    ///
    /// The returned vector has `2^vars` entries; `S_0 = 2^n - 2·weight(f)`.
    pub fn walsh_spectrum(self) -> Vec<i32> {
        let n = self.vars();
        let len = 1usize << n;
        let mut s: Vec<i32> = (0..len)
            .map(|m| if self.eval(m as u64) { -1 } else { 1 })
            .collect();
        let mut h = 1;
        while h < len {
            let mut i = 0;
            while i < len {
                for j in i..i + h {
                    let (a, b) = (s[j], s[j + h]);
                    s[j] = a + b;
                    s[j + h] = a - b;
                }
                i += h * 2;
            }
            h *= 2;
        }
        s
    }
}

/// Inserts a don't-care variable at position `j` of a `vars`-variable table.
///
/// Every block of `2^j` consecutive minterms is duplicated, so the result has
/// `vars + 1` variables and ignores the new one. Requires `vars < 6`.
fn insert_dummy_var(bits: u64, vars: usize, j: usize) -> u64 {
    debug_assert!(vars < MAX_VARS && j <= vars);
    let blk = 1usize << j;
    let mask = if blk >= 64 {
        u64::MAX
    } else {
        (1u64 << blk) - 1
    };
    let mut out = 0u64;
    for b in 0..(1usize << (vars - j)) {
        let chunk = (bits >> (b * blk)) & mask;
        out |= chunk << (2 * b * blk);
        out |= chunk << ((2 * b + 1) * blk);
    }
    out
}

impl core::ops::Not for Tt {
    type Output = Tt;
    #[inline]
    fn not(self) -> Tt {
        Tt {
            bits: !self.bits & Tt::mask(self.vars()),
            vars: self.vars,
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl core::ops::$trait for Tt {
            type Output = Tt;
            #[inline]
            fn $method(self, rhs: Tt) -> Tt {
                assert_eq!(self.vars, rhs.vars, "mismatched variable counts");
                Tt {
                    bits: self.bits $op rhs.bits,
                    vars: self.vars,
                }
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &);
impl_binop!(BitOr, bitor, |);
impl_binop!(BitXor, bitxor, ^);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_match_definition() {
        for n in 1..=6 {
            for i in 0..n {
                let p = Tt::projection(i, n);
                for m in 0..(1u64 << n) {
                    assert_eq!(p.eval(m), (m >> i) & 1 == 1);
                }
            }
        }
    }

    #[test]
    fn mask_is_applied() {
        let t = Tt::from_bits(u64::MAX, 3);
        assert_eq!(t.bits(), 0xff);
        assert!(t.is_one());
    }

    #[test]
    fn from_bits_rejects_wide() {
        assert!(Tt::try_from_bits(0, 7).is_err());
        let err = Tt::try_from_bits(0, 9).unwrap_err();
        assert_eq!(err.vars, 9);
        assert!(err.to_string().contains("9"));
    }

    #[test]
    fn cofactors_and_derivative() {
        let a = Tt::projection(0, 3);
        let b = Tt::projection(1, 3);
        let f = a & b;
        assert!(f.cofactor0(0).is_zero());
        assert_eq!(f.cofactor1(0), b);
        assert_eq!(f.derivative(0), b);
        assert!(f.depends_on(0) && f.depends_on(1) && !f.depends_on(2));
        assert_eq!(f.support(), 0b011);
    }

    #[test]
    fn shannon_expansion_reconstructs() {
        for bits in [0xe8u64, 0x96, 0x1234_5678_9abc_def0] {
            for n in [3usize, 6] {
                let f = Tt::from_bits(bits, n);
                for i in 0..n {
                    let xi = Tt::projection(i, n);
                    let rebuilt = (xi & f.cofactor1(i)) | (!xi & f.cofactor0(i));
                    assert_eq!(rebuilt, f);
                }
            }
        }
    }

    #[test]
    fn translate_is_involution_and_correct() {
        let f = Tt::from_bits(0xcafe_f00d_dead_beef, 6);
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                let g = f.translate(i, j);
                // g(x) = f(..., x_i ⊕ x_j, ...)
                for m in 0..64u64 {
                    let xj = (m >> j) & 1;
                    let m2 = m ^ (xj << i);
                    assert_eq!(g.eval(m), f.eval(m2));
                }
                assert_eq!(g.translate(i, j), f);
            }
        }
    }

    #[test]
    fn swap_vars_matches_semantics() {
        let f = Tt::from_bits(0x1ee7_c0de_0dd5_ba11, 6);
        for i in 0..6 {
            for j in 0..6 {
                let g = f.swap_vars(i, j);
                for m in 0..64u64 {
                    let bi = (m >> i) & 1;
                    let bj = (m >> j) & 1;
                    let m2 = (m & !((1 << i) | (1 << j))) | (bj << i) | (bi << j);
                    assert_eq!(g.eval(m), f.eval(m2));
                }
            }
        }
    }

    #[test]
    fn flip_var_matches_semantics() {
        let f = Tt::from_bits(0x0123_4567_89ab_cdef, 6);
        for i in 0..6 {
            let g = f.flip_var(i);
            for m in 0..64u64 {
                assert_eq!(g.eval(m), f.eval(m ^ (1 << i)));
            }
            assert_eq!(g.flip_var(i), f);
        }
    }

    #[test]
    fn anf_of_known_functions() {
        let a = Tt::projection(0, 2);
        let b = Tt::projection(1, 2);
        assert_eq!((a & b).anf(), 0b1000);
        assert_eq!((a ^ b).anf(), 0b0110);
        assert_eq!((a | b).anf(), 0b1110); // x0 ⊕ x1 ⊕ x0x1
        assert_eq!(Tt::one(2).anf(), 0b0001);
    }

    #[test]
    fn anf_roundtrip() {
        for bits in [0u64, 0xe8, 0x96, 0xdead_beef_1337_c0de] {
            let f = Tt::from_bits(bits, 6);
            assert_eq!(Tt::from_anf(f.anf(), 6), f);
        }
    }

    #[test]
    fn degree_and_affinity() {
        assert_eq!(Tt::zero(4).degree(), 0);
        assert_eq!(Tt::one(4).degree(), 0);
        let parity = Tt::from_fn(4, |m| m.count_ones() % 2 == 1);
        assert_eq!(parity.degree(), 1);
        assert!(parity.is_affine());
        assert_eq!(parity.affine_decomposition(), Some((0b1111, false)));
        assert_eq!((!parity).affine_decomposition(), Some((0b1111, true)));
        let maj = Tt::from_bits(0xe8, 3);
        assert_eq!(maj.degree(), 2);
        assert_eq!(maj.affine_decomposition(), None);
        let and3 = Tt::from_fn(3, |m| m == 7);
        assert_eq!(and3.degree(), 3);
    }

    #[test]
    fn walsh_spectrum_basics() {
        // S_0 = 2^n - 2 * weight.
        let f = Tt::from_bits(0xe8, 3);
        let s = f.walsh_spectrum();
        assert_eq!(s[0], 8 - 2 * f.count_ones() as i32);
        // Parseval: Σ S_w² = 2^{2n}.
        let sum: i64 = s.iter().map(|&v| (v as i64) * (v as i64)).sum();
        assert_eq!(sum, 64);
        // Spectrum of x0 over 1 var: S = [0, 2] with sign convention ±.
        let x0 = Tt::projection(0, 1);
        assert_eq!(x0.walsh_spectrum(), vec![0, 2]);
    }

    #[test]
    fn shrink_to_support_compacts() {
        // f = x1 & x3 over 5 vars.
        let f = Tt::projection(1, 5) & Tt::projection(3, 5);
        let (g, map) = f.shrink_to_support();
        assert_eq!(map, vec![1, 3]);
        assert_eq!(g.vars(), 2);
        assert_eq!(g.bits(), 0x8);
    }

    #[test]
    fn expand_matches_semantics() {
        // Exhaustive over small shapes: expand then evaluate by index map.
        for bits in [0x8u64, 0x6, 0xe8, 0x96] {
            for n in 2..=3usize {
                let f = Tt::from_bits(bits, n);
                for vars in n..=6 {
                    // All strictly increasing position vectors of length n.
                    let mut stack = vec![(Vec::new(), 0usize)];
                    while let Some((prefix, start)) = stack.pop() {
                        if prefix.len() == n {
                            let g = f.expand(&prefix, vars);
                            for m in 0..(1u64 << vars) {
                                let mut sub = 0u64;
                                for (k, &p) in prefix.iter().enumerate() {
                                    sub |= ((m >> p) & 1) << k;
                                }
                                assert_eq!(g.eval(m), f.eval(sub));
                            }
                            continue;
                        }
                        for p in start..vars {
                            let mut next = prefix.clone();
                            next.push(p);
                            stack.push((next, p + 1));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn expand_identity_and_extend() {
        let f = Tt::from_bits(0xe8, 3);
        assert_eq!(f.expand(&[0, 1, 2], 3), f);
        assert_eq!(f.expand(&[0, 1, 2], 5), f.extend_to(5));
        let g = Tt::from_bits(0xdead_beef_1337_c0de, 6);
        assert_eq!(g.expand(&[0, 1, 2, 3, 4, 5], 6), g);
    }

    #[test]
    fn extend_replicates() {
        let f = Tt::from_bits(0x8, 2);
        let g = f.extend_to(4);
        assert_eq!(g.vars(), 4);
        for m in 0..16u64 {
            assert_eq!(g.eval(m), f.eval(m & 3));
        }
    }
}
