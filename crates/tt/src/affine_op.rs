use crate::Tt;

/// One of the five affine operations of the paper's Definition 2.1.
///
/// Multiplicative complexity is invariant under every operation: each can be
/// realized by input/output XOR gates, inverters, or wire permutations, none
/// of which use AND gates. Every operation is an involution, so a sequence of
/// operations is undone by replaying it in reverse order.
///
/// # Examples
///
/// ```
/// use xag_tt::{AffineOp, Tt};
///
/// // The paper's Example 2.3: x0 ∧ x1 is affine-equivalent to the
/// // majority ⟨x0x1x2⟩ via four affine operations.
/// let and = Tt::from_bits(0x88, 3);
/// let maj = AffineOp::apply_all(
///     and,
///     &[
///         AffineOp::FlipInput(1),
///         AffineOp::Translate { dst: 1, src: 2 },
///         AffineOp::Translate { dst: 0, src: 1 },
///         AffineOp::XorOutput(0),
///     ],
/// );
/// assert_eq!(maj.bits(), 0xe8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AffineOp {
    /// Swap inputs `x_i` and `x_j` (operation 1).
    Swap(usize, usize),
    /// Complement input `x_i` (operation 2).
    FlipInput(usize),
    /// Complement the output (operation 3).
    FlipOutput,
    /// Replace `x_dst` by `x_dst ⊕ x_src` (operation 4, translational).
    Translate {
        /// The input being replaced.
        dst: usize,
        /// The input XOR-ed into `dst`.
        src: usize,
    },
    /// XOR input `x_i` into the output (operation 5, disjoint translational).
    XorOutput(usize),
}

impl AffineOp {
    /// Applies the operation to a truth table.
    ///
    /// # Panics
    ///
    /// Panics if an input index is out of range for `tt`.
    pub fn apply(self, tt: Tt) -> Tt {
        match self {
            AffineOp::Swap(i, j) => tt.swap_vars(i, j),
            AffineOp::FlipInput(i) => tt.flip_var(i),
            AffineOp::FlipOutput => !tt,
            AffineOp::Translate { dst, src } => tt.translate(dst, src),
            AffineOp::XorOutput(i) => tt.xor_input(i),
        }
    }

    /// Applies a sequence of operations left to right.
    pub fn apply_all(tt: Tt, ops: &[AffineOp]) -> Tt {
        ops.iter().fold(tt, |t, &op| op.apply(t))
    }

    /// The inverse operation. All five operations are involutions, so this is
    /// the identity function; it exists to make call sites self-documenting.
    #[inline]
    pub fn inverse(self) -> AffineOp {
        self
    }

    /// Undoes a sequence: applies the inverses in reverse order.
    pub fn undo_all(tt: Tt, ops: &[AffineOp]) -> Tt {
        ops.iter().rev().fold(tt, |t, &op| op.inverse().apply(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops(n: usize) -> Vec<AffineOp> {
        let mut ops = vec![AffineOp::FlipOutput];
        for i in 0..n {
            ops.push(AffineOp::FlipInput(i));
            ops.push(AffineOp::XorOutput(i));
            for j in 0..n {
                if i != j {
                    ops.push(AffineOp::Swap(i, j));
                    ops.push(AffineOp::Translate { dst: i, src: j });
                }
            }
        }
        ops
    }

    #[test]
    fn every_op_is_an_involution() {
        let f = Tt::from_bits(0xfee1_dead_cafe_babe, 6);
        for op in all_ops(6) {
            assert_eq!(op.apply(op.apply(f)), f, "{op:?} is not an involution");
        }
    }

    #[test]
    fn ops_preserve_degree_above_one() {
        // Affine ops preserve algebraic degree for degree ≥ 2 functions.
        let f = Tt::from_bits(0xe8, 3); // degree 2
        for op in all_ops(3) {
            assert_eq!(op.apply(f).degree(), 2, "{op:?} changed the degree");
        }
    }

    #[test]
    fn undo_all_reverses_apply_all() {
        let f = Tt::from_bits(0x1234_5678_9abc_def0, 6);
        let ops = [
            AffineOp::Swap(0, 3),
            AffineOp::Translate { dst: 2, src: 5 },
            AffineOp::FlipInput(1),
            AffineOp::XorOutput(4),
            AffineOp::FlipOutput,
            AffineOp::Translate { dst: 5, src: 0 },
        ];
        let g = AffineOp::apply_all(f, &ops);
        assert_eq!(AffineOp::undo_all(g, &ops), f);
    }

    #[test]
    fn example_2_3_full_chain() {
        // x0 ∧ x1 (with x2 don't care) → majority, following Example 2.3
        // in reverse.
        let and = Tt::from_bits(0x88, 3);
        let ops = [
            AffineOp::FlipInput(1),
            AffineOp::Translate { dst: 1, src: 2 },
            AffineOp::Translate { dst: 0, src: 1 },
            AffineOp::XorOutput(0),
        ];
        let maj = AffineOp::apply_all(and, &ops);
        assert_eq!(maj.bits(), 0xe8);
    }
}
