//! Truth-table kernel for multiplicative-complexity-oriented logic synthesis.
//!
//! This crate provides the Boolean-function machinery underlying the DAC'19
//! XAG rewriting flow:
//!
//! * [`Tt`] — a truth table of a function with up to six variables, stored in
//!   a single `u64` (bit `m` holds `f(m)` where variable `i` of minterm `m`
//!   is `(m >> i) & 1`);
//! * [`DynTt`] — a dynamically sized truth table for wider functions
//!   (used when synthesizing table-defined logic such as the AES S-box);
//! * algebraic normal forms ([`Tt::anf`], [`Tt::degree`]),
//!   Rademacher–Walsh spectra ([`Tt::walsh_spectrum`]), and
//! * the five affine operations of the paper's Definition 2.1
//!   ([`AffineOp`]), under which multiplicative complexity is invariant.
//!
//! # Examples
//!
//! ```
//! use xag_tt::Tt;
//!
//! // Majority of three variables: 0xe8 as in the paper's Example 3.1.
//! let maj = Tt::from_bits(0xe8, 3);
//! assert_eq!(maj.degree(), 2);
//! assert!(!maj.is_affine());
//! ```

mod affine_op;
mod dyn_tt;
pub mod hash;
mod static_tt;

pub use affine_op::AffineOp;
pub use dyn_tt::DynTt;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use static_tt::{Tt, MAX_VARS};

/// Error returned when constructing a [`Tt`] with more than [`MAX_VARS`]
/// variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarCountError {
    /// The offending variable count.
    pub vars: usize,
}

impl core::fmt::Display for VarCountError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "truth table supports at most {MAX_VARS} variables, got {}",
            self.vars
        )
    }
}

impl std::error::Error for VarCountError {}
