use crate::{Tt, MAX_VARS};

/// A dynamically sized truth table for functions with more than six
/// variables.
///
/// The table is stored as packed 64-bit words: word `w` bit `b` holds
/// `f(64·w + b)` with the same variable numbering as [`Tt`]. [`DynTt`] is used
/// when synthesizing table-defined logic wider than a cut — e.g. the 8-input
/// AES S-box coordinates or DES S-box outputs before support shrinking.
///
/// # Examples
///
/// ```
/// use xag_tt::DynTt;
///
/// let f = DynTt::from_fn(8, |m| m.count_ones() % 2 == 1);
/// assert_eq!(f.vars(), 8);
/// assert!(f.is_affine());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DynTt {
    words: Vec<u64>,
    vars: usize,
}

impl DynTt {
    fn word_count(vars: usize) -> usize {
        if vars <= MAX_VARS {
            1
        } else {
            1usize << (vars - MAX_VARS)
        }
    }

    /// The constant-zero function over `vars` variables.
    pub fn zero(vars: usize) -> Self {
        Self {
            words: vec![0; Self::word_count(vars)],
            vars,
        }
    }

    /// Builds a table by evaluating `f` at every minterm.
    pub fn from_fn(vars: usize, mut f: impl FnMut(u64) -> bool) -> Self {
        let mut t = Self::zero(vars);
        for m in 0..(1u64 << vars) {
            if f(m) {
                t.set(m);
            }
        }
        t
    }

    /// Lifts a small table into a [`DynTt`].
    pub fn from_tt(tt: Tt) -> Self {
        Self {
            words: vec![tt.bits()],
            vars: tt.vars(),
        }
    }

    /// Converts to a small table when `vars ≤ 6`.
    pub fn to_tt(&self) -> Option<Tt> {
        if self.vars <= MAX_VARS {
            Some(Tt::from_bits(self.words[0], self.vars))
        } else {
            None
        }
    }

    /// Number of variables.
    #[inline]
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Sets the value at a minterm to one.
    #[inline]
    pub fn set(&mut self, minterm: u64) {
        self.words[(minterm >> 6) as usize] |= 1 << (minterm & 63);
    }

    /// Evaluates the function at a minterm.
    #[inline]
    pub fn eval(&self, minterm: u64) -> bool {
        (self.words[(minterm >> 6) as usize] >> (minterm & 63)) & 1 == 1
    }

    /// True iff the function is constant zero.
    pub fn is_zero(&self) -> bool {
        if self.vars <= MAX_VARS {
            self.words[0] & Tt::mask(self.vars) == 0
        } else {
            self.words.iter().all(|&w| w == 0)
        }
    }

    /// True iff the function is constant one.
    pub fn is_one(&self) -> bool {
        if self.vars <= MAX_VARS {
            self.words[0] & Tt::mask(self.vars) == Tt::mask(self.vars)
        } else {
            self.words.iter().all(|&w| w == u64::MAX)
        }
    }

    /// Negative cofactor with respect to the *top* variable
    /// (`x_{vars-1} = 0`); the result has one variable fewer.
    ///
    /// # Panics
    ///
    /// Panics if the table has no variables.
    pub fn top_cofactor0(&self) -> Self {
        assert!(self.vars > 0);
        if self.vars <= MAX_VARS {
            Self::from_tt(self.to_tt().expect("small").cofactor0(self.vars - 1))
                .resize_down(self.vars - 1)
        } else {
            let half = self.words.len() / 2;
            Self {
                words: self.words[..half].to_vec(),
                vars: self.vars - 1,
            }
        }
    }

    /// Positive cofactor with respect to the top variable.
    ///
    /// # Panics
    ///
    /// Panics if the table has no variables.
    pub fn top_cofactor1(&self) -> Self {
        assert!(self.vars > 0);
        if self.vars <= MAX_VARS {
            Self::from_tt(self.to_tt().expect("small").cofactor1(self.vars - 1))
                .resize_down(self.vars - 1)
        } else {
            let half = self.words.len() / 2;
            Self {
                words: self.words[half..].to_vec(),
                vars: self.vars - 1,
            }
        }
    }

    fn resize_down(mut self, vars: usize) -> Self {
        self.vars = vars;
        self.words[0] &= Tt::mask(vars);
        self.words.truncate(Self::word_count(vars));
        self
    }

    /// XOR of two tables.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn xor(&self, other: &Self) -> Self {
        assert_eq!(self.vars, other.vars);
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
            vars: self.vars,
        }
    }

    /// True iff the function is affine (algebraic degree ≤ 1).
    pub fn is_affine(&self) -> bool {
        self.affine_decomposition().is_some()
    }

    /// Decomposes an affine function into `(variable mask, constant)`, or
    /// `None` if the function is not affine.
    pub fn affine_decomposition(&self) -> Option<(u64, bool)> {
        // Evaluate at 0 and at each unit vector, then verify linearity on
        // every minterm. Cost 2^n — the same as reading the table once.
        let constant = self.eval(0);
        let mut mask = 0u64;
        for i in 0..self.vars {
            if self.eval(1 << i) != constant {
                mask |= 1 << i;
            }
        }
        for m in 0..(1u64 << self.vars) {
            let expected = ((m & mask).count_ones() % 2 == 1) ^ constant;
            if self.eval(m) != expected {
                return None;
            }
        }
        Some((mask, constant))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_parity_is_affine() {
        let f = DynTt::from_fn(9, |m| m.count_ones() % 2 == 0);
        assert_eq!(f.affine_decomposition(), Some((0x1ff, true)));
    }

    #[test]
    fn wide_and_is_not_affine() {
        let f = DynTt::from_fn(8, |m| m == 0xff);
        assert!(!f.is_affine());
        assert!(!f.is_zero());
        assert!(!f.is_one());
    }

    #[test]
    fn cofactors_split_words() {
        let f = DynTt::from_fn(8, |m| m >= 128);
        assert!(f.top_cofactor0().is_zero());
        assert!(f.top_cofactor1().is_one());
        let g = DynTt::from_fn(8, |m| (m >> 3) & 1 == 1);
        assert_eq!(g.top_cofactor0(), DynTt::from_fn(7, |m| (m >> 3) & 1 == 1));
    }

    #[test]
    fn small_tables_roundtrip() {
        let t = Tt::from_bits(0xe8, 3);
        let d = DynTt::from_tt(t);
        assert_eq!(d.to_tt(), Some(t));
        assert_eq!(d.top_cofactor1().to_tt().unwrap().bits(), 0xe); // maj with x2=1: OR
    }

    #[test]
    fn xor_matches_pointwise() {
        let a = DynTt::from_fn(7, |m| m % 3 == 0);
        let b = DynTt::from_fn(7, |m| m % 5 == 0);
        let c = a.xor(&b);
        for m in 0..128 {
            assert_eq!(c.eval(m), a.eval(m) ^ b.eval(m));
        }
    }
}
