//! Randomized property tests: every enumerated cut of a random network is
//! a valid cut whose function matches brute-force cone evaluation.

use mc_rng::Rng;
use xag_cuts::{cut_function, enumerate_cuts, CutParams};
use xag_network::{Signal, Xag};

#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    steps: Vec<(bool, usize, bool, usize, bool)>,
}

fn arb_recipe(rng: &mut Rng) -> Recipe {
    let inputs = rng.gen_range(2..11);
    let gates = rng.gen_range(1..50);
    let steps = (0..gates)
        .map(|_| {
            (
                rng.gen(),
                rng.next_u64() as usize,
                rng.gen(),
                rng.next_u64() as usize,
                rng.gen(),
            )
        })
        .collect();
    Recipe { inputs, steps }
}

fn build(recipe: &Recipe) -> Xag {
    let mut x = Xag::new();
    let mut pool: Vec<Signal> = (0..recipe.inputs).map(|_| x.input()).collect();
    for &(is_and, a, ca, b, cb) in &recipe.steps {
        let sa = pool[a % pool.len()] ^ ca;
        let sb = pool[b % pool.len()] ^ cb;
        let s = if is_and { x.and(sa, sb) } else { x.xor(sa, sb) };
        pool.push(s);
    }
    // Output the last few signals so everything stays live.
    for s in pool.iter().rev().take(3) {
        x.output(*s);
    }
    x
}

#[test]
fn cuts_are_valid_and_functions_match() {
    let mut rng = Rng::seed_from_u64(0xC07_0001);
    for case in 0..48 {
        let recipe = arb_recipe(&mut rng);
        let x = build(&recipe);
        let params = CutParams::default();
        let sets = enumerate_cuts(&x, &params);
        for n in x.live_gates() {
            let cuts = sets.of(n);
            assert!(!cuts.is_empty(), "case {case}: gate {n} has no cuts");
            assert!(cuts.len() <= params.cut_limit + 1, "case {case}");
            for cut in cuts {
                assert!(cut.size() <= params.cut_size, "case {case}");
                let tt = cut_function(&x, n, cut);
                assert!(tt.is_some(), "case {case}: invalid cut {cut:?} of {n}");
                let tt = tt.unwrap();
                assert_eq!(tt.vars(), cut.size(), "case {case}");
            }
        }
    }
}

#[test]
fn smaller_cut_sizes_give_subsets() {
    let mut rng = Rng::seed_from_u64(0xC07_0002);
    for case in 0..48 {
        let recipe = arb_recipe(&mut rng);
        let x = build(&recipe);
        let small = enumerate_cuts(
            &x,
            &CutParams {
                cut_size: 3,
                cut_limit: 12,
            },
        );
        for n in x.live_gates() {
            for cut in small.of(n) {
                assert!(cut.size() <= 3, "case {case}");
            }
        }
    }
}
