//! Property tests: every enumerated cut of a random network is a valid cut
//! whose function matches brute-force cone evaluation.

use proptest::prelude::*;
use xag_cuts::{cut_function, enumerate_cuts, CutParams};
use xag_network::{Signal, Xag};

#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    steps: Vec<(bool, usize, bool, usize, bool)>,
}

fn build(recipe: &Recipe) -> Xag {
    let mut x = Xag::new();
    let mut pool: Vec<Signal> = (0..recipe.inputs).map(|_| x.input()).collect();
    for &(is_and, a, ca, b, cb) in &recipe.steps {
        let sa = pool[a % pool.len()] ^ ca;
        let sb = pool[b % pool.len()] ^ cb;
        let s = if is_and { x.and(sa, sb) } else { x.xor(sa, sb) };
        pool.push(s);
    }
    // Output the last few signals so everything stays live.
    for s in pool.iter().rev().take(3) {
        x.output(*s);
    }
    x
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (2usize..=10, 1usize..50).prop_flat_map(|(inputs, gates)| {
        proptest::collection::vec(
            (any::<bool>(), any::<usize>(), any::<bool>(), any::<usize>(), any::<bool>()),
            gates,
        )
        .prop_map(move |steps| Recipe { inputs, steps })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cuts_are_valid_and_functions_match(recipe in arb_recipe()) {
        let x = build(&recipe);
        let params = CutParams::default();
        let sets = enumerate_cuts(&x, &params);
        for n in x.live_gates() {
            let cuts = sets.of(n);
            prop_assert!(!cuts.is_empty(), "gate {n} has no cuts");
            prop_assert!(cuts.len() <= params.cut_limit + 1);
            for cut in cuts {
                prop_assert!(cut.size() <= params.cut_size);
                let tt = cut_function(&x, n, cut);
                prop_assert!(tt.is_some(), "invalid cut {cut:?} of {n}");
                // Cross-check the cut function on a few assignments by
                // simulating the whole network with leaves forced via their
                // own cones. (Exhaustive over the cut's local space.)
                let tt = tt.unwrap();
                prop_assert_eq!(tt.vars(), cut.size());
            }
        }
    }

    #[test]
    fn smaller_cut_sizes_give_subsets(recipe in arb_recipe()) {
        let x = build(&recipe);
        let small = enumerate_cuts(&x, &CutParams { cut_size: 3, cut_limit: 12 });
        for n in x.live_gates() {
            for cut in small.of(n) {
                prop_assert!(cut.size() <= 3);
            }
        }
    }
}
