//! Differential tests pinning the dense arena enumeration to the legacy
//! implementation it replaced.
//!
//! The `legacy` module below is a faithful reimplementation of the
//! pre-overhaul enumeration: `HashMap<NodeId, Vec<Cut>>` sets,
//! heap-allocated leaf vectors, clone-the-fanin-sets merging, the loose
//! `cut_size + 8` early filter, and a recursive per-cut cone traversal
//! with a fresh `HashMap` memo. Across 100 seeded fuzz networks the
//! dense enumeration must produce **exactly** the same cut sets — same
//! leaves, same per-node order after the priority sort — and its fused
//! truth tables must equal the cone oracle's. That is the "byte
//! identical" guarantee at the data-structure level; the end-to-end
//! netlist identity is pinned by `tests/hotpath_equiv.rs` at the
//! workspace root.

use std::collections::HashMap;

use xag_cuts::{cut_function, enumerate_cuts_for, Cut as DenseCut, CutParams};
use xag_network::fuzz::{random_xag, FuzzConfig};
use xag_network::{NodeId, NodeKind, Xag};
use xag_tt::Tt;

mod legacy {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Cut {
        pub leaves: Vec<NodeId>,
        pub signature: u64,
    }

    impl Cut {
        pub fn new(mut leaves: Vec<NodeId>) -> Self {
            leaves.sort_unstable();
            leaves.dedup();
            let signature = leaves.iter().fold(0u64, |s, &l| s | 1 << (l % 64));
            Self { leaves, signature }
        }

        pub fn dominates(&self, other: &Cut) -> bool {
            if self.leaves.len() > other.leaves.len() || self.signature & !other.signature != 0 {
                return false;
            }
            self.leaves
                .iter()
                .all(|l| other.leaves.binary_search(l).is_ok())
        }

        pub fn merge(&self, other: &Cut) -> Cut {
            let mut leaves = Vec::with_capacity(self.leaves.len() + other.leaves.len());
            leaves.extend_from_slice(&self.leaves);
            leaves.extend_from_slice(&other.leaves);
            Cut::new(leaves)
        }
    }

    /// The old `enumerate_cuts`, including its original loose early size
    /// filter (`cut_size + 8`).
    pub fn enumerate(xag: &Xag, order: &[NodeId], params: &CutParams) -> HashMap<NodeId, Vec<Cut>> {
        let mut cuts: HashMap<NodeId, Vec<Cut>> = HashMap::new();
        cuts.insert(0, vec![Cut::new(vec![])]);
        for i in 0..xag.num_inputs() {
            let n = xag.input_signal(i).node();
            cuts.insert(n, vec![Cut::new(vec![n])]);
        }
        for &n in order {
            let (f0, f1) = xag.fanins(n);
            let set0 = cuts.get(&f0.node()).cloned().unwrap_or_default();
            let set1 = cuts.get(&f1.node()).cloned().unwrap_or_default();
            let mut merged: Vec<Cut> = Vec::new();
            for c0 in &set0 {
                for c1 in &set1 {
                    if (c0.signature | c1.signature).count_ones() as usize > params.cut_size + 8 {
                        continue;
                    }
                    let cut = c0.merge(c1);
                    if cut.leaves.len() > params.cut_size {
                        continue;
                    }
                    if merged.iter().any(|c| c.dominates(&cut)) {
                        continue;
                    }
                    merged.retain(|c| !cut.dominates(c));
                    merged.push(cut);
                }
            }
            merged.sort_by_key(|c| c.leaves.len());
            merged.truncate(params.cut_limit);
            merged.push(Cut::new(vec![n]));
            cuts.insert(n, merged);
        }
        cuts
    }

    /// The old `Xag::cone_tt`: fresh `HashMap` memo, recursive walk.
    pub fn cone_tt(xag: &Xag, root: NodeId, leaves: &[NodeId]) -> Option<Tt> {
        if leaves.len() > 6 {
            return None;
        }
        let nvars = leaves.len();
        let mut memo: HashMap<NodeId, Tt> = HashMap::new();
        for (i, &l) in leaves.iter().enumerate() {
            memo.insert(l, Tt::projection(i, nvars.max(1)));
        }
        memo.insert(0, Tt::zero(nvars.max(1)));
        cone_tt_rec(xag, root, &mut memo)
    }

    fn cone_tt_rec(xag: &Xag, n: NodeId, memo: &mut HashMap<NodeId, Tt>) -> Option<Tt> {
        if let Some(&t) = memo.get(&n) {
            return Some(t);
        }
        if !xag.is_gate(n) {
            return None;
        }
        let (f0, f1) = xag.fanins(n);
        let t0 = cone_tt_rec(xag, f0.node(), memo)?;
        let t1 = cone_tt_rec(xag, f1.node(), memo)?;
        let t0 = if f0.is_complement() { !t0 } else { t0 };
        let t1 = if f1.is_complement() { !t1 } else { t1 };
        let t = match xag.kind(n) {
            NodeKind::And => t0 & t1,
            NodeKind::Xor => t0 ^ t1,
            _ => unreachable!("order yields gates only"),
        };
        memo.insert(n, t);
        Some(t)
    }
}

/// 100 structurally diverse seeded networks: the default shape, an
/// XOR-heavy shape, and a deeper/narrower shape, cycling by seed.
fn network(seed: u64) -> Xag {
    let cfg = match seed % 3 {
        0 => FuzzConfig::default(),
        1 => FuzzConfig {
            xor_ratio: 0.8,
            ..FuzzConfig::default()
        },
        _ => FuzzConfig {
            inputs: 10,
            gates: 80,
            depth_bias: 0.85,
            ..FuzzConfig::default()
        },
    };
    random_xag(&cfg, seed)
}

#[test]
fn dense_enumeration_matches_legacy_across_100_fuzz_networks() {
    for params in [
        CutParams::default(),
        CutParams {
            cut_size: 4,
            cut_limit: 8,
        },
    ] {
        for seed in 0..100u64 {
            let xag = network(seed);
            let order = xag.live_gates();
            let dense = enumerate_cuts_for(&xag, &order, &params);
            let old = legacy::enumerate(&xag, &order, &params);
            for &n in &order {
                let new_cuts: &[DenseCut] = dense.of(n);
                let old_cuts = &old[&n];
                assert_eq!(
                    new_cuts.len(),
                    old_cuts.len(),
                    "seed {seed} node {n}: cut count diverged"
                );
                for (i, (nc, oc)) in new_cuts.iter().zip(old_cuts).enumerate() {
                    assert_eq!(
                        nc.leaves(),
                        &oc.leaves[..],
                        "seed {seed} node {n} cut {i}: leaves diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn fused_functions_match_the_cone_oracle_across_fuzz_networks() {
    let params = CutParams::default();
    for seed in 0..100u64 {
        let xag = network(seed);
        let order = xag.live_gates();
        let dense = enumerate_cuts_for(&xag, &order, &params);
        for &n in &order {
            let tts = dense.functions_of(n);
            for (i, cut) in dense.of(n).iter().enumerate() {
                if cut.size() == 1 && cut.leaves()[0] == n {
                    // Trivial cut: stored as the 1-var projection.
                    assert_eq!(tts[i], Tt::projection(0, 1), "seed {seed} node {n}");
                    continue;
                }
                let oracle = cut_function(&xag, n, cut)
                    .expect("enumerated cuts are valid cuts of their root");
                assert_eq!(
                    tts[i], oracle,
                    "seed {seed} node {n} cut {i}: fused function diverged from cone oracle"
                );
                let old_oracle = legacy::cone_tt(&xag, n, cut.leaves())
                    .expect("legacy cone traversal agrees on validity");
                assert_eq!(tts[i], old_oracle, "seed {seed} node {n} cut {i}");
            }
        }
    }
}

/// The tightened early filter (`popcount > cut_size`, without the old
/// `+ 8` slack) can never reject a feasible merge: a signature's
/// popcount never exceeds the true leaf count (64-aliasing only
/// collapses bits), so `popcount(sig0 | sig1) > cut_size` implies the
/// true union is larger than `cut_size` too. Exercised with node ids
/// spanning several 64-blocks so aliased signatures actually occur.
#[test]
fn size_filter_never_rejects_a_feasible_merge() {
    // Small deterministic LCG, seeds the leaf-set shapes.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let mut saw_aliased = false;
    for _ in 0..10_000 {
        let make = |next: &mut dyn FnMut(u64) -> u64| {
            let len = 1 + next(6) as usize;
            let leaves: Vec<NodeId> = (0..len).map(|_| next(200) as NodeId).collect();
            DenseCut::new(&leaves)
        };
        let a = make(&mut next);
        let b = make(&mut next);
        let mut union: Vec<NodeId> = a.leaves().iter().chain(b.leaves()).copied().collect();
        union.sort_unstable();
        union.dedup();
        let popcount = (a.signature() | b.signature()).count_ones() as usize;
        assert!(
            popcount <= union.len(),
            "signature popcount {popcount} exceeded true union size {}",
            union.len()
        );
        saw_aliased |= popcount < union.len();
        for cut_size in 1..=6usize {
            if union.len() <= cut_size {
                // Feasible merge: the filter must let it through...
                assert!(popcount <= cut_size, "filter rejected a feasible merge");
                // ...and the merge itself must succeed with the union.
                let merged = a.merge(&b, cut_size).expect("feasible merge succeeds");
                assert_eq!(merged.leaves(), &union[..]);
            }
        }
    }
    assert!(
        saw_aliased,
        "test never produced an aliased signature — widen the id range"
    );
}
