//! k-feasible cut enumeration for XAG networks.
//!
//! A *cut* of node `n` is a set of nodes (*leaves*) such that every path
//! from `n` to a primary input passes through a leaf, and every leaf lies on
//! such a path. A cut is *k-feasible* if it has at most `k` leaves. The
//! DAC'19 flow enumerates 6-feasible cuts with at most 12 cuts per node and
//! rewrites the sub-circuit each cut spans (paper §4.1).
//!
//! This implementation follows the classic bottom-up scheme: the cut set of
//! a gate is the k-feasible subset of the pairwise unions of its fanins'
//! cut sets, pruned for dominance (a cut that is a superset of another cut
//! of the same node is redundant) and truncated to a per-node limit, with
//! the trivial cut `{n}` always present so that enumeration can continue
//! upward.
//!
//! The data layout is built for the rewrite hot path:
//!
//! * a [`Cut`] is a `Copy` value with its (at most six) leaves inline — no
//!   per-cut heap allocation anywhere in the enumeration;
//! * [`CutSets`] is a flat arena indexed by dense node id — per-node spans
//!   into one shared `Vec<Cut>`, so fanin cut sets are merged by index
//!   instead of being cloned;
//! * every cut's local function is computed *during* enumeration in the same
//!   bottom-up sweep ([`CutSets::functions_of`]): a merged cut's truth table
//!   is the gate operator applied to the fanin cuts' tables lifted onto the
//!   merged leaf set with [`Tt::expand`], which replaces a per-cut recursive
//!   cone traversal with two table operations.
//!
//! # Examples
//!
//! ```
//! use xag_cuts::{enumerate_cuts, CutParams};
//! use xag_network::Xag;
//!
//! let mut xag = Xag::new();
//! let a = xag.input();
//! let b = xag.input();
//! let c = xag.input();
//! let m = xag.maj(a, b, c);
//! xag.output(m);
//!
//! let cuts = enumerate_cuts(&xag, &CutParams::default());
//! // The majority root has a cut whose leaves are the three inputs.
//! let root_cuts = cuts.of(m.node());
//! assert!(root_cuts
//!     .iter()
//!     .any(|cut| cut.leaves() == [a.node(), b.node(), c.node()]));
//! ```

use xag_network::{NodeId, NodeKind, Xag};
use xag_tt::Tt;

/// Maximum number of leaves a [`Cut`] can hold (matches [`xag_tt::MAX_VARS`]).
pub const MAX_CUT_SIZE: usize = 6;

/// A cut: a sorted set of at most six leaf nodes, stored inline, with a
/// precomputed subset signature.
///
/// `Cut` is `Copy` (30 bytes) — cut sets move around by value, never through
/// the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cut {
    signature: u64,
    leaves: [NodeId; MAX_CUT_SIZE],
    len: u8,
}

impl Cut {
    /// Creates a cut from leaf node ids (deduplicated and sorted).
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_CUT_SIZE`] distinct leaves are given.
    pub fn new(leaves: &[NodeId]) -> Self {
        let mut sorted = leaves.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() <= MAX_CUT_SIZE, "cut has too many leaves");
        let mut inline = [0 as NodeId; MAX_CUT_SIZE];
        inline[..sorted.len()].copy_from_slice(&sorted);
        let signature = sorted.iter().fold(0u64, |s, &l| s | 1 << (l % 64));
        Self {
            signature,
            leaves: inline,
            len: sorted.len() as u8,
        }
    }

    /// The empty cut (only the constant node has it).
    pub fn empty() -> Self {
        Self {
            signature: 0,
            leaves: [0; MAX_CUT_SIZE],
            len: 0,
        }
    }

    /// The trivial cut `{n}`.
    pub fn trivial(n: NodeId) -> Self {
        let mut leaves = [0 as NodeId; MAX_CUT_SIZE];
        leaves[0] = n;
        Self {
            signature: 1 << (n % 64),
            leaves,
            len: 1,
        }
    }

    /// The sorted leaf nodes.
    #[inline]
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    #[inline]
    pub fn size(&self) -> usize {
        self.len as usize
    }

    /// 64-bit subset signature: bit `l % 64` is set for every leaf `l`.
    #[inline]
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// True iff `self`'s leaves are a subset of `other`'s.
    ///
    /// Signature-first: if `self` sets a signature bit `other` lacks it
    /// cannot be a subset. The exact test is a merge-walk over the two
    /// sorted leaf lists rather than a per-leaf binary search.
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.len > other.len || self.signature & !other.signature != 0 {
            return false;
        }
        let mut j = 0usize;
        let ob = other.leaves();
        'next: for &l in self.leaves() {
            while j < ob.len() {
                match ob[j].cmp(&l) {
                    core::cmp::Ordering::Less => j += 1,
                    core::cmp::Ordering::Equal => {
                        j += 1;
                        continue 'next;
                    }
                    core::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Merges two cuts, or `None` if the union exceeds `max_size` leaves.
    pub fn merge(&self, other: &Cut, max_size: usize) -> Option<Cut> {
        self.merge_with_positions(other, max_size).map(|m| m.0)
    }

    /// [`Cut::merge`] that additionally reports, for each leaf of `self` and
    /// of `other`, its position in the merged leaf list — exactly the
    /// variable maps [`Tt::expand`] needs to lift the fanin cut functions.
    #[inline]
    pub fn merge_with_positions(
        &self,
        other: &Cut,
        max_size: usize,
    ) -> Option<(Cut, [usize; MAX_CUT_SIZE], [usize; MAX_CUT_SIZE])> {
        debug_assert!(max_size <= MAX_CUT_SIZE);
        let (la, lb) = (self.len as usize, other.len as usize);
        let mut leaves = [0 as NodeId; MAX_CUT_SIZE];
        let mut pa = [0usize; MAX_CUT_SIZE];
        let mut pb = [0usize; MAX_CUT_SIZE];
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        while i < la || j < lb {
            if k == max_size {
                return None;
            }
            let take_a = j == lb || (i < la && self.leaves[i] <= other.leaves[j]);
            let take_b = i == la || (j < lb && other.leaves[j] <= self.leaves[i]);
            if take_a {
                leaves[k] = self.leaves[i];
                pa[i] = k;
                i += 1;
            }
            if take_b {
                leaves[k] = other.leaves[j];
                pb[j] = k;
                j += 1;
            }
            k += 1;
        }
        Some((
            Cut {
                signature: self.signature | other.signature,
                leaves,
                len: k as u8,
            },
            pa,
            pb,
        ))
    }
}

/// Parameters of the enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutParams {
    /// Maximum number of leaves per cut (at most 6, so cut functions fit in
    /// one 64-bit truth table).
    pub cut_size: usize,
    /// Maximum number of cuts kept per node, excluding the trivial cut
    /// (the paper found 12 to be a good runtime/quality trade-off).
    pub cut_limit: usize,
}

impl Default for CutParams {
    fn default() -> Self {
        Self {
            cut_size: 6,
            cut_limit: 12,
        }
    }
}

/// The cut sets of every live gate (and input) of a network.
///
/// A flat arena: one shared `Vec<Cut>` plus a per-node `(start, end)` span
/// indexed by dense node id, with a parallel `Vec<Tt>` holding each cut's
/// local function computed during enumeration.
#[derive(Debug)]
pub struct CutSets {
    spans: Vec<(u32, u32)>,
    cuts: Vec<Cut>,
    tts: Vec<Tt>,
}

impl CutSets {
    #[inline]
    fn span(&self, n: NodeId) -> (usize, usize) {
        match self.spans.get(n as usize) {
            Some(&(s, e)) => (s as usize, e as usize),
            None => (0, 0),
        }
    }

    /// Cuts of a node (empty slice for unknown/dead nodes).
    #[inline]
    pub fn of(&self, n: NodeId) -> &[Cut] {
        let (s, e) = self.span(n);
        &self.cuts[s..e]
    }

    /// Local functions of a node's cuts, parallel to [`CutSets::of`].
    ///
    /// Entry `i` is the function of cut `i` over its sorted leaves as
    /// variables `x0..`, identical to what [`cut_function`] computes — but it
    /// was produced by the one-pass bottom-up sweep, not a cone traversal.
    #[inline]
    pub fn functions_of(&self, n: NodeId) -> &[Tt] {
        let (s, e) = self.span(n);
        &self.tts[s..e]
    }

    /// Total number of stored cuts.
    pub fn total(&self) -> usize {
        self.cuts.len()
    }

    /// Iterates over `(node, cuts)` pairs in increasing node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[Cut])> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, &(s, e))| e > s)
            .map(|(n, &(s, e))| (n as NodeId, &self.cuts[s as usize..e as usize]))
    }
}

/// Enumerates k-feasible cuts of all live gates of `xag`.
///
/// # Panics
///
/// Panics if `params.cut_size` is 0 or greater than 6.
pub fn enumerate_cuts(xag: &Xag, params: &CutParams) -> CutSets {
    enumerate_cuts_for(xag, &xag.live_gates(), params)
}

/// [`enumerate_cuts`] over a caller-provided topological order of live gates
/// (fanins before fanouts), so the order's DFS is not repeated here.
///
/// # Panics
///
/// Panics if `params.cut_size` is 0 or greater than 6.
pub fn enumerate_cuts_for(xag: &Xag, order: &[NodeId], params: &CutParams) -> CutSets {
    assert!(
        (1..=MAX_CUT_SIZE).contains(&params.cut_size),
        "cut size must be within 1..=6"
    );
    let mut sets = CutSets {
        spans: vec![(0, 0); xag.capacity()],
        cuts: Vec::new(),
        tts: Vec::new(),
    };
    // Constant node: empty cut. Inputs: trivial cut only.
    push_one(&mut sets, 0, Cut::empty(), Tt::zero(1));
    for i in 0..xag.num_inputs() {
        let n = xag.input_signal(i).node();
        push_one(&mut sets, n, Cut::trivial(n), Tt::projection(0, 1));
    }
    // One reusable scratch for the per-node merge; cuts are `Copy`, so
    // nothing below allocates once the buffers have grown. Each candidate
    // remembers the fanin-cut pair it merged — functions are computed only
    // for the cuts that survive dominance pruning and the cut limit.
    let mut merged: Vec<(Cut, u32, u32)> = Vec::new();
    for &n in order {
        merged.clear();
        let (f0, f1) = xag.fanins(n);
        let is_and = xag.kind(n) == NodeKind::And;
        let (s0, e0) = sets.span(f0.node());
        let (s1, e1) = sets.span(f1.node());
        for i0 in s0..e0 {
            let c0 = sets.cuts[i0];
            for i1 in s1..e1 {
                let c1 = sets.cuts[i1];
                // Early size filter: the signature popcount never exceeds the
                // true union size (64-aliasing only collapses bits), so this
                // rejects only genuinely infeasible merges.
                if (c0.signature | c1.signature).count_ones() as usize > params.cut_size {
                    continue;
                }
                let Some(cut) = c0.merge(&c1, params.cut_size) else {
                    continue;
                };
                if merged.iter().any(|(c, _, _)| c.dominates(&cut)) {
                    continue;
                }
                merged.retain(|(c, _, _)| !cut.dominates(c));
                merged.push((cut, i0 as u32, i1 as u32));
            }
        }
        // Priority: smaller cuts first; stable beyond that. Insertion sort —
        // the lists are tiny and std's stable sort may allocate.
        for i in 1..merged.len() {
            let mut j = i;
            while j > 0 && merged[j - 1].0.len > merged[j].0.len {
                merged.swap(j - 1, j);
                j -= 1;
            }
        }
        merged.truncate(params.cut_limit);
        let start = sets.cuts.len() as u32;
        for &(cut, i0, i1) in &merged {
            // Fused cut function: replay the merge to recover each leaf's
            // position in the union, lift both fanin tables onto the merged
            // leaf set, and apply the gate operator.
            let (c0, c1) = (sets.cuts[i0 as usize], sets.cuts[i1 as usize]);
            let (u, p0, p1) = c0
                .merge_with_positions(&c1, params.cut_size)
                .expect("cut was produced by this merge");
            debug_assert_eq!(u, cut);
            let t0 = sets.tts[i0 as usize].expand(&p0[..c0.size()], cut.size());
            let t1 = sets.tts[i1 as usize].expand(&p1[..c1.size()], cut.size());
            let t0 = if f0.is_complement() { !t0 } else { t0 };
            let t1 = if f1.is_complement() { !t1 } else { t1 };
            sets.cuts.push(cut);
            sets.tts.push(if is_and { t0 & t1 } else { t0 ^ t1 });
        }
        sets.cuts.push(Cut::trivial(n));
        sets.tts.push(Tt::projection(0, 1));
        sets.spans[n as usize] = (start, sets.cuts.len() as u32);
    }
    sets
}

fn push_one(sets: &mut CutSets, n: NodeId, cut: Cut, tt: Tt) {
    let start = sets.cuts.len() as u32;
    sets.cuts.push(cut);
    sets.tts.push(tt);
    sets.spans[n as usize] = (start, start + 1);
}

/// Computes the local function of `root` over a cut, reduced to the cut
/// leaves as variables `x0..x_{size-1}` in leaf order.
///
/// Returns `None` if the cut is not a valid cut of `root` in `xag`. This
/// walks the cone; cuts produced by [`enumerate_cuts`] already carry their
/// function in [`CutSets::functions_of`].
pub fn cut_function(xag: &Xag, root: NodeId, cut: &Cut) -> Option<Tt> {
    xag.cone_tt(root, cut.leaves())
}

/// Convenience: enumerate cuts and pair each non-trivial cut of each gate
/// with its function.
pub fn enumerate_cut_functions(xag: &Xag, params: &CutParams) -> Vec<(NodeId, Cut, Tt)> {
    let order = xag.live_gates();
    let sets = enumerate_cuts_for(xag, &order, params);
    let mut out = Vec::new();
    for n in order {
        for (cut, &tt) in sets.of(n).iter().zip(sets.functions_of(n)) {
            if cut.size() == 1 && cut.leaves()[0] == n {
                continue; // trivial cut
            }
            out.push((n, *cut, tt));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> (Xag, Vec<NodeId>) {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        let axb = x.xor(a, b);
        let sum = x.xor(axb, c);
        let ab = x.and(a, b);
        let ac = x.and(a, c);
        let bc = x.and(b, c);
        let t = x.xor(ab, ac);
        let cout = x.xor(t, bc);
        x.output(sum);
        x.output(cout);
        let ids = vec![a.node(), b.node(), c.node()];
        (x, ids)
    }

    #[test]
    fn full_adder_cout_cut_is_majority() {
        let (x, ins) = full_adder();
        let sets = enumerate_cuts(&x, &CutParams::default());
        let cout = x.output_signal(1).node();
        let cut = sets
            .of(cout)
            .iter()
            .find(|c| c.leaves() == ins.as_slice())
            .expect("input cut exists");
        let tt = cut_function(&x, cout, cut).expect("valid cut");
        assert_eq!(tt.bits(), 0xe8, "paper Example 3.1: cout cut is ⟨abc⟩");
    }

    #[test]
    fn all_cuts_are_valid_and_dominance_free() {
        let (x, _) = full_adder();
        let sets = enumerate_cuts(&x, &CutParams::default());
        for (n, cuts) in sets.iter() {
            if !x.is_gate(n) {
                continue;
            }
            for (i, c) in cuts.iter().enumerate() {
                assert!(cut_function(&x, n, c).is_some(), "cut {c:?} of {n}");
                for (j, d) in cuts.iter().enumerate() {
                    if i != j && !(c.size() == 1 && c.leaves()[0] == n) {
                        assert!(
                            !(d.dominates(c) && d.leaves() != c.leaves()),
                            "cut {c:?} dominated by {d:?} at node {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fused_functions_match_cone_traversal() {
        let (x, _) = full_adder();
        let sets = enumerate_cuts(&x, &CutParams::default());
        for (n, cuts) in sets.iter() {
            if !x.is_gate(n) {
                continue;
            }
            for (cut, &tt) in cuts.iter().zip(sets.functions_of(n)) {
                assert_eq!(cut_function(&x, n, cut), Some(tt), "node {n} cut {cut:?}");
            }
        }
    }

    #[test]
    fn cut_limit_is_respected() {
        let (x, _) = full_adder();
        let params = CutParams {
            cut_size: 4,
            cut_limit: 2,
        };
        let sets = enumerate_cuts(&x, &params);
        for (n, cuts) in sets.iter() {
            if x.is_gate(n) {
                assert!(cuts.len() <= params.cut_limit + 1, "node {n}");
            }
        }
    }

    #[test]
    fn cut_functions_cover_all_gates() {
        let (x, _) = full_adder();
        let funcs = enumerate_cut_functions(&x, &CutParams::default());
        assert!(!funcs.is_empty());
        for (n, cut, tt) in &funcs {
            assert_eq!(cut_function(&x, *n, cut), Some(*tt));
            assert!(tt.vars() == cut.size());
        }
    }

    #[test]
    fn dominates_and_merge_basics() {
        let a = Cut::new(&[3, 1]);
        let b = Cut::new(&[1, 2, 3]);
        assert_eq!(a.leaves(), &[1, 3]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        let m = a.merge(&b, MAX_CUT_SIZE).unwrap();
        assert_eq!(m.leaves(), &[1, 2, 3]);
        assert!(a.merge(&b, 2).is_none(), "union exceeds the bound");
    }

    #[test]
    fn merge_positions_index_the_union() {
        let a = Cut::new(&[2, 9]);
        let b = Cut::new(&[2, 5, 11]);
        let (m, pa, pb) = a.merge_with_positions(&b, MAX_CUT_SIZE).unwrap();
        assert_eq!(m.leaves(), &[2, 5, 9, 11]);
        assert_eq!(&pa[..2], &[0, 2]);
        assert_eq!(&pb[..3], &[0, 1, 3]);
    }

    #[test]
    fn dominates_handles_aliased_signatures() {
        // 64-aliasing: 1 and 65 share a signature bit, but {1} ⊄ {65, 2}.
        let a = Cut::new(&[1]);
        let b = Cut::new(&[2, 65]);
        assert!(!a.dominates(&b));
        assert!(Cut::new(&[65]).dominates(&b));
    }
}
