//! k-feasible cut enumeration for XAG networks.
//!
//! A *cut* of node `n` is a set of nodes (*leaves*) such that every path
//! from `n` to a primary input passes through a leaf, and every leaf lies on
//! such a path. A cut is *k-feasible* if it has at most `k` leaves. The
//! DAC'19 flow enumerates 6-feasible cuts with at most 12 cuts per node and
//! rewrites the sub-circuit each cut spans (paper §4.1).
//!
//! This implementation follows the classic bottom-up scheme: the cut set of
//! a gate is the k-feasible subset of the pairwise unions of its fanins'
//! cut sets, pruned for dominance (a cut that is a superset of another cut
//! of the same node is redundant) and truncated to a per-node limit, with
//! the trivial cut `{n}` always present so that enumeration can continue
//! upward.
//!
//! # Examples
//!
//! ```
//! use xag_cuts::{enumerate_cuts, CutParams};
//! use xag_network::Xag;
//!
//! let mut xag = Xag::new();
//! let a = xag.input();
//! let b = xag.input();
//! let c = xag.input();
//! let m = xag.maj(a, b, c);
//! xag.output(m);
//!
//! let cuts = enumerate_cuts(&xag, &CutParams::default());
//! // The majority root has a cut whose leaves are the three inputs.
//! let root_cuts = cuts.of(m.node());
//! assert!(root_cuts
//!     .iter()
//!     .any(|cut| cut.leaves() == [a.node(), b.node(), c.node()]));
//! ```

use std::collections::HashMap;

use xag_network::{NodeId, Xag};
use xag_tt::Tt;

/// A cut: a sorted set of leaf nodes with a precomputed subset signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    leaves: Vec<NodeId>,
    signature: u64,
}

impl Cut {
    /// Creates a cut from leaf node ids (deduplicated and sorted).
    pub fn new(mut leaves: Vec<NodeId>) -> Self {
        leaves.sort_unstable();
        leaves.dedup();
        let signature = leaves.iter().fold(0u64, |s, &l| s | 1 << (l % 64));
        Self { leaves, signature }
    }

    /// The sorted leaf nodes.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// True iff `self`'s leaves are a subset of `other`'s.
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.leaves.len() > other.leaves.len() || self.signature & !other.signature != 0 {
            return false;
        }
        self.leaves
            .iter()
            .all(|l| other.leaves.binary_search(l).is_ok())
    }

    /// Merges two cuts (used when combining fanin cut sets).
    pub fn merge(&self, other: &Cut) -> Cut {
        let mut leaves = Vec::with_capacity(self.leaves.len() + other.leaves.len());
        leaves.extend_from_slice(&self.leaves);
        leaves.extend_from_slice(&other.leaves);
        Cut::new(leaves)
    }
}

/// Parameters of the enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutParams {
    /// Maximum number of leaves per cut (at most 6, so cut functions fit in
    /// one 64-bit truth table).
    pub cut_size: usize,
    /// Maximum number of cuts kept per node, excluding the trivial cut
    /// (the paper found 12 to be a good runtime/quality trade-off).
    pub cut_limit: usize,
}

impl Default for CutParams {
    fn default() -> Self {
        Self {
            cut_size: 6,
            cut_limit: 12,
        }
    }
}

/// The cut sets of every live gate (and input) of a network.
#[derive(Debug)]
pub struct CutSets {
    cuts: HashMap<NodeId, Vec<Cut>>,
}

impl CutSets {
    /// Cuts of a node (empty slice for unknown/dead nodes).
    pub fn of(&self, n: NodeId) -> &[Cut] {
        self.cuts.get(&n).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of stored cuts.
    pub fn total(&self) -> usize {
        self.cuts.values().map(Vec::len).sum()
    }

    /// Iterates over `(node, cuts)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[Cut])> {
        self.cuts.iter().map(|(&n, c)| (n, c.as_slice()))
    }
}

/// Enumerates k-feasible cuts of all live gates of `xag`.
///
/// # Panics
///
/// Panics if `params.cut_size` is 0 or greater than 6.
pub fn enumerate_cuts(xag: &Xag, params: &CutParams) -> CutSets {
    assert!(
        (1..=6).contains(&params.cut_size),
        "cut size must be within 1..=6"
    );
    let mut cuts: HashMap<NodeId, Vec<Cut>> = HashMap::new();
    // Constant node: empty cut. Inputs: trivial cut only.
    cuts.insert(0, vec![Cut::new(vec![])]);
    for i in 0..xag.num_inputs() {
        let n = xag.input_signal(i).node();
        cuts.insert(n, vec![Cut::new(vec![n])]);
    }
    for n in xag.live_gates() {
        let (f0, f1) = xag.fanins(n);
        let set0 = cuts.get(&f0.node()).cloned().unwrap_or_default();
        let set1 = cuts.get(&f1.node()).cloned().unwrap_or_default();
        let mut merged: Vec<Cut> = Vec::new();
        for c0 in &set0 {
            for c1 in &set1 {
                // Early size filter via signatures.
                if (c0.signature | c1.signature).count_ones() as usize > params.cut_size + 8 {
                    continue;
                }
                let cut = c0.merge(c1);
                if cut.size() > params.cut_size {
                    continue;
                }
                if merged.iter().any(|c| c.dominates(&cut)) {
                    continue;
                }
                merged.retain(|c| !cut.dominates(c));
                merged.push(cut);
            }
        }
        // Priority: smaller cuts first; stable beyond that.
        merged.sort_by_key(|c| c.size());
        merged.truncate(params.cut_limit);
        merged.push(Cut::new(vec![n]));
        cuts.insert(n, merged);
    }
    CutSets { cuts }
}

/// Computes the local function of `root` over a cut, reduced to the cut
/// leaves as variables `x0..x_{size-1}` in leaf order.
///
/// Returns `None` if the cut is not a valid cut of `root` in `xag`.
pub fn cut_function(xag: &Xag, root: NodeId, cut: &Cut) -> Option<Tt> {
    xag.cone_tt(root, cut.leaves())
}

/// Convenience: enumerate cuts and pair each non-trivial cut of each gate
/// with its function.
pub fn enumerate_cut_functions(xag: &Xag, params: &CutParams) -> Vec<(NodeId, Cut, Tt)> {
    let sets = enumerate_cuts(xag, params);
    let mut out = Vec::new();
    for n in xag.live_gates() {
        for cut in sets.of(n) {
            if cut.size() == 1 && cut.leaves()[0] == n {
                continue; // trivial cut
            }
            if let Some(tt) = cut_function(xag, n, cut) {
                out.push((n, cut.clone(), tt));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> (Xag, Vec<NodeId>) {
        let mut x = Xag::new();
        let a = x.input();
        let b = x.input();
        let c = x.input();
        let axb = x.xor(a, b);
        let sum = x.xor(axb, c);
        let ab = x.and(a, b);
        let ac = x.and(a, c);
        let bc = x.and(b, c);
        let t = x.xor(ab, ac);
        let cout = x.xor(t, bc);
        x.output(sum);
        x.output(cout);
        let ids = vec![a.node(), b.node(), c.node()];
        (x, ids)
    }

    #[test]
    fn full_adder_cout_cut_is_majority() {
        let (x, ins) = full_adder();
        let sets = enumerate_cuts(&x, &CutParams::default());
        let cout = x.output_signal(1).node();
        let cut = sets
            .of(cout)
            .iter()
            .find(|c| c.leaves() == ins.as_slice())
            .expect("input cut exists");
        let tt = cut_function(&x, cout, cut).expect("valid cut");
        assert_eq!(tt.bits(), 0xe8, "paper Example 3.1: cout cut is ⟨abc⟩");
    }

    #[test]
    fn all_cuts_are_valid_and_dominance_free() {
        let (x, _) = full_adder();
        let sets = enumerate_cuts(&x, &CutParams::default());
        for (n, cuts) in sets.iter() {
            if !x.is_gate(n) {
                continue;
            }
            for (i, c) in cuts.iter().enumerate() {
                assert!(cut_function(&x, n, c).is_some(), "cut {c:?} of {n}");
                for (j, d) in cuts.iter().enumerate() {
                    if i != j && !(c.size() == 1 && c.leaves()[0] == n) {
                        assert!(
                            !(d.dominates(c) && d.leaves() != c.leaves()),
                            "cut {c:?} dominated by {d:?} at node {n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cut_limit_is_respected() {
        let (x, _) = full_adder();
        let params = CutParams {
            cut_size: 4,
            cut_limit: 2,
        };
        let sets = enumerate_cuts(&x, &params);
        for (n, cuts) in sets.iter() {
            if x.is_gate(n) {
                assert!(cuts.len() <= params.cut_limit + 1, "node {n}");
            }
        }
    }

    #[test]
    fn cut_functions_cover_all_gates() {
        let (x, _) = full_adder();
        let funcs = enumerate_cut_functions(&x, &CutParams::default());
        assert!(!funcs.is_empty());
        for (n, cut, tt) in &funcs {
            assert_eq!(cut_function(&x, *n, cut), Some(*tt));
            assert!(tt.vars() == cut.size());
        }
    }

    #[test]
    fn dominates_and_merge_basics() {
        let a = Cut::new(vec![3, 1]);
        let b = Cut::new(vec![1, 2, 3]);
        assert_eq!(a.leaves(), &[1, 3]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        let m = a.merge(&b);
        assert_eq!(m.leaves(), &[1, 2, 3]);
    }
}
