//! Micro-benchmarks for the flow's kernels: cut enumeration, affine
//! classification, database synthesis, and one rewriting round.
//!
//! Run with `cargo bench -p xag-bench --bench kernels`
//! (set `MC_BENCH_SAMPLES=3` for a smoke run).

use xag_affine::AffineClassifier;
use xag_bench::harness::{black_box, BenchGroup};
use xag_circuits::aes::SboxBuilder;
use xag_circuits::arith::{add_ripple, input_word, multiply_array, output_word};
use xag_circuits::keccak::keccak_f;
use xag_cuts::{enumerate_cuts, CutParams};
use xag_mc::{McRewrite, OptContext, ParRewrite, Pass};
use xag_network::{Signal, Xag};
use xag_synth::Synthesizer;
use xag_tt::Tt;

fn adder_circuit(bits: usize) -> Xag {
    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let (s, c) = add_ripple(&mut x, &a, &b, Signal::CONST0);
    output_word(&mut x, &s);
    x.output(c);
    x
}

fn multiplier_circuit(bits: usize) -> Xag {
    let mut x = Xag::new();
    let a = input_word(&mut x, bits);
    let b = input_word(&mut x, bits);
    let p = multiply_array(&mut x, &a, &b);
    output_word(&mut x, &p);
    x
}

fn bench_cut_enumeration(g: &mut BenchGroup) {
    let mult = multiplier_circuit(16);
    g.bench_function("cut_enumeration/mult16", || {
        let sets = enumerate_cuts(black_box(&mult), &CutParams::default());
        black_box(sets.total())
    });
}

fn bench_classification(g: &mut BenchGroup) {
    g.bench_function("classify/exhaust4var_stride", || {
        let mut cls = AffineClassifier::new();
        let mut acc = 0u64;
        for bits in (0..65_536u64).step_by(257) {
            acc ^= cls.classify(Tt::from_bits(bits, 4)).representative.bits();
        }
        black_box(acc)
    });
    let mut seed = 0x9e3779b97f4a7c15u64;
    g.bench_function("classify/6var_beam", || {
        let mut cls = AffineClassifier::new();
        seed = seed.rotate_left(13).wrapping_mul(0xd1342543de82ef95);
        black_box(cls.classify(Tt::from_bits(seed, 6)).representative)
    });
}

fn bench_synthesis(g: &mut BenchGroup) {
    let mut seed = 0x243f6a8885a308d3u64;
    g.bench_function("synth/random_5var", || {
        let mut s = Synthesizer::new();
        seed = seed.rotate_left(17).wrapping_mul(0x9e3779b97f4a7c15);
        let f = Tt::from_bits(seed, 5);
        black_box(s.synthesize(f).num_ands())
    });
}

fn bench_rewriting(g: &mut BenchGroup) {
    g.bench_function("rewrite/adder32_one_round", || {
        let mut xag = adder_circuit(32);
        let mut ctx = OptContext::new();
        let stats = McRewrite::new().run(&mut xag, &mut ctx);
        black_box(stats.ands_after)
    });
}

/// A bank of AES S-boxes: the crypto kernel whose tower-field structure
/// dominates the AES rows of Table 2.
fn sbox_bank(instances: usize) -> Xag {
    let mut x = Xag::new();
    let mut sbox = SboxBuilder::new();
    for _ in 0..instances {
        let bits: Vec<Signal> = (0..8).map(|_| x.input()).collect();
        for s in sbox.build(&mut x, &bits) {
            x.output(s);
        }
    }
    x
}

/// Single- vs multi-thread rounds of the sharded engine on the Keccak and
/// AES kernels. The engine is bit-identical across thread counts, so the
/// reported speedup lines compare equal work (they show ~1x on a
/// single-core host; the propose phase scales with cores).
fn bench_parallel_rewriting(g: &mut BenchGroup) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2);

    let keccak = keccak_f(1);
    let t1 = g.bench_function_timed("par_rewrite/keccak25_1thread", || {
        let mut xag = keccak.cleanup();
        let mut ctx = OptContext::new();
        let stats = ParRewrite::new(1).run(&mut xag, &mut ctx);
        black_box(stats.ands_after)
    });
    let tn = g.bench_function_timed(&format!("par_rewrite/keccak25_{threads}threads"), || {
        let mut xag = keccak.cleanup();
        let mut ctx = OptContext::new();
        let stats = ParRewrite::new(threads).run(&mut xag, &mut ctx);
        black_box(stats.ands_after)
    });
    g.report_ratio("par_rewrite/keccak25_speedup", t1, tn);

    let aes = sbox_bank(8);
    let t1 = g.bench_function_timed("par_rewrite/aes_sbox8_1thread", || {
        let mut xag = aes.cleanup();
        let mut ctx = OptContext::new();
        let stats = ParRewrite::new(1).run(&mut xag, &mut ctx);
        black_box(stats.ands_after)
    });
    let tn = g.bench_function_timed(&format!("par_rewrite/aes_sbox8_{threads}threads"), || {
        let mut xag = aes.cleanup();
        let mut ctx = OptContext::new();
        let stats = ParRewrite::new(threads).run(&mut xag, &mut ctx);
        black_box(stats.ands_after)
    });
    g.report_ratio("par_rewrite/aes_sbox8_speedup", t1, tn);
}

fn main() {
    let mut g = BenchGroup::new("kernels");
    g.sample_size(10);
    bench_cut_enumeration(&mut g);
    bench_classification(&mut g);
    bench_synthesis(&mut g);
    bench_rewriting(&mut g);
    bench_parallel_rewriting(&mut g);
    g.finish();
}
