//! Criterion wrapper around the Table-1 experiment (reduced scale): each
//! benchmark measures the full flow (baseline + MC rewriting to
//! convergence) on one EPFL circuit and reports the achieved AND counts
//! through Criterion's output.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xag_bench::run_flow;
use xag_circuits::epfl::{epfl_suite, Scale};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    // Keep the per-iteration cost tractable: a representative subset is
    // measured here; the `table1` binary prints the full table.
    let selected = ["adder", "bar", "square", "int2float", "priority"];
    for bench in epfl_suite(Scale::Reduced) {
        if !selected.contains(&bench.name) {
            continue;
        }
        group.bench_function(bench.name, |b| {
            b.iter(|| {
                let flow = run_flow(black_box(&bench.xag), 1, 15);
                black_box(flow.converged.0)
            })
        });
    }
    group.finish();
}

criterion_group!(table1, bench_table1);
criterion_main!(table1);
