//! Benchmark wrapper around the Table-1 experiment (reduced scale): each
//! entry measures the full flow (baseline + MC rewriting to convergence)
//! on one EPFL circuit and reports the achieved AND counts through the
//! harness output.
//!
//! Run with `cargo bench -p xag-bench --bench table1_arith`.

use xag_bench::harness::{black_box, BenchGroup};
use xag_bench::run_flow;
use xag_circuits::epfl::{epfl_suite, Scale};

fn main() {
    let mut group = BenchGroup::new("table1");
    group.sample_size(10);
    // Keep the per-iteration cost tractable: a representative subset is
    // measured here; the `table1` binary prints the full table.
    let selected = ["adder", "bar", "square", "int2float", "priority"];
    for bench in epfl_suite(Scale::Reduced) {
        if !selected.contains(&bench.name) {
            continue;
        }
        group.bench_function(bench.name, || {
            let flow = run_flow(black_box(&bench.xag), 1, 15);
            black_box(flow.converged.0)
        });
    }
    group.finish();
}
