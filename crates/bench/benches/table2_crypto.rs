//! Criterion wrapper around the Table-2 experiment: measures the flow on
//! the arithmetic MPC rows (the heavy cipher/hash rows are exercised by the
//! `table2 --heavy` binary, which prints the full table).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xag_bench::run_flow;
use xag_circuits::mpc::mpc_suite;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for bench in mpc_suite(false) {
        if bench.heavy {
            continue;
        }
        group.bench_function(bench.name, |b| {
            b.iter(|| {
                let flow = run_flow(black_box(&bench.xag), 0, 25);
                black_box(flow.converged.0)
            })
        });
    }
    group.finish();
}

criterion_group!(table2, bench_table2);
criterion_main!(table2);
