//! Benchmark wrapper around the Table-2 experiment: measures the flow on
//! the arithmetic MPC rows (the heavy cipher/hash rows are exercised by
//! the `table2 --heavy` binary, which prints the full table).
//!
//! Run with `cargo bench -p xag-bench --bench table2_crypto`.

use xag_bench::harness::{black_box, BenchGroup};
use xag_bench::run_flow;
use xag_circuits::mpc::mpc_suite;

fn main() {
    let mut group = BenchGroup::new("table2");
    group.sample_size(10);
    for bench in mpc_suite(false) {
        if bench.heavy {
            continue;
        }
        group.bench_function(bench.name, || {
            let flow = run_flow(black_box(&bench.xag), 0, 25);
            black_box(flow.converged.0)
        });
    }
    group.finish();
}
